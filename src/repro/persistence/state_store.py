"""State store mapping state digests to state representations.

"Non-repudiation evidence will include a signed secure digest of state that
is held in a state store.  Persistence services should support the mapping of
the state digest to the representation of state in the state store."
(Section 3.5.)  For shared information the store additionally keeps the
agreed version history so "a subsequent reconstruction of information state
is a state previously agreed by the organisations who share the information"
(Section 3.4) can be demonstrated.

The version history is itself durable: every :meth:`record_version` persists
the per-object digest sequence through the backing
:class:`~repro.persistence.storage.StorageBackend` (under
``state:{owner}:history:{object_id}``, with an object index at
``state:{owner}:objects``), and reopening the store against the same backend
rebuilds the history — so a restarted replica resumes each shared object at
its last *agreed* version instead of re-registering from configuration.
Alongside each agreed version the store can keep the signed *outcome record*
that produced it (:meth:`record_outcome`), which is what restart-time resync
serves to stale peers: the full outcome payload plus evidence tokens, so a
catch-up apply is signature-checked exactly like a live one.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

from repro import codec
from repro.crypto.hashing import secure_hash
from repro.errors import StateStoreError
from repro.persistence.storage import InMemoryBackend, StorageBackend


class StateStore:
    """Digest-addressed storage of state snapshots with per-object history."""

    def __init__(self, owner: str, backend: Optional[StorageBackend] = None) -> None:
        self.owner = owner
        self._backend = backend or InMemoryBackend()
        self._history: Dict[str, List[str]] = {}
        self._lock = threading.RLock()
        self._load_history()

    def _load_history(self) -> None:
        """Rebuild the per-object version history from the backend.

        The object index and per-object history lists are ordinary backend
        values (no prefix scan needed), so any backend — memory, file or
        SQLite — makes the agreed history survive a restart.
        """
        raw_index = self._backend.get(self._objects_key())
        if raw_index is None:
            return
        for object_id in codec.decode(raw_index):
            raw_history = self._backend.get(self._history_key(object_id))
            if raw_history is not None:
                self._history[object_id] = list(codec.decode(raw_history))

    # -- digest-addressed snapshots -------------------------------------------

    def store_state(self, state: Any) -> bytes:
        """Store a snapshot of ``state`` and return its digest.

        The digest is computed over the canonical encoding of the state, so
        two parties that agree on a state value necessarily agree on its
        digest.
        """
        encoded = codec.encode(state)
        digest = secure_hash(encoded)
        with self._lock:
            self._backend.put(self._snapshot_key(digest), encoded)
        return digest

    def resolve_digest(self, digest: bytes) -> Any:
        """Return the state previously stored under ``digest``."""
        raw = self._backend.get(self._snapshot_key(digest))
        if raw is None:
            raise StateStoreError(
                f"state store of {self.owner!r} has no state for digest {digest.hex()}"
            )
        return codec.decode(raw)

    def has_digest(self, digest: bytes) -> bool:
        return self._backend.get(self._snapshot_key(digest)) is not None

    @staticmethod
    def digest_of(state: Any) -> bytes:
        """Compute the canonical digest of ``state`` without storing it."""
        return secure_hash(codec.encode(state))

    def _snapshot_key(self, digest: bytes) -> str:
        return f"state:{self.owner}:snapshot:{digest.hex()}"

    def _objects_key(self) -> str:
        return f"state:{self.owner}:objects"

    def _history_key(self, object_id: str) -> str:
        return f"state:{self.owner}:history:{object_id}"

    def _outcome_key(self, object_id: str, version: int) -> str:
        return f"state:{self.owner}:outcome:{object_id}:{version}"

    # -- per-object agreed history ---------------------------------------------

    def record_version(self, object_id: str, state: Any) -> Tuple[int, bytes]:
        """Record ``state`` as the next agreed version of ``object_id``.

        Returns ``(version_number, digest)``.
        """
        digest = self.store_state(state)
        with self._lock:
            new_object = object_id not in self._history
            history = self._history.setdefault(object_id, [])
            history.append(digest.hex())
            self._backend.put(self._history_key(object_id), codec.encode(history))
            if new_object:
                self._backend.put(
                    self._objects_key(), codec.encode(sorted(self._history))
                )
            return len(history) - 1, digest

    def version_count(self, object_id: str) -> int:
        with self._lock:
            return len(self._history.get(object_id, []))

    def version_digest(self, object_id: str, version: int) -> bytes:
        with self._lock:
            history = self._history.get(object_id, [])
            if version < 0 or version >= len(history):
                raise StateStoreError(
                    f"{object_id!r} has no agreed version {version}"
                )
            return bytes.fromhex(history[version])

    def latest_digest(self, object_id: str) -> Optional[bytes]:
        with self._lock:
            history = self._history.get(object_id, [])
            if not history:
                return None
            return bytes.fromhex(history[-1])

    def state_at_version(self, object_id: str, version: int) -> Any:
        """Reconstruct the agreed state of ``object_id`` at ``version``."""
        return self.resolve_digest(self.version_digest(object_id, version))

    def is_agreed_state(self, object_id: str, state: Any) -> bool:
        """Return ``True`` if ``state`` matches any previously agreed version."""
        digest_hex = self.digest_of(state).hex()
        with self._lock:
            return digest_hex in self._history.get(object_id, [])

    def object_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._history)

    # -- per-version outcome records (resync source material) ------------------

    def record_outcome(
        self, object_id: str, version: int, record: Dict[str, Any]
    ) -> None:
        """Persist the signed outcome that agreed ``version`` of ``object_id``.

        ``record`` carries everything a stale peer needs for a
        signature-checked catch-up apply: the run id, the proposer, the
        canonical proposal and outcome payloads, and the evidence tokens in
        their dictionary form.  Stored alongside the version history so
        restart-time resync can serve any missed version verbatim.
        """
        with self._lock:
            self._backend.put(
                self._outcome_key(object_id, version), codec.encode(record)
            )

    def outcome_record(self, object_id: str, version: int) -> Optional[Dict[str, Any]]:
        """The stored outcome record for ``version``, or ``None`` if absent."""
        raw = self._backend.get(self._outcome_key(object_id, version))
        if raw is None:
            return None
        return codec.decode(raw)
