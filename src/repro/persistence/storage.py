"""Key/value storage backends.

The stores in this package (:class:`~repro.persistence.audit_log.AuditLog`,
:class:`~repro.persistence.evidence_store.EvidenceStore`,
:class:`~repro.persistence.state_store.StateStore`) persist canonical byte
records through a :class:`StorageBackend`.  Two backends are provided: a
thread-safe in-memory backend for tests and simulation, and a file backend
that writes one file per record under a directory so evidence survives
process restarts.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Iterator, List, Optional

from repro.errors import PersistenceError


class StorageBackend:
    """Minimal ordered key/value store interface."""

    def put(self, key: str, value: bytes) -> None:
        raise NotImplementedError

    def get(self, key: str) -> Optional[bytes]:
        raise NotImplementedError

    def delete(self, key: str) -> None:
        raise NotImplementedError

    def keys(self) -> List[str]:
        """Return all keys in insertion order."""
        raise NotImplementedError

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def items(self) -> Iterator[tuple]:
        for key in self.keys():
            value = self.get(key)
            if value is not None:
                yield key, value


class InMemoryBackend(StorageBackend):
    """Thread-safe dictionary-backed storage."""

    def __init__(self) -> None:
        self._data: Dict[str, bytes] = {}
        self._lock = threading.RLock()

    def put(self, key: str, value: bytes) -> None:
        if not isinstance(value, (bytes, bytearray)):
            raise PersistenceError("storage values must be bytes")
        with self._lock:
            self._data[key] = bytes(value)

    def get(self, key: str) -> Optional[bytes]:
        with self._lock:
            return self._data.get(key)

    def delete(self, key: str) -> None:
        with self._lock:
            self._data.pop(key, None)

    def keys(self) -> List[str]:
        with self._lock:
            return list(self._data.keys())


class FileBackend(StorageBackend):
    """One-file-per-record storage under a directory.

    Keys are encoded to safe file names; an index file preserves insertion
    order so hash-chain verification can replay records in order.
    """

    _INDEX_NAME = "_index"

    def __init__(self, directory: str) -> None:
        self._directory = directory
        self._lock = threading.RLock()
        os.makedirs(directory, exist_ok=True)
        self._index_path = os.path.join(directory, self._INDEX_NAME)
        if not os.path.exists(self._index_path):
            with open(self._index_path, "w", encoding="utf-8"):
                pass

    def _encode_key(self, key: str) -> str:
        return key.encode("utf-8").hex()

    def _path_for(self, key: str) -> str:
        return os.path.join(self._directory, self._encode_key(key) + ".rec")

    def _read_index(self) -> List[str]:
        with open(self._index_path, "r", encoding="utf-8") as index_file:
            return [line.strip() for line in index_file if line.strip()]

    def put(self, key: str, value: bytes) -> None:
        if not isinstance(value, (bytes, bytearray)):
            raise PersistenceError("storage values must be bytes")
        with self._lock:
            is_new = not os.path.exists(self._path_for(key))
            with open(self._path_for(key), "wb") as record_file:
                record_file.write(bytes(value))
            if is_new:
                with open(self._index_path, "a", encoding="utf-8") as index_file:
                    index_file.write(self._encode_key(key) + "\n")

    def get(self, key: str) -> Optional[bytes]:
        with self._lock:
            path = self._path_for(key)
            if not os.path.exists(path):
                return None
            with open(path, "rb") as record_file:
                return record_file.read()

    def delete(self, key: str) -> None:
        with self._lock:
            path = self._path_for(key)
            if os.path.exists(path):
                os.remove(path)
            encoded = self._encode_key(key)
            remaining = [entry for entry in self._read_index() if entry != encoded]
            with open(self._index_path, "w", encoding="utf-8") as index_file:
                index_file.write("".join(entry + "\n" for entry in remaining))

    def keys(self) -> List[str]:
        with self._lock:
            keys = []
            for encoded in self._read_index():
                try:
                    keys.append(bytes.fromhex(encoded).decode("utf-8"))
                except ValueError:
                    raise PersistenceError(
                        f"corrupt index entry {encoded!r} in {self._directory!r}"
                    ) from None
            return keys
