"""Key/value storage backends.

The stores in this package (:class:`~repro.persistence.audit_log.AuditLog`,
:class:`~repro.persistence.evidence_store.EvidenceStore`,
:class:`~repro.persistence.state_store.StateStore`) persist canonical byte
records through a :class:`StorageBackend`.  Two backends are provided: a
thread-safe in-memory backend for tests and simulation, and a file backend
that writes one file per record under a directory so evidence survives
process restarts.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import PersistenceError


class StorageBackend:
    """Minimal ordered key/value store interface.

    Besides point reads the interface carries *prefix scans*
    (:meth:`scan` / :meth:`scan_keys` / :meth:`scan_stats`).  The default
    implementations walk ``keys()``, which any backend supports; backends
    that can answer a prefix scan with an indexed range query (the SQLite
    backend) advertise it with ``supports_prefix_scan = True``, and stores
    use that flag to serve derived indexes straight from the backend
    instead of rebuilding them in memory on open.
    """

    #: True when :meth:`scan` is an indexed range query rather than a
    #: filter over every key.  Stores may skip rebuild-on-open derived
    #: state for such backends.
    supports_prefix_scan = False

    def put(self, key: str, value: bytes) -> None:
        raise NotImplementedError

    def get(self, key: str) -> Optional[bytes]:
        raise NotImplementedError

    def delete(self, key: str) -> None:
        raise NotImplementedError

    def keys(self) -> List[str]:
        """Return all keys in insertion order."""
        raise NotImplementedError

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def items(self) -> Iterator[tuple]:
        for key in self.keys():
            value = self.get(key)
            if value is not None:
                yield key, value

    def scan(self, prefix: str) -> List[Tuple[str, bytes]]:
        """Return ``(key, value)`` pairs for keys with ``prefix``, key-sorted.

        Ordering is lexicographic by key (the order an embedded KV's range
        scan yields), *not* insertion order: callers that need storage
        order encode it into the key (zero-padded counters, or a sortable
        sequence suffix they parse back out).
        """
        return [
            (key, value)
            for key in self.scan_keys(prefix)
            for value in (self.get(key),)
            if value is not None
        ]

    def scan_keys(self, prefix: str) -> List[str]:
        """Return keys with ``prefix`` in lexicographic order."""
        return sorted(key for key in self.keys() if key.startswith(prefix))

    def scan_stats(self, prefix: str) -> Tuple[int, int]:
        """Return ``(record_count, total_value_bytes)`` under ``prefix``."""
        count = 0
        total = 0
        for _, value in self.scan(prefix):
            count += 1
            total += len(value)
        return count, total


class InMemoryBackend(StorageBackend):
    """Thread-safe dictionary-backed storage."""

    def __init__(self) -> None:
        self._data: Dict[str, bytes] = {}
        self._lock = threading.RLock()

    def put(self, key: str, value: bytes) -> None:
        if not isinstance(value, (bytes, bytearray)):
            raise PersistenceError("storage values must be bytes")
        with self._lock:
            self._data[key] = bytes(value)

    def get(self, key: str) -> Optional[bytes]:
        with self._lock:
            return self._data.get(key)

    def delete(self, key: str) -> None:
        with self._lock:
            self._data.pop(key, None)

    def keys(self) -> List[str]:
        with self._lock:
            return list(self._data.keys())


class FileBackend(StorageBackend):
    """One-file-per-record storage under a directory.

    Keys are encoded to safe file names; an index file preserves insertion
    order so hash-chain verification can replay records in order.

    Writes are crash-atomic: record bytes land in a same-directory temp
    file, are fsynced, and reach their final name through an atomic rename,
    so a process killed mid-write can never leave a torn record -- only a
    ``.tmp`` leftover, which is swept on reopen and never served.  The
    index append is fsynced too, and the index entry is the *commit point*
    of a put: a record file whose index entry never completed (or whose
    trailing index line was torn) is treated as if the put never happened,
    which is exactly the write-ahead semantics the run journal relies on.
    """

    _INDEX_NAME = "_index"
    _TEMP_SUFFIX = ".tmp"

    def __init__(self, directory: str) -> None:
        self._directory = directory
        self._lock = threading.RLock()
        os.makedirs(directory, exist_ok=True)
        self._index_path = os.path.join(directory, self._INDEX_NAME)
        if not os.path.exists(self._index_path):
            with open(self._index_path, "w", encoding="utf-8"):
                pass
        self._sweep_temp_files()
        # In-memory mirror of the committed index (order + membership), so
        # put/get need not re-read the index file on every call.  Torn
        # trailing entries from a killed writer never enter the mirror.
        self._entries: List[str] = []
        self._committed = set()
        for encoded in self._read_index():
            if self._valid_entry(encoded) and encoded not in self._committed:
                self._entries.append(encoded)
                self._committed.add(encoded)
        self._repair_index()

    def _repair_index(self) -> None:
        """Rewrite the index if it differs from the committed entries.

        A writer killed mid-append leaves a torn, newline-less trailing
        line; without a rewrite the next append would concatenate onto it
        and corrupt that entry too.
        """
        canonical = "".join(entry + "\n" for entry in self._entries).encode("utf-8")
        with open(self._index_path, "rb") as index_file:
            raw = index_file.read()
        if raw != canonical:
            self._replace_atomically(self._index_path, canonical)

    def _sweep_temp_files(self) -> None:
        """Remove temp files a killed writer left behind; they never committed.

        Temp names embed the writer's pid (``<final>.<pid>.tmp``): sibling
        processes share evidence directories, so a sweep must only claim
        temps whose writer is gone -- deleting a live writer's temp would
        make its imminent rename fail.
        """
        for name in os.listdir(self._directory):
            if not name.endswith(self._TEMP_SUFFIX):
                continue
            try:
                pid = int(name[: -len(self._TEMP_SUFFIX)].rsplit(".", 1)[1])
                os.kill(pid, 0)  # raises if no such process
                continue  # the writer is alive; its rename is still coming
            except (IndexError, ValueError, ProcessLookupError):
                pass  # unparseable or dead writer: the temp never committed
            except PermissionError:
                continue  # alive, but owned by another user
            try:
                os.remove(os.path.join(self._directory, name))
            except OSError:
                pass  # concurrent sweeper/writer; the file is not served anyway

    def _encode_key(self, key: str) -> str:
        return key.encode("utf-8").hex()

    def _path_for(self, key: str) -> str:
        return os.path.join(self._directory, self._encode_key(key) + ".rec")

    def _read_index(self) -> List[str]:
        with open(self._index_path, "r", encoding="utf-8") as index_file:
            return [line.strip() for line in index_file if line.strip()]

    def _valid_entry(self, encoded: str) -> bool:
        """An index entry committed iff it decodes and its record file exists."""
        try:
            key = bytes.fromhex(encoded).decode("utf-8")
        except ValueError:
            return False  # torn trailing append from a killed writer
        return os.path.exists(self._path_for(key))

    @staticmethod
    def _write_durable(path: str, data: bytes, mode: str) -> None:
        with open(path, mode) as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())

    def _replace_atomically(self, final_path: str, data: bytes) -> None:
        temp_path = f"{final_path}.{os.getpid()}{self._TEMP_SUFFIX}"
        self._write_durable(temp_path, data, "wb")
        os.replace(temp_path, final_path)

    def put(self, key: str, value: bytes) -> None:
        if not isinstance(value, (bytes, bytearray)):
            raise PersistenceError("storage values must be bytes")
        with self._lock:
            encoded = self._encode_key(key)
            self._replace_atomically(self._path_for(key), bytes(value))
            if encoded not in self._committed:
                self._write_durable(
                    self._index_path, (encoded + "\n").encode("utf-8"), "ab"
                )
                self._entries.append(encoded)
                self._committed.add(encoded)

    def get(self, key: str) -> Optional[bytes]:
        with self._lock:
            if self._encode_key(key) not in self._committed:
                return None
            path = self._path_for(key)
            if not os.path.exists(path):
                return None
            with open(path, "rb") as record_file:
                return record_file.read()

    def delete(self, key: str) -> None:
        with self._lock:
            encoded = self._encode_key(key)
            if encoded not in self._committed:
                return
            self._entries.remove(encoded)
            self._committed.discard(encoded)
            # Rewrite the index first (atomic replace): the entry is the
            # commit point, so once it is gone the record is logically
            # deleted even if a crash lands before the file unlink.
            self._replace_atomically(
                self._index_path,
                "".join(entry + "\n" for entry in self._entries).encode("utf-8"),
            )
            path = self._path_for(key)
            if os.path.exists(path):
                os.remove(path)

    def keys(self) -> List[str]:
        with self._lock:
            return [
                bytes.fromhex(encoded).decode("utf-8") for encoded in self._entries
            ]


class StorageProfile:
    """One ``storage=`` selector provisioning every per-organisation backend.

    A profile string names where *all* of an organisation's persistent
    stores (evidence, run journal, audit log) live:

    ``"memory"``
        A fresh :class:`InMemoryBackend` per store -- the default,
        equivalent to passing no backends at all.
    ``"file:<dir>"``
        A crash-atomic :class:`FileBackend` per store under
        ``<dir>/<owner>/<store>``.  Stores get separate directories
        because ``FileBackend`` owns its directory's index file
        exclusively.
    ``"sqlite:<path>"``
        One shared :class:`~repro.persistence.sqlite_backend.SQLiteBackend`
        database file.  Key prefixes (``evidence:``/``runjournal:``/
        ``audit:`` plus the owner URI) already namespace every store and
        owner, so many organisations -- and many OS processes -- share the
        single embedded-KV file, and reopening stores costs O(queried)
        via prefix scans instead of O(all records).
    """

    KINDS = ("memory", "file", "sqlite")

    def __init__(self, kind: str, location: Optional[str] = None) -> None:
        self.kind = kind
        self.location = location

    @classmethod
    def parse(cls, profile: "str | StorageProfile") -> "StorageProfile":
        if isinstance(profile, StorageProfile):
            return profile
        if not isinstance(profile, str):
            raise PersistenceError(
                f"storage profile must be a string, got {type(profile).__name__}"
            )
        kind, _, location = profile.partition(":")
        if kind == "memory" and not location:
            return cls("memory")
        if kind in ("file", "sqlite") and location:
            return cls(kind, location)
        raise PersistenceError(
            f"unknown storage profile {profile!r}: expected 'memory', "
            "'file:<dir>' or 'sqlite:<path>'"
        )

    @staticmethod
    def _safe_segment(owner: str) -> str:
        return "".join(ch if ch.isalnum() or ch in "-._" else "_" for ch in owner)

    def backend_for(self, owner: str, store: str) -> StorageBackend:
        """Provision the backend for one store (``evidence``/``runjournal``/
        ``audit``) of ``owner``."""
        if self.kind == "memory":
            return InMemoryBackend()
        if self.kind == "file":
            return FileBackend(
                os.path.join(self.location, self._safe_segment(owner), store)
            )
        from repro.persistence.sqlite_backend import SQLiteBackend

        return SQLiteBackend(self.location)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        suffix = f":{self.location}" if self.location else ""
        return f"StorageProfile({self.kind}{suffix})"
