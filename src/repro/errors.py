"""Exception hierarchy for the non-repudiation middleware.

Every error raised by the library derives from :class:`ReproError` so that
applications can catch library failures with a single ``except`` clause while
still being able to discriminate between, for example, cryptographic failures
(:class:`CryptoError`) and protocol failures (:class:`ProtocolError`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


# ---------------------------------------------------------------------------
# Cryptography / evidence
# ---------------------------------------------------------------------------


class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class SignatureError(CryptoError):
    """A signature could not be produced or did not verify."""


class KeyError_(CryptoError):
    """A key is malformed, missing or unusable for the requested operation."""


class CertificateError(CryptoError):
    """A certificate is invalid, expired, revoked or its chain is broken."""


class TimestampError(CryptoError):
    """A timestamp token could not be produced or did not verify."""


class EvidenceError(ReproError):
    """Non-repudiation evidence is missing, malformed or fails verification."""


class EvidenceVerificationError(EvidenceError):
    """Evidence was present but its verification failed."""


# ---------------------------------------------------------------------------
# Persistence
# ---------------------------------------------------------------------------


class PersistenceError(ReproError):
    """Base class for storage failures."""


class AuditLogError(PersistenceError):
    """The audit log rejected an entry or detected tampering."""


class AuditLogTamperedError(AuditLogError):
    """Hash-chain verification of the audit log failed."""


class StateStoreError(PersistenceError):
    """The state store could not resolve or record a state digest."""


# ---------------------------------------------------------------------------
# Transport
# ---------------------------------------------------------------------------


class TransportError(ReproError):
    """Base class for (simulated) network failures."""


class DeliveryError(TransportError):
    """A message could not be delivered within the configured retry budget."""


class UnknownEndpointError(TransportError):
    """The destination endpoint is not registered with the network."""


class RemoteInvocationError(TransportError):
    """A remote invocation raised on the remote side; carries the cause."""


# ---------------------------------------------------------------------------
# Container
# ---------------------------------------------------------------------------


class ContainerError(ReproError):
    """Base class for component-container failures."""


class DeploymentError(ContainerError):
    """A component could not be deployed (bad descriptor, duplicate name...)."""


class NoSuchComponentError(ContainerError):
    """Lookup of a component by name failed."""


class InterceptorError(ContainerError):
    """An interceptor in the invocation chain failed."""


# ---------------------------------------------------------------------------
# Access control / membership
# ---------------------------------------------------------------------------


class AccessError(ReproError):
    """Base class for access-control failures."""


class AccessDeniedError(AccessError):
    """The caller's credentials do not authorise the requested action."""


class CredentialError(AccessError):
    """A credential is malformed or cannot be verified."""


class MembershipError(ReproError):
    """Group-membership operation failed (unknown member, duplicate join...)."""


# ---------------------------------------------------------------------------
# Protocols
# ---------------------------------------------------------------------------


class ProtocolError(ReproError):
    """Base class for non-repudiation protocol failures."""


class ProtocolStateError(ProtocolError):
    """A message arrived that is not legal in the protocol's current state."""


class ProtocolTimeoutError(ProtocolError):
    """The protocol run did not complete within the agreed timeout."""


class ProtocolAbortedError(ProtocolError):
    """The protocol run was aborted (by a party or by the TTP)."""


class ValidationRejectedError(ProtocolError):
    """A proposed update to shared information was vetoed by a validator."""


class CoordinationError(ProtocolError):
    """The state-coordination protocol failed to reach a decision."""


class FairExchangeError(ProtocolError):
    """A fair-exchange protocol run failed or was resolved/aborted by the TTP."""


class DisputeError(ReproError):
    """Dispute resolution could not reach a verdict from the supplied evidence."""


# ---------------------------------------------------------------------------
# Contracts / transactions (future-work extensions)
# ---------------------------------------------------------------------------


class ContractError(ReproError):
    """Contract-monitoring failure (unknown state, illegal transition...)."""


class ContractViolationError(ContractError):
    """An interaction violated the monitored contract."""


class TransactionError(ReproError):
    """Transactional coordination failure (JTA-analogue)."""


class TransactionAbortedError(TransactionError):
    """The distributed transaction was rolled back."""
