"""Lazy per-peer channel lifecycle.

Everything before this module assumed a node knows its whole peer set up
front: the wire transport eagerly exchanged credentials with every
configured peer, and per-peer state (pooled sockets, pinned keys, routes,
circuit breakers) accumulated forever.  "Millions of users" means
thousands of pairwise peer relationships per node, most of them cold at
any moment -- so per-peer state must be created **on first use** and
evicted when idle, the way an off-chain VASP keeps one lazily-created
channel object per counterparty.

:class:`PeerChannelManager` owns that lifecycle.  It is deliberately
transport-agnostic: a *resolver* callback performs whatever work makes a
peer reachable (credential introduction, route installation, endpoint
lookup) and returns an opaque endpoint token (the wire layer uses
``(host, port)``); an *on_evict* callback releases transport resources
when a channel dies.  The manager contributes the policy: LRU eviction
over a live-channel cap, idle-timeout sweeps, audited evictions, safe
re-creation on the next touch, and thread-safety that never holds the
manager lock across a resolver's network round trip.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.clock import Clock, SystemClock
from repro.errors import ProtocolError

#: Audit category for channel lifecycle events.
AUDIT_CATEGORY_PEERING = "transport.peering"

#: Eviction reasons recorded in stats and audit records.
EVICT_LRU = "lru-cap"
EVICT_IDLE = "idle-timeout"
EVICT_EXPLICIT = "explicit"


@dataclass(frozen=True)
class PeeringPolicy:
    """Bounds on live per-peer channel state.

    ``max_live_channels`` caps how many peers may hold live channel state
    at once (least-recently-used channels are evicted over the cap);
    ``idle_timeout_seconds`` additionally retires channels untouched for
    that long (``None`` disables idle sweeps).
    """

    max_live_channels: int = 128
    idle_timeout_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_live_channels < 1:
            raise ProtocolError(
                f"peering cap must be >= 1, got {self.max_live_channels}"
            )
        if self.idle_timeout_seconds is not None and self.idle_timeout_seconds <= 0:
            raise ProtocolError(
                f"peering idle timeout must be positive, got "
                f"{self.idle_timeout_seconds}"
            )


@dataclass
class PeerChannel:
    """Live channel state for one peer: endpoint plus activity tracking."""

    party: str
    endpoint: Any
    created_at: float
    last_activity: float
    touches: int = 0


@dataclass
class ChannelStats:
    """Lifetime counters; ``live``/``peak_live`` track the channel table."""

    created: int = 0
    recreated: int = 0
    touches: int = 0
    peak_live: int = 0
    evictions: Dict[str, int] = field(default_factory=dict)

    @property
    def evicted(self) -> int:
        return sum(self.evictions.values())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "created": self.created,
            "recreated": self.recreated,
            "touches": self.touches,
            "peak_live": self.peak_live,
            "evicted": self.evicted,
            "evictions": dict(self.evictions),
        }


class PeerChannelManager:
    """Create peer channels lazily, evict them under a cap, recreate on touch.

    ``resolver(party)`` is invoked exactly once per channel creation (never
    under the manager lock, so concurrent touches of *different* peers
    resolve in parallel while concurrent touches of the *same* peer share
    one resolution); whatever it returns becomes the channel's endpoint.
    ``on_evict(channel, reason, endpoint_unused)`` runs after a channel
    leaves the table -- ``endpoint_unused`` is True when no other live
    channel shares the endpoint, i.e. endpoint-level resources (pooled
    sockets) may be released.
    """

    def __init__(
        self,
        resolver: Callable[[str], Any],
        policy: Optional[PeeringPolicy] = None,
        clock: Optional[Clock] = None,
        on_evict: Optional[Callable[[PeerChannel, str, bool], None]] = None,
    ) -> None:
        self._resolver = resolver
        self.policy = policy or PeeringPolicy()
        self._clock = clock or SystemClock()
        self._on_evict = on_evict
        self._lock = threading.RLock()
        self._channels: "OrderedDict[str, PeerChannel]" = OrderedDict()
        self._creating: Dict[str, threading.Event] = {}
        self._endpoint_refs: Dict[Any, int] = {}
        self._known_parties: set = set()
        self.stats = ChannelStats()
        self.audit_log = None

    def attach_audit_log(self, audit_log) -> None:
        """Record channel evictions in ``audit_log`` from now on."""
        self.audit_log = audit_log

    # -- the touch -----------------------------------------------------------

    def resolve(self, party: str) -> Any:
        """Return ``party``'s endpoint, creating its channel if needed.

        Every call is a *touch*: it refreshes the channel's LRU position
        and last-activity stamp, and opportunistically sweeps idle
        channels.  A concurrent eviction between two touches is invisible
        to callers -- the next touch simply recreates the channel.
        """
        while True:
            hit = None
            owns_creation = False
            with self._lock:
                swept = self._sweep_idle_locked(self._clock.now())
                channel = self._channels.get(party)
                if channel is not None:
                    channel.last_activity = self._clock.now()
                    channel.touches += 1
                    self.stats.touches += 1
                    self._channels.move_to_end(party)
                    hit = channel
                else:
                    pending = self._creating.get(party)
                    if pending is None:
                        pending = self._creating[party] = threading.Event()
                        owns_creation = True
            for victim, reason, endpoint_unused in swept:
                self._notify_evicted(victim, reason, endpoint_unused)
            if hit is not None:
                return hit.endpoint
            if owns_creation:
                break
            pending.wait()
        try:
            endpoint = self._resolver(party)
        except BaseException:
            with self._lock:
                self._creating.pop(party, None)
            pending.set()
            raise
        evicted: List[PeerChannel] = []
        with self._lock:
            now = self._clock.now()
            channel = PeerChannel(
                party=party, endpoint=endpoint, created_at=now,
                last_activity=now, touches=1,
            )
            self._channels[party] = channel
            self._endpoint_refs[endpoint] = self._endpoint_refs.get(endpoint, 0) + 1
            self.stats.created += 1
            self.stats.touches += 1
            if party in self._known_parties:
                self.stats.recreated += 1
            self._known_parties.add(party)
            while len(self._channels) > self.policy.max_live_channels:
                evicted.append(self._remove_locked(
                    next(iter(self._channels)), EVICT_LRU
                ))
            self.stats.peak_live = max(self.stats.peak_live, len(self._channels))
            self._creating.pop(party, None)
        pending.set()
        for victim, reason, endpoint_unused in evicted:
            self._notify_evicted(victim, reason, endpoint_unused)
        return endpoint

    # -- eviction ------------------------------------------------------------

    def _remove_locked(self, party: str, reason: str):
        channel = self._channels.pop(party)
        refs = self._endpoint_refs.get(channel.endpoint, 1) - 1
        if refs <= 0:
            self._endpoint_refs.pop(channel.endpoint, None)
        else:
            self._endpoint_refs[channel.endpoint] = refs
        self.stats.evictions[reason] = self.stats.evictions.get(reason, 0) + 1
        return channel, reason, refs <= 0

    def _notify_evicted(
        self, channel: PeerChannel, reason: str, endpoint_unused: bool
    ) -> None:
        if self.audit_log is not None:
            self.audit_log.append(
                category=AUDIT_CATEGORY_PEERING,
                subject=channel.party,
                details={
                    "event": "peer-channel-evicted",
                    "reason": reason,
                    "idle_seconds": self._clock.now() - channel.last_activity,
                    "touches": channel.touches,
                    "live_channels": len(self._channels),
                },
            )
        if self._on_evict is not None:
            self._on_evict(channel, reason, endpoint_unused)

    def _sweep_idle_locked(self, now: float) -> List[tuple]:
        timeout = self.policy.idle_timeout_seconds
        evicted = []
        if timeout is None:
            return evicted
        while self._channels:
            party, channel = next(iter(self._channels.items()))
            if now - channel.last_activity < timeout:
                break  # LRU head is the stalest; the rest are fresher
            evicted.append(self._remove_locked(party, EVICT_IDLE))
        return evicted

    def evict_idle(self) -> List[str]:
        """Evict every channel idle past the policy timeout; return parties."""
        with self._lock:
            evicted = self._sweep_idle_locked(self._clock.now())
        for channel, reason, endpoint_unused in evicted:
            self._notify_evicted(channel, reason, endpoint_unused)
        return [channel.party for channel, _, _ in evicted]

    def evict(self, party: str, reason: str = EVICT_EXPLICIT) -> bool:
        """Evict one channel now; returns False when no channel is live."""
        with self._lock:
            if party not in self._channels:
                return False
            channel, reason, endpoint_unused = self._remove_locked(party, reason)
        self._notify_evicted(channel, reason, endpoint_unused)
        return True

    def close(self) -> None:
        """Evict everything (shutdown path)."""
        with self._lock:
            parties = list(self._channels)
        for party in parties:
            self.evict(party, EVICT_EXPLICIT)

    # -- introspection -------------------------------------------------------

    def live_channels(self) -> int:
        with self._lock:
            return len(self._channels)

    def live_parties(self) -> List[str]:
        """Live parties in LRU order (stalest first)."""
        with self._lock:
            return list(self._channels)

    def channel(self, party: str) -> Optional[PeerChannel]:
        with self._lock:
            return self._channels.get(party)
