"""Lazy per-peer channel management for many-peer scale-out.

A node talking to thousands of peers cannot pre-register them all:
:class:`PeerChannelManager` creates per-peer channel state (wire
connections, credential exchange, routes, circuit-breaker entries) on
first use, tracks last-activity, and evicts least-recently-used or idle
channels under a configurable cap -- with every eviction audited and the
channel safely recreated on its next touch.  The wire transport threads
the manager through ``WireTransport.enable_peering`` /
``WireNetwork.attach_peer_manager``; :class:`PeeringPolicy` carries the
bounds and rides in :class:`repro.core.config.PeeringConfig`.
"""

from repro.peering.manager import (
    AUDIT_CATEGORY_PEERING,
    EVICT_EXPLICIT,
    EVICT_IDLE,
    EVICT_LRU,
    ChannelStats,
    PeerChannel,
    PeerChannelManager,
    PeeringPolicy,
)

__all__ = [
    "AUDIT_CATEGORY_PEERING",
    "EVICT_EXPLICIT",
    "EVICT_IDLE",
    "EVICT_LRU",
    "ChannelStats",
    "PeerChannel",
    "PeerChannelManager",
    "PeeringPolicy",
]
