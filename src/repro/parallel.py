"""Shared thread-pool infrastructure for the parallel protocol engine.

The protocol hot paths fan work out in two places: the simulated network
dispatches a batch of admitted messages to their destination handlers
(:class:`repro.transport.network.ParallelDispatch`), and evidence-token sets
are verified together (:meth:`repro.core.evidence.EvidenceVerifier.verify_all`).
Both draw worker threads from one process-wide executor managed here, so the
engine's total thread count is bounded no matter how many networks, verifiers
or protocol runs are live.

Re-entrancy contract: work submitted *from* a pool worker runs inline on the
calling thread instead of being resubmitted.  A nested fan-out (a handler
that itself fans out, a verification triggered inside a dispatched handler)
therefore can never deadlock on an exhausted pool -- it degrades to the
sequential behaviour, which is always correct because every parallel path in
this package is also valid executed serially.

The heavy lifting on these paths is multi-hundred-bit modular exponentiation
routed through OpenSSL's ``BN_mod_exp`` via :mod:`ctypes`
(:mod:`repro.crypto.modexp`); ctypes foreign calls release the GIL, so
signature work genuinely overlaps across workers, as do real-latency sleeps
of a wall-clock network model.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_MAX_WORKERS",
    "current_max_workers",
    "executor_queue_depth",
    "in_worker_thread",
    "mark_worker_thread",
    "run_all",
    "set_max_workers",
    "shared_executor",
    "shutdown_shared_executor",
    "submit",
]

#: Sized for latency overlap (an 8-party fan-out should dispatch in one
#: wave), not for CPU count: workers spend most of their time either inside
#: GIL-releasing OpenSSL calls or sleeping on simulated link latency.
DEFAULT_MAX_WORKERS = max(16, 4 * (os.cpu_count() or 1))

_executor: Optional[ThreadPoolExecutor] = None
_executor_lock = threading.Lock()
_max_workers = DEFAULT_MAX_WORKERS
_worker_state = threading.local()

# Work accounting for the quiescence criterion: every thunk routed through
# submit()/run_all() -- queued or executing, shared pool or inline fallback --
# is counted until it finishes, so "executor queue depth zero" really means
# no engine work is in flight anywhere.
_inflight = 0
_inflight_lock = threading.Lock()


def _enter_work() -> None:
    global _inflight
    with _inflight_lock:
        _inflight += 1


def _exit_work() -> None:
    global _inflight
    with _inflight_lock:
        _inflight -= 1


def executor_queue_depth() -> int:
    """Engine thunks currently queued or executing (see module accounting).

    The third leg of the retry scheduler's quiescence criterion
    (:meth:`repro.transport.scheduler.RetryScheduler.quiescence`): pending
    continuations and fanned-out timer callbacks live here between being
    scheduled and finishing.  The count is process-wide, so when several
    engines share the process one engine's in-flight work delays another's
    idle verdict -- conservative (never a false idle), and avoidable for
    work that is not protocol-run state by submitting it with
    ``background=True``.
    """
    with _inflight_lock:
        return _inflight


def mark_worker_thread() -> None:
    """Mark the calling thread as a fan-out worker.

    Used as the executor ``initializer`` by the shared pool and by any
    private dispatch pool, so that :func:`in_worker_thread` — and with it
    the run-nested-work-inline rule — covers every pool that participates
    in the re-entrancy contract.
    """
    _worker_state.inside = True


def in_worker_thread() -> bool:
    """True when the calling thread is a marked fan-out worker."""
    return getattr(_worker_state, "inside", False)


def shared_executor() -> ThreadPoolExecutor:
    """Return the process-wide executor, creating it lazily."""
    global _executor
    with _executor_lock:
        if _executor is None:
            _executor = ThreadPoolExecutor(
                max_workers=_max_workers,
                thread_name_prefix="repro-parallel",
                initializer=mark_worker_thread,
            )
        return _executor


def set_max_workers(count: Optional[int]) -> None:
    """Bound (or, with ``None``, restore the default size of) the shared pool.

    Shuts the current executor down and lets the next :func:`shared_executor`
    call recreate it at the new size.  Benchmarks use this to demonstrate
    run multiplexing on a deliberately small pool (hundreds of concurrent
    protocol runs over <= 8 workers); production code normally leaves the
    latency-overlap default alone.  Call only from quiescent points -- live
    fan-outs on the old executor are waited for during shutdown.
    """
    global _max_workers
    if count is not None and count < 1:
        raise ValueError("the shared pool needs at least one worker")
    shutdown_shared_executor()
    with _executor_lock:
        _max_workers = DEFAULT_MAX_WORKERS if count is None else count


def current_max_workers() -> int:
    """The worker bound the next-created shared executor will use."""
    with _executor_lock:
        return _max_workers


def shutdown_shared_executor() -> None:
    """Shut the shared executor down (mainly for tests); it is recreated on demand."""
    global _executor
    with _executor_lock:
        executor, _executor = _executor, None
    if executor is not None:
        executor.shutdown(wait=True)


def run_all(
    thunks: Sequence[Callable[[], Any]], parallel: bool = True
) -> List[Tuple[Any, Optional[Exception]]]:
    """Run ``thunks`` and return one ``(result, error)`` pair per thunk, in order.

    With ``parallel=True`` the thunks run on the shared executor; each thunk's
    exception is captured in its own slot, so one failure never masks the
    other outcomes.  Falls back to inline sequential execution for trivial
    batches and for calls issued from a pool worker (see the re-entrancy
    contract in the module docstring).
    """
    thunks = list(thunks)
    if not parallel or len(thunks) <= 1 or in_worker_thread():
        return [_run_one(thunk) for thunk in thunks]
    futures: List[Future] = []
    for thunk in thunks:
        _enter_work()
        try:
            futures.append(shared_executor().submit(_run_one_counted, thunk))
        except BaseException:
            # A failed submit (e.g. executor shut down concurrently) runs no
            # thunk: undo its count or quiescence would block forever.
            _exit_work()
            for future in futures:
                future.result()
            raise
    return [future.result() for future in futures]


def submit(thunk: Callable[[], Any], background: bool = False) -> Optional[Future]:
    """Run one thunk on the shared executor, honouring the re-entrancy contract.

    Returns the :class:`Future` tracking the submitted work, or ``None`` when
    the calling thread is itself a pool worker -- the thunk then ran inline
    before this function returned (same rule as :func:`run_all`).  Used by the
    retry scheduler to fire due wall-clock timers concurrently: each fired
    callback re-sends on a possibly slow link, so firing inline would
    serialise the resend latencies the scheduler exists to overlap.  Thunks
    must trap their own exceptions (retry state machines do); an exception
    escaping an unawaited future would otherwise vanish.

    ``background=True`` marks work that is *not* part of any protocol run
    (opportunistic precomputation, cache warming): it is excluded from
    :func:`executor_queue_depth`, so it cannot hold the retry scheduler's
    quiescence criterion hostage -- quiescence answers "can anything still
    change a run's state?", which background work by definition cannot.
    """
    if in_worker_thread():
        thunk()
        return None
    if background:
        return shared_executor().submit(thunk)
    _enter_work()

    def counted() -> None:
        try:
            thunk()
        finally:
            _exit_work()

    try:
        return shared_executor().submit(counted)
    except BaseException:
        _exit_work()
        raise


def _run_one(thunk: Callable[[], Any]) -> Tuple[Any, Optional[Exception]]:
    try:
        return thunk(), None
    except Exception as error:  # noqa: BLE001 - per-thunk isolation by design
        return None, error


def _run_one_counted(thunk: Callable[[], Any]) -> Tuple[Any, Optional[Exception]]:
    try:
        return _run_one(thunk)
    finally:
        _exit_work()
