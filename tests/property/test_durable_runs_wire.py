"""Kill-and-restart chaos tests for durable runs over the real wire.

The in-process recovery suite (``tests/integration/test_durable_recovery.py``)
injects crashes as exceptions; here the crash is real: a proposer process is
``SIGKILL``-ed mid-coordination over TCP sockets, restarted from nothing but
its durable pieces (keypair file, run-journal directory, evidence directory),
and must replay its journal and converge with the responders it abandoned.

The property under test is *converge, never diverge*: whatever the fault
schedule, after recovery every replica holds the same state and version, the
two responders hold identical evidence multisets for the crashed run, and no
scheduler timers leak.  A proposer killed before the commit barrier recovers
by aborting (responders are told, nothing applies anywhere); killed after it,
by resuming (everyone applies).  A proposer that never comes back at all is
garbage-collected by the responders' proposal-age expiry timers.

The fault schedule is seeded (``CHAOS_SEEDS`` environment variable, comma
separated) so CI can fan out deterministic variations.
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
import time
from collections import Counter
from pathlib import Path

import pytest

PROPOSER = "urn:org:proposer"
RESPONDERS = ["urn:org:responder-b", "urn:org:responder-c"]
PARTIES = [PROPOSER] + RESPONDERS
OBJECT_ID = "shared-doc"
INITIAL_STATE = {"revision": 0, "body": "draft"}

REPO_ROOT = Path(__file__).resolve().parents[2]
KILL_STAGES = ["after-journal-proposed", "after-journal-committed"]
SEEDS = [int(seed) for seed in os.environ.get("CHAOS_SEEDS", "7").split(",")]


def crash_state(seed: int) -> dict:
    return {"revision": 1, "body": f"crashed-while-proposing-{seed}"}


def follow_up_count(seed: int) -> int:
    return random.Random(seed).randint(1, 3)


def follow_up_state(seed: int, index: int, base_revision: int) -> dict:
    return {"revision": base_revision + index, "body": f"follow-up-{seed}-{index}"}


# -- the proposer process ------------------------------------------------------
#
# This module doubles as the proposer's entry point (the pytest process hosts
# the responders).  The proposer persists its identity and its durable stores
# under --dir, so a relaunch with --phase recover is a true restart: same key
# (the responders' TOFU pinning requires it), same journal, same evidence.


def _proposer_keypair(directory: Path):
    from repro.crypto.keys import KeyPair, PrivateKey, PublicKey
    from repro.crypto.signature import get_scheme

    key_path = directory / "proposer-keypair.json"
    if key_path.exists():
        payload = json.loads(key_path.read_text())
        return KeyPair(
            private=PrivateKey.from_dict(payload["private"]),
            public=PublicKey.from_dict(payload["public"]),
        )
    keypair = get_scheme("hmac").generate_keypair()
    key_path.write_text(
        json.dumps(
            {
                "private": keypair.private.to_dict(),
                "public": keypair.public.to_dict(),
            }
        )
    )
    return keypair


def _proposer_domain(directory: Path):
    from repro import TrustDomain
    from repro.persistence.storage import FileBackend
    from repro.transport.wire import WireTransport

    endpoint = json.loads((directory / "responders.json").read_text())
    keypair = _proposer_keypair(directory)
    transport = WireTransport(
        local_parties=[PROPOSER],
        peers={uri: (endpoint["host"], endpoint["port"]) for uri in RESPONDERS},
    )
    domain = TrustDomain.create(
        PARTIES,
        transport=transport,
        scheme="hmac",
        durable_runs=True,
        run_journal_backend_factory=lambda uri: FileBackend(
            str(directory / "proposer-journal")
        ),
        evidence_backend_factory=lambda uri: FileBackend(
            str(directory / "proposer-evidence")
        ),
        keypair_factory=lambda uri: keypair,
    )
    domain.share_object(OBJECT_ID, dict(INITIAL_STATE))
    return domain, transport


def proposer_run(directory: Path, stage: str, seed: int) -> None:
    """First life: arm the SIGKILL injector and propose into it."""
    from repro.core.sharing import set_run_fault_injector

    domain, transport = _proposer_domain(directory)
    organisation = domain.organisation(PROPOSER)

    def die_at(at_stage, run):
        if at_stage == stage:
            os.kill(os.getpid(), signal.SIGKILL)

    set_run_fault_injector(die_at)
    organisation.propose_update(OBJECT_ID, crash_state(seed))
    # Unreachable for every KILL_STAGES value; guard against silent no-kill.
    transport.close()
    raise AssertionError(f"fault injector never fired for stage {stage!r}")


def proposer_recover(directory: Path, seed: int) -> None:
    """Second life: replay the journal, then keep working."""
    domain, transport = _proposer_domain(directory)
    organisation = domain.organisation(PROPOSER)
    actions = organisation.recover_runs()

    follow_ups = follow_up_count(seed)
    for index in range(1, follow_ups + 1):
        base = organisation.controller.get_version(OBJECT_ID)
        outcome = organisation.propose_update(
            OBJECT_ID, follow_up_state(seed, index, base)
        )
        assert outcome.agreed, outcome.reason

    (run_id,) = actions
    result = {
        "actions": actions,
        "version": organisation.controller.get_version(OBJECT_ID),
        "state": organisation.controller.get_state(OBJECT_ID),
        "evidence": sorted(
            (record.token_type, record.role)
            for record in organisation.evidence_for_run(run_id)
        ),
        "open_after_recovery": [
            record.run_id
            for record in organisation.controller.run_journal.open_runs()
        ],
    }
    (directory / "recover-result.json").write_text(json.dumps(result))
    transport.close()


def _main() -> None:
    import argparse

    parser = argparse.ArgumentParser()
    parser.add_argument("--dir", required=True)
    parser.add_argument("--phase", choices=["run", "recover"], required=True)
    parser.add_argument("--stage", default="")
    parser.add_argument("--seed", type=int, default=0)
    arguments = parser.parse_args()
    directory = Path(arguments.dir)
    if arguments.phase == "run":
        proposer_run(directory, arguments.stage, arguments.seed)
    else:
        proposer_recover(directory, arguments.seed)


# -- the responder (pytest) process --------------------------------------------


class ResponderHost:
    """Both responders, hosted in the test process on one wire node."""

    def __init__(self, directory: Path, orphan_run_timeout: float = 30.0):
        from repro import TrustDomain
        from repro.transport.wire import WireTransport

        self.directory = directory
        self.transport = WireTransport(
            local_parties=list(RESPONDERS),
            await_remote_credentials=False,  # the proposer introduces itself
        )
        self.domain = TrustDomain.create(
            PARTIES,
            transport=self.transport,
            scheme="hmac",
            durable_runs=True,
            scheduled_retries=True,
            orphan_run_timeout=orphan_run_timeout,
        )
        self.domain.share_object(OBJECT_ID, dict(INITIAL_STATE))
        (directory / "responders.json").write_text(
            json.dumps({"host": self.transport.host, "port": self.transport.port})
        )

    def organisations(self):
        return [self.domain.organisation(uri) for uri in RESPONDERS]

    def versions(self):
        return [
            org.controller.get_version(OBJECT_ID) for org in self.organisations()
        ]

    def states(self):
        return [org.controller.get_state(OBJECT_ID) for org in self.organisations()]

    def evidence_summaries(self, run_id):
        return [
            Counter(
                (record.token_type, record.role)
                for record in org.evidence_for_run(run_id)
            )
            for org in self.organisations()
        ]

    def audit_events(self, run_id):
        return [
            {record.details.get("event") for record in org.audit_records(subject=run_id)}
            for org in self.organisations()
        ]

    def spawn_proposer(self, phase: str, stage: str = "", seed: int = 0):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO_ROOT / "src"), env.get("PYTHONPATH", "")]
        ).rstrip(os.pathsep)
        return subprocess.Popen(
            [
                sys.executable,
                str(Path(__file__).resolve()),
                "--dir",
                str(self.directory),
                "--phase",
                phase,
                "--stage",
                stage,
                "--seed",
                str(seed),
            ],
            env=env,
        )

    def wait_until(self, predicate, timeout: float = 30.0, message: str = ""):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                return
            time.sleep(0.05)
        raise AssertionError(message or "condition never reached on responders")

    def close(self):
        self.transport.close()


@pytest.fixture
def responders(tmp_path):
    host = ResponderHost(tmp_path)
    yield host
    host.close()


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("stage", KILL_STAGES)
def test_sigkilled_proposer_restarts_and_converges(responders, stage, seed):
    # First life: the proposer process SIGKILLs itself at the journal stage.
    first = responders.spawn_proposer("run", stage=stage, seed=seed)
    assert first.wait(timeout=60) == -signal.SIGKILL

    # Second life: a fresh process over the same durable directory.
    second = responders.spawn_proposer("recover", seed=seed)
    assert second.wait(timeout=60) == 0
    result = json.loads((responders.directory / "recover-result.json").read_text())

    expected_action = (
        "aborted" if stage == "after-journal-proposed" else "resumed"
    )
    (run_id,), (action,) = result["actions"].keys(), result["actions"].values()
    assert action == expected_action
    assert result["open_after_recovery"] == []

    # Convergence: every replica reaches the proposer's final version/state.
    follow_ups = follow_up_count(seed)
    expected_version = follow_ups + (1 if expected_action == "resumed" else 0)
    assert result["version"] == expected_version
    responders.wait_until(
        lambda: responders.versions() == [expected_version] * 2,
        message=f"responders never reached version {expected_version}: "
        f"{responders.versions()}",
    )
    assert responders.states() == [result["state"]] * 2

    # Evidential convergence: both responders hold identical (non-empty on
    # resume) evidence multisets for the crashed run, and neither diverges.
    summary_b, summary_c = responders.evidence_summaries(run_id)
    assert summary_b == summary_c
    if expected_action == "resumed":
        assert summary_b
        # The restarted proposer holds the full proposer-side set.
        proposer_evidence = Counter(tuple(pair) for pair in result["evidence"])
        assert proposer_evidence[("nro-update", "generated")] == 1
        assert proposer_evidence[("nr-outcome", "generated")] == 1
        assert proposer_evidence[("nr-decision", "received")] == len(RESPONDERS)
    else:
        # Aborted before dispatch: responders saw nothing but the notice.
        responders.wait_until(
            lambda: all(
                "run-abort-received" in events
                for events in responders.audit_events(run_id)
            ),
            message="abort notices never reached the responders",
        )

    # No timer leaks on the responder scheduler (orphan watches armed while
    # the proposer was dead were cancelled by the recovery wave).
    responders.wait_until(
        lambda: responders.domain.retry_scheduler.pending_timers() == 0,
        message="responder scheduler still holds timers after convergence",
    )
    for org in responders.organisations():
        assert org.controller.pending_orphan_watches() == []


def test_proposer_that_never_returns_is_expired_by_responders(tmp_path):
    host = ResponderHost(tmp_path, orphan_run_timeout=1.5)
    try:
        first = host.spawn_proposer(
            "run", stage="after-journal-committed", seed=SEEDS[0]
        )
        assert first.wait(timeout=60) == -signal.SIGKILL
        # Both responders decided and armed their proposal-age expiry clocks.
        host.wait_until(
            lambda: all(
                org.controller.pending_orphan_watches()
                for org in host.organisations()
            ),
            message="responders never armed orphan watches",
        )
        (run_id,) = host.organisations()[0].controller.pending_orphan_watches()

        # The proposer never comes back; drive the scheduler past the timeout.
        scheduler = host.domain.retry_scheduler
        scheduler.drive_until(
            lambda: not any(
                org.controller.pending_orphan_watches()
                for org in host.organisations()
            )
        )
        for org in host.organisations():
            run = org.controller._handler.runs.get(run_id)  # noqa: SLF001
            assert run is not None and run.finished
            events = {
                record.details.get("event")
                for record in org.audit_records(subject=run_id)
            }
            assert "orphan-run-expired" in events
        # Nothing applied, nothing leaked.
        assert host.versions() == [0, 0]
        assert scheduler.pending_timers() == 0
    finally:
        host.close()


if __name__ == "__main__":
    _main()
