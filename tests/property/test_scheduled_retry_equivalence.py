"""Equivalence of blocking and event-driven (scheduled) retry modes.

The scheduler must be a pure execution-strategy change: what is delivered,
what is retried, what every statistics counter reads and what state every
replica converges to are all mode-independent.  Single-threaded workloads
are compared for *exact* equality -- including under a seeded lossy fault
model, because the scheduled batch state machine groups retry waves exactly
like the blocking loop, so the fault model's RNG draws happen in the same
order in both modes.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import FaultModel, TrustDomain
from repro.transport.delivery import ReliableChannel, RetryPolicy
from repro.transport.network import SimulatedNetwork
from repro.transport.scheduler import RetryScheduler

_SETTINGS = settings(
    max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

_POLICY = RetryPolicy(max_attempts=6, backoff_seconds=0.05, backoff_multiplier=2.0)


def _transport_run(scheduled, seed, drop, entries):
    network = SimulatedNetwork(
        FaultModel(drop_probability=drop, max_consecutive_drops=3, seed=seed)
    )
    if scheduled:
        network.set_retry_scheduler(RetryScheduler(network.clock))
    destinations = sorted({destination for destination, _ in entries})
    for destination in destinations:
        network.register(destination, lambda message: {"echo": message.payload})
    channel = ReliableChannel(network, "urn:src", _POLICY)
    outcomes = channel.send_batch(
        [(destination, "op", payload) for destination, payload in entries]
    )
    summary = [
        (outcome.result, type(outcome.error).__name__ if outcome.error else None)
        for outcome in outcomes
    ]
    return (
        summary,
        network.statistics,
        channel.attempts_made,
        channel.retries_made,
    )


class TestTransportEquivalence:
    @_SETTINGS
    @given(
        seed=st.binary(min_size=1, max_size=8),
        drop=st.sampled_from([0.0, 0.1, 0.3]),
        payloads=st.lists(
            st.integers(min_value=0, max_value=1000), min_size=1, max_size=12
        ),
    )
    def test_batch_results_and_statistics_identical(self, seed, drop, payloads):
        entries = [
            (f"urn:dst{index % 4}", {"n": payload})
            for index, payload in enumerate(payloads)
        ]
        blocking = _transport_run(False, seed, drop, entries)
        scheduled = _transport_run(True, seed, drop, entries)
        assert blocking[0] == scheduled[0]  # per-entry outcomes
        assert blocking[1] == scheduled[1]  # full NetworkStatistics dataclass
        assert blocking[2:] == scheduled[2:]  # channel retry accounting

    @_SETTINGS
    @given(seed=st.binary(min_size=1, max_size=8))
    def test_retry_effort_counters_match_between_modes(self, seed):
        entries = [(f"urn:dst{index % 3}", {"n": index}) for index in range(9)]
        _, blocking_stats, _, _ = _transport_run(False, seed, 0.3, entries)
        _, scheduled_stats, _, _ = _transport_run(True, seed, 0.3, entries)
        assert (
            blocking_stats.attempts_per_destination
            == scheduled_stats.attempts_per_destination
        )
        assert (
            blocking_stats.deliveries_per_destination
            == scheduled_stats.deliveries_per_destination
        )
        assert (
            blocking_stats.failed_attempts_per_destination()
            == scheduled_stats.failed_attempts_per_destination()
        )


def _protocol_run(scheduled, drop, seed, updates):
    domain = TrustDomain.create(
        [f"urn:org:p{i}" for i in range(4)],
        scheme="hmac",
        fault_model=FaultModel(
            drop_probability=drop, max_consecutive_drops=3, seed=seed
        ),
        scheduled_retries=scheduled,
    )
    domain.share_object("doc", {"v": 0})
    proposer = domain.organisation("urn:org:p0")
    for value in updates:
        outcome = proposer.propose_update("doc", {"v": value})
        assert outcome.agreed, outcome.reason
    digests = [
        domain.organisation(uri).controller.state_digest("doc")
        for uri in domain.party_uris()
    ]
    versions = [
        domain.organisation(uri).shared_version("doc") for uri in domain.party_uris()
    ]
    return domain.network.statistics, digests, versions


class TestProtocolEquivalence:
    def test_zero_drop_statistics_and_state_identical(self):
        blocking = _protocol_run(False, 0.0, b"none", list(range(1, 6)))
        scheduled = _protocol_run(True, 0.0, b"none", list(range(1, 6)))
        assert blocking == scheduled

    def test_lossy_link_statistics_and_state_identical(self):
        # Single proposer thread: retry waves group identically in both
        # modes, so even the fault-model RNG draws line up exactly.
        blocking = _protocol_run(False, 0.1, b"lossy-equiv", list(range(1, 9)))
        scheduled = _protocol_run(True, 0.1, b"lossy-equiv", list(range(1, 9)))
        assert blocking == scheduled
        stats = blocking[0]
        assert stats.messages_dropped > 0  # the fault model actually fired
        assert stats.failed_attempts_per_destination() != {}

    @_SETTINGS
    @given(
        updates=st.lists(
            st.integers(min_value=1, max_value=50),
            min_size=1,
            max_size=4,
            unique=True,
        )
    )
    def test_equivalence_over_update_sequences(self, updates):
        blocking = _protocol_run(False, 0.1, b"prop-equiv", updates)
        scheduled = _protocol_run(True, 0.1, b"prop-equiv", updates)
        assert blocking == scheduled
