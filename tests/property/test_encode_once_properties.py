"""Property-based tests for the encode-once pipeline.

Covers the canonical-encoding invariants the pipeline relies on: the
fragment writer is byte-identical to the reference ``json.dumps`` encoding,
splicing pre-canonicalised values never changes the output, sets (including
heterogeneous ones) encode deterministically, and the OpenSSL modular
exponentiation backend agrees with the built-in ``pow``.
"""

import json

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import codec
from repro.crypto.modexp import mod_exp

_SETTINGS = settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 63), max_value=2 ** 63),
    st.floats(allow_nan=False),
    st.text(max_size=40),
    st.binary(max_size=40),
)

set_items = st.one_of(
    st.booleans(),
    st.integers(min_value=-(2 ** 31), max_value=2 ** 31),
    st.text(max_size=10),
    st.binary(max_size=10),
    st.floats(allow_nan=False, allow_infinity=False),
)


class _WithToDict:
    def __init__(self, inner):
        self._inner = inner

    def to_dict(self):
        return {"inner": self._inner}


json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=10), children, max_size=5),
        st.sets(set_items, max_size=5),
        children.map(_WithToDict),
    ),
    max_leaves=25,
)


def _reference_encode(value):
    """The seed encoding: json.dumps over the jsonable conversion."""
    return json.dumps(
        codec.to_jsonable(value), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def normalise(value):
    """What the codec is specified to round-trip values into."""
    if isinstance(value, (list, tuple)):
        return [normalise(item) for item in value]
    if isinstance(value, dict):
        return {key: normalise(item) for key, item in value.items()}
    if isinstance(value, (set, frozenset)):
        return {normalise(item) for item in value}
    if isinstance(value, _WithToDict):
        return normalise(value.to_dict())
    if isinstance(value, (bytearray, memoryview)):
        return bytes(value)
    return value


class TestCanonicalEncodingProperties:
    @_SETTINGS
    @given(json_values)
    def test_fragment_writer_matches_reference_encoding(self, value):
        assert codec.encode(value) == _reference_encode(value)

    @_SETTINGS
    @given(json_values)
    def test_roundtrip_through_jsonable_is_lossless(self, value):
        restored = codec.from_jsonable(codec.to_jsonable(value))
        assert restored == normalise(value)

    @_SETTINGS
    @given(json_values)
    def test_decode_inverts_encode(self, value):
        assert codec.decode(codec.encode(value)) == normalise(value)

    @_SETTINGS
    @given(json_values)
    def test_splicing_encoded_values_is_transparent(self, value):
        encoded = codec.canonicalize(value)
        wrapped_plain = {"body": value, "copies": [value, value]}
        wrapped_spliced = {"body": encoded, "copies": [encoded, encoded]}
        assert codec.encode(wrapped_plain) == codec.encode(wrapped_spliced)

    @_SETTINGS
    @given(json_values)
    def test_encoded_carries_consistent_digest_and_size(self, value):
        encoded = codec.canonicalize(value)
        assert encoded.data == codec.encode(value)
        assert encoded.size == len(encoded.data)
        assert encoded.digest == codec.digest_of(value)
        assert codec.canonicalize(encoded) is encoded

    @_SETTINGS
    @given(st.sets(set_items, max_size=8))
    def test_heterogeneous_sets_encode_deterministically(self, items):
        # Regression: sorted() over mixed jsonable items used to raise
        # TypeError; items are now ordered by their canonical encoded form.
        first = codec.encode(items)
        second = codec.encode(set(list(items)))
        assert first == second
        assert codec.decode(first) == normalise(items)


class TestModExpBackendProperties:
    @_SETTINGS
    @given(
        st.integers(min_value=0, max_value=2 ** 512),
        st.integers(min_value=0, max_value=2 ** 512),
        st.integers(min_value=1, max_value=2 ** 512),
    )
    def test_mod_exp_matches_builtin_pow(self, base, exponent, modulus):
        assert mod_exp(base, exponent, modulus) == pow(base, exponent, modulus)
