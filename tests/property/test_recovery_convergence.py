"""Healing-path convergence: an outcome-excluded peer always catches up.

One fixture, three independent healing mechanisms.  A 3-party domain agrees
an update whose outcome wave is severed to the last peer right at the
commit barrier -- every member decided (agreement is unanimous), the
proposer and the middle responder apply the new version, and the excluded
peer is left holding an accepted decision with no outcome:

* **re-delivery** -- the proposer's queued outcome wave is pushed by the
  retry scheduler once the link heals;
* **resync** -- the excluded peer anti-entropy-pulls the signed outcome
  records it missed (the restart-time catch-up path, driven here without a
  restart);
* **orphan GC + late outcome** -- the excluded peer's proposal-age expiry
  garbage-collects its stranded responder run first, and the re-delivered
  outcome still applies afterwards (idempotent, version-guarded).

Each path must leave every replica at the same version and state with
identical per-run evidence multisets, and the three paths must agree with
*each other* on the final evidence shape -- a peer healed by resync is
indistinguishable from one healed by the wave itself.
"""

from __future__ import annotations

from collections import Counter

from repro.clock import SimulatedClock
from repro.core.sharing import set_run_fault_injector
from repro.core.trust_domain import TrustDomain

URIS = ["urn:org:heal0", "urn:org:heal1", "urn:org:heal2"]
PROPOSER, RESPONDER, EXCLUDED = URIS
OBJECT_ID = "healing-doc"


def _build(orphan_timeout: float = 10_000.0) -> TrustDomain:
    return TrustDomain.create(
        URIS,
        scheme="hmac",
        clock=SimulatedClock(),
        durable_state=True,
        outcome_redelivery=True,
        scheduled_retries=True,
        orphan_run_timeout=orphan_timeout,
    )


def _excluded_wave(domain):
    """Agree v1 everywhere, then agree v2 with the outcome severed to the
    last peer at the commit barrier.  Returns the severed run's outcome."""
    domain.share_object(OBJECT_ID, {"n": 0})
    proposer = domain.organisation(PROPOSER)
    assert proposer.propose_update(OBJECT_ID, {"n": 1}).agreed

    fired = []

    def sever(stage, run):
        if stage == "after-journal-committed" and not fired:
            fired.append(run.run_id)
            domain.network.partition.sever(PROPOSER, EXCLUDED)

    set_run_fault_injector(sever)
    try:
        outcome = proposer.propose_update(OBJECT_ID, {"n": 2})
    finally:
        set_run_fault_injector(None)
    assert outcome.agreed
    assert fired == [outcome.run_id]
    assert proposer.shared_version(OBJECT_ID) == 2
    assert domain.organisation(RESPONDER).shared_version(OBJECT_ID) == 2
    assert domain.organisation(EXCLUDED).shared_version(OBJECT_ID) == 1
    assert proposer.controller.pending_redeliveries() == [outcome.run_id]
    return outcome


def _evidence(organisation, run_id):
    return Counter(
        f"{record.token_type}/{record.role}"
        for record in organisation.evidence_store.evidence_for_run(run_id)
    )


def _events(organisation, run_id):
    return {
        record.details.get("event")
        for record in organisation.audit_records(subject=run_id)
    }


def _snapshot(domain, run_id):
    """Per-replica versions, states and run evidence -- the convergence view."""
    orgs = {uri: domain.organisation(uri) for uri in URIS}
    return {
        "versions": {uri: org.shared_version(OBJECT_ID) for uri, org in orgs.items()},
        "states": {uri: org.shared_state(OBJECT_ID) for uri, org in orgs.items()},
        "evidence": {uri: _evidence(org, run_id) for uri, org in orgs.items()},
    }


def _assert_converged(domain, run_id):
    snapshot = _snapshot(domain, run_id)
    assert set(snapshot["versions"].values()) == {2}, snapshot["versions"]
    assert (
        len({repr(state) for state in snapshot["states"].values()}) == 1
    ), snapshot["states"]
    # Both responders saw the same run the same way, however it reached them.
    assert snapshot["evidence"][RESPONDER] == snapshot["evidence"][EXCLUDED]
    return snapshot


# -- path 1: scheduler-driven outcome re-delivery ------------------------------------


def _heal_via_redelivery(domain, outcome):
    domain.network.partition.heal_all()
    proposer = domain.organisation(PROPOSER)
    domain.retry_scheduler.drive_until(
        lambda: not proposer.controller.pending_redeliveries()
    )


def test_excluded_peer_converges_via_redelivery():
    domain = _build()
    outcome = _excluded_wave(domain)
    excluded = domain.organisation(EXCLUDED)
    assert excluded.controller.pending_orphan_watches() == [outcome.run_id]

    _heal_via_redelivery(domain, outcome)

    _assert_converged(domain, outcome.run_id)
    proposer_events = _events(domain.organisation(PROPOSER), outcome.run_id)
    assert "outcome-redelivery-scheduled" in proposer_events
    assert "outcome-redelivered" in proposer_events
    assert "outcome-redelivery-complete" in proposer_events
    # The delivered outcome cleared the excluded peer's orphan watch; no
    # timer leaks past convergence.
    assert excluded.controller.pending_orphan_watches() == []
    assert domain.retry_scheduler.pending_timers() == 0


# -- path 2: anti-entropy resync (the restart-time catch-up, driven inline) ----------


def _heal_via_resync(domain, outcome):
    domain.network.partition.heal_all()
    proposer = domain.organisation(PROPOSER)
    excluded = domain.organisation(EXCLUDED)
    vector = proposer.controller.resync_vector()[OBJECT_ID]
    assert vector["version"] == 2
    applied = 0
    records = proposer.controller.resync_records(
        OBJECT_ID, excluded.shared_version(OBJECT_ID)
    )
    for record in records:
        if excluded.controller.apply_resync_record(dict(record)):
            applied += 1
    assert applied == 1


def test_excluded_peer_converges_via_resync():
    domain = _build()
    outcome = _excluded_wave(domain)
    proposer = domain.organisation(PROPOSER)
    excluded = domain.organisation(EXCLUDED)

    _heal_via_resync(domain, outcome)

    _assert_converged(domain, outcome.run_id)
    assert "resync-applied" in _events(excluded, outcome.run_id)
    # Applying the resynced outcome also cleared the stranded orphan watch.
    assert excluded.controller.pending_orphan_watches() == []

    # The queued re-delivery is now obsolete; once the object advances past
    # the severed run's version it must retire as superseded without
    # re-sending (the excluded peer's evidence stays exactly as resynced).
    assert proposer.controller.pending_redeliveries() == [outcome.run_id]
    assert proposer.propose_update(OBJECT_ID, {"n": 3}).agreed
    evidence_before = _evidence(excluded, outcome.run_id)
    domain.retry_scheduler.drive_until(
        lambda: not proposer.controller.pending_redeliveries()
    )
    assert "outcome-redelivery-superseded" in _events(proposer, outcome.run_id)
    assert _evidence(excluded, outcome.run_id) == evidence_before
    assert domain.retry_scheduler.pending_timers() == 0


# -- path 3: orphan GC first, the late outcome still applies -------------------------


def _heal_via_orphan_gc(domain, outcome):
    proposer = domain.organisation(PROPOSER)
    excluded = domain.organisation(EXCLUDED)
    # The partition stays severed: re-delivery attempts keep failing and
    # the excluded peer's proposal-age expiry wins the race.
    domain.retry_scheduler.drive_until(
        lambda: not excluded.controller.pending_orphan_watches()
    )
    assert "orphan-run-expired" in _events(excluded, outcome.run_id)
    assert excluded.shared_version(OBJECT_ID) == 1
    # Now heal: the still-queued wave arrives late, after the responder-run
    # state is gone, and must apply idempotently anyway.
    domain.network.partition.heal_all()
    domain.retry_scheduler.drive_until(
        lambda: not proposer.controller.pending_redeliveries()
    )


def test_orphan_gc_then_late_outcome_converges():
    domain = _build(orphan_timeout=5.0)
    outcome = _excluded_wave(domain)
    excluded = domain.organisation(EXCLUDED)

    _heal_via_orphan_gc(domain, outcome)

    _assert_converged(domain, outcome.run_id)
    events = _events(excluded, outcome.run_id)
    assert "orphan-run-expired" in events
    assert "outcome-received" in events
    assert excluded.controller.pending_orphan_watches() == []
    assert domain.retry_scheduler.pending_timers() == 0


# -- the three paths are indistinguishable after the fact ----------------------------


def test_healing_paths_agree_on_final_state_and_evidence():
    snapshots = {}
    for name, orphan_timeout, heal in (
        ("redelivery", 10_000.0, _heal_via_redelivery),
        ("resync", 10_000.0, _heal_via_resync),
        ("orphan-gc", 5.0, _heal_via_orphan_gc),
    ):
        domain = _build(orphan_timeout=orphan_timeout)
        outcome = _excluded_wave(domain)
        heal(domain, outcome)
        snapshots[name] = _snapshot(domain, outcome.run_id)
    reference = snapshots["redelivery"]
    assert snapshots["resync"] == reference
    assert snapshots["orphan-gc"] == reference


# -- regression: orphan expiry racing a late outcome application ---------------------


def test_orphan_expiry_cancels_while_outcome_application_in_progress():
    """An expiry firing mid-apply must cancel (audited), never abort.

    White-box re-creation of the race the application marker closes: the
    outcome of a stranded run starts applying on one thread exactly as the
    proposal-age expiry fires on another.
    """
    domain = _build()
    outcome = _excluded_wave(domain)
    excluded = domain.organisation(EXCLUDED)
    controller = excluded.controller
    assert controller.pending_orphan_watches() == [outcome.run_id]

    with controller._outcome_application(outcome.run_id):  # noqa: SLF001
        # Entering the application popped the timer under the same lock
        # hold that set the marker -- the expiry below is the scheduler
        # firing concurrently, and must take the cancel path.
        controller._expire_orphan_run(  # noqa: SLF001
            outcome.run_id, PROPOSER, OBJECT_ID
        )
        events = _events(excluded, outcome.run_id)
        assert "orphan-expiry-cancelled" in events
        assert "orphan-run-expired" not in events
    assert controller.pending_orphan_watches() == []

    # The run was not aborted by the cancelled expiry: the late wave still
    # heals the replica as usual.
    _heal_via_redelivery(domain, outcome)
    _assert_converged(domain, outcome.run_id)
