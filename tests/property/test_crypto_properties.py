"""Property-based tests for the cryptographic substrate."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.crypto.hashing import HashChain, MerkleTree, combine_digests, secure_hash
from repro.crypto.rng import SecureRandom
from repro.crypto.signature import Signer, Verifier, get_scheme

# A single key pair reused across examples: generating keys inside @given
# bodies would dominate the run time without adding coverage.
_RSA_KEYPAIR = get_scheme("rsa").generate_keypair(bits=512)
_HMAC_KEYPAIR = get_scheme("hmac").generate_keypair()

_SETTINGS = settings(
    max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestHashingProperties:
    @_SETTINGS
    @given(st.binary(min_size=0, max_size=512))
    def test_hash_is_deterministic(self, data):
        assert secure_hash(data) == secure_hash(data)

    @_SETTINGS
    @given(st.binary(max_size=256), st.binary(max_size=256))
    def test_distinct_inputs_rarely_collide(self, a, b):
        if a != b:
            assert secure_hash(a) != secure_hash(b)

    @_SETTINGS
    @given(st.lists(st.binary(max_size=64), min_size=1, max_size=8))
    def test_combine_digests_depends_on_every_part(self, parts):
        original = combine_digests(*parts)
        mutated = list(parts)
        mutated[0] = mutated[0] + b"\x01"
        assert combine_digests(*mutated) != original


class TestHashChainProperties:
    @_SETTINGS
    @given(st.lists(st.binary(max_size=128), max_size=20))
    def test_chain_verifies_its_own_items(self, items):
        chain = HashChain()
        for item in items:
            chain.append(item)
        assert chain.verify(items)

    @_SETTINGS
    @given(
        st.lists(st.binary(max_size=128), min_size=1, max_size=20),
        st.integers(min_value=0, max_value=19),
    )
    def test_any_single_mutation_is_detected(self, items, index):
        chain = HashChain()
        for item in items:
            chain.append(item)
        index = index % len(items)
        tampered = list(items)
        tampered[index] = tampered[index] + b"\xff"
        assert not chain.verify(tampered)

    @_SETTINGS
    @given(st.lists(st.binary(max_size=64), min_size=2, max_size=10))
    def test_truncation_is_detected(self, items):
        chain = HashChain()
        for item in items:
            chain.append(item)
        assert not chain.verify(items[:-1])


class TestMerkleProperties:
    @_SETTINGS
    @given(st.lists(st.binary(max_size=64), min_size=1, max_size=32))
    def test_every_leaf_proof_verifies(self, items):
        tree = MerkleTree(items)
        for index in range(len(items)):
            assert tree.proof(index).verify(tree.root)

    @_SETTINGS
    @given(st.lists(st.binary(max_size=64), min_size=2, max_size=16))
    def test_proofs_do_not_transfer_between_trees(self, items):
        tree = MerkleTree(items)
        other = MerkleTree(items + [b"extra leaf"])
        assert not tree.proof(0).verify(other.root) or tree.root == other.root


class TestSignatureProperties:
    @_SETTINGS
    @given(st.binary(min_size=0, max_size=1024))
    def test_rsa_roundtrip_for_arbitrary_messages(self, message):
        signature = Signer(_RSA_KEYPAIR.private).sign(message)
        assert Verifier(_RSA_KEYPAIR.public).verify(message, signature)

    @_SETTINGS
    @given(st.binary(min_size=1, max_size=512), st.binary(min_size=1, max_size=16))
    def test_rsa_rejects_any_modified_message(self, message, suffix):
        signature = Signer(_RSA_KEYPAIR.private).sign(message)
        modified = message + suffix
        assert not Verifier(_RSA_KEYPAIR.public).verify(modified, signature)

    @_SETTINGS
    @given(st.binary(min_size=0, max_size=1024))
    def test_hmac_roundtrip_for_arbitrary_messages(self, message):
        signature = Signer(_HMAC_KEYPAIR.private).sign(message)
        assert Verifier(_HMAC_KEYPAIR.public).verify(message, signature)


class TestRandomnessProperties:
    @_SETTINGS
    @given(st.binary(min_size=1, max_size=64), st.integers(min_value=1, max_value=256))
    def test_seeded_streams_are_reproducible(self, seed, length):
        assert SecureRandom(seed).random_bytes(length) == SecureRandom(seed).random_bytes(length)

    @_SETTINGS
    @given(st.integers(min_value=1, max_value=10_000))
    def test_random_int_below_stays_in_range(self, upper):
        rng = SecureRandom(seed=b"prop")
        for _ in range(5):
            assert 0 <= rng.random_int_below(upper) < upper
