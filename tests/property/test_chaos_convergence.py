"""CI-gated acceptance property of the unified fault plane.

One seeded :class:`FaultPlan` (drop + duplicate + reorder + a partition
window), replayed over the in-process simulator AND a 2-node wire
loopback deployment, must resolve every run the same way and leave
identical evidence multisets and replica states on every party -- and
every proposer call must return (zero stranded waiters).

Seeds come from ``CHAOS_SEEDS`` (comma-separated; the CI chaos matrix
sets one per job).  ``CHAOS_STORAGE`` selects a persistent evidence
backend kind (``memory``/``file``/``sqlite``) provisioned fresh per
run, and ``CHAOS_PEERING_CAP`` enables the lazy channel manager on the
proposer's wire node with that cap -- the CI matrix uses these to check
the convergence property over the embedded-KV backend with channel
eviction churn in the loop.  The tier-1 default is a single seed on the
in-memory backend to keep the suite fast.  On divergence the failing
plan's schedule is written to ``chaos-artifacts/`` so the exact run can
be replayed offline with ``python -m repro.faults.chaos``.
"""

from __future__ import annotations

import os

import pytest

from repro.faults.chaos import (
    run_cross_transport_scenario,
    standard_chaos_plan,
    write_failure_artifact,
    write_trace_artifact,
)
from repro.faults.plan import FaultPlan
from repro.observability import runtime as _obs_runtime

SEEDS = [
    int(seed)
    for seed in os.environ.get("CHAOS_SEEDS", "7").split(",")
    if seed.strip()
]
STORAGE = os.environ.get("CHAOS_STORAGE") or None
_CAP = os.environ.get("CHAOS_PEERING_CAP", "").strip()
PEERING_CAP = int(_CAP) if _CAP else None


@pytest.mark.parametrize("seed", SEEDS)
def test_same_plan_converges_identically_on_both_transports(seed):
    plan = standard_chaos_plan(seed)
    report = run_cross_transport_scenario(
        plan, storage=STORAGE, peering_cap=PEERING_CAP
    )
    if not report.converged:
        path = write_failure_artifact(report, "chaos-artifacts")
        pytest.fail(
            f"transports diverged under plan {plan.name!r}; "
            f"replayable artifact: {path}\n" + "\n".join(report.mismatches())
        )
    # The scenario really ran: every proposer call returned an outcome and
    # every party converged on the same final state.
    assert len(report.simulated["outcomes"]) == len(report.values)
    final_states = list(report.wired["states"].values())
    assert all(state == final_states[0] for state in final_states)
    # The plan schedule round-trips, so a CI artifact is always replayable.
    assert FaultPlan.from_schedule(plan.to_schedule()) == plan


def test_trace_capture_renders_both_legs(tmp_path):
    """``capture_traces`` attaches one span tree per run on each leg.

    The trace artifact is what ``--trace-artifact`` ships next to the
    replayable plan on divergence, so a converged scenario must already
    produce complete, renderable trees for both transports.
    """
    plan = standard_chaos_plan(SEEDS[0])
    report = run_cross_transport_scenario(plan, capture_traces=True)
    for leg in (report.simulated, report.wired):
        traces = leg["traces"]
        assert len(traces) == len(report.values)
        assert all("run:update" in tree for tree in traces.values())
    path = write_trace_artifact(report, str(tmp_path))
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    assert "== simulated leg ==" in text
    assert "== wired leg ==" in text
    assert "run:update" in text
    # The throwaway capture plane never leaks into the process.
    assert not _obs_runtime.enabled()


@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_actually_injects_faults(seed):
    """Guard against a plan that silently decides nothing.

    Replaying the plan's own draw sequence over the simulated run's
    admission count must show at least one injected fault -- otherwise the
    convergence assertion above would pass vacuously.
    """
    plan = standard_chaos_plan(seed)
    injector = plan.injector()
    faults = 0
    for _ in range(24):  # >= the messages a 3-party, 3-update scenario admits
        decision = injector.decide("urn:org:chaos0", "urn:org:chaos1", "op")
        if decision.lost or decision.duplicate or decision.reorder:
            faults += 1
    assert faults > 0
