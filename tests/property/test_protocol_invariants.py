"""Property-based tests of the protocol-level invariants (DESIGN.md §5).

These run whole protocol instances per example, so the domains use the
lightweight HMAC scheme and the example counts are kept modest; the goal is
to explore many *sequences* of interactions, not many keys.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import CallableValidator, ComponentDescriptor, TokenType, TrustDomain
from repro.core.evidence import EvidenceToken

_SETTINGS = settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def fast_domain(parties):
    uris = [f"urn:org:p{i}" for i in range(parties)]
    return TrustDomain.create(uris, scheme="hmac")


class EchoService:
    def echo(self, value):
        return {"echo": value}


class TestInvocationInvariants:
    @_SETTINGS
    @given(
        st.lists(
            st.one_of(st.integers(-1000, 1000), st.text(max_size=20)),
            min_size=1,
            max_size=5,
        )
    )
    def test_evidence_completeness_for_every_invocation(self, payloads):
        """Every completed invocation leaves all four tokens on both sides."""
        domain = fast_domain(2)
        client = domain.organisation("urn:org:p0")
        server = domain.organisation("urn:org:p1")
        server.deploy(EchoService(), ComponentDescriptor(name="Echo", non_repudiation=True))
        expected = {
            TokenType.NRO_REQUEST.value,
            TokenType.NRR_REQUEST.value,
            TokenType.NRO_RESPONSE.value,
            TokenType.NRR_RESPONSE.value,
        }
        for payload in payloads:
            outcome = client.invoke_non_repudiably(server.uri, "Echo", "echo", [payload])
            assert outcome.value == {"echo": payload}
            for org in (client, server):
                token_types = {r.token_type for r in org.evidence_for_run(outcome.run_id)}
                assert token_types == expected

    @_SETTINGS
    @given(st.lists(st.text(max_size=10), min_size=1, max_size=4))
    def test_attribution_every_stored_token_verifies(self, payloads):
        """Every token a party stores verifies against the claimed issuer's key."""
        domain = fast_domain(2)
        client = domain.organisation("urn:org:p0")
        server = domain.organisation("urn:org:p1")
        server.deploy(EchoService(), ComponentDescriptor(name="Echo", non_repudiation=True))
        for payload in payloads:
            client.invoke_non_repudiably(server.uri, "Echo", "echo", [payload])
        for org in (client, server):
            for run_id in org.evidence_store.run_ids():
                for record in org.evidence_for_run(run_id):
                    token = EvidenceToken.from_dict(record.token)
                    assert org.evidence_verifier.verify(token), (
                        f"{org.uri} stores a token from {token.issuer} that does not verify"
                    )


class TestSharingInvariants:
    @_SETTINGS
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2),       # proposer index
                st.dictionaries(st.sampled_from("abcd"), st.integers(0, 9), max_size=3),
                st.booleans(),                                # whether party 2 vetoes
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_unanimity_and_replica_consistency(self, proposals):
        """State changes only on unanimous agreement and replicas never diverge."""
        domain = fast_domain(3)
        organisations = [domain.organisation(uri) for uri in domain.party_uris()]
        veto_switch = {"active": False}
        domain.share_object("doc", {"content": {}})
        organisations[2].controller.add_validator(
            "doc",
            CallableValidator(lambda ctx: not veto_switch["active"], name="switchable"),
        )

        for proposer_index, content, veto in proposals:
            veto_switch["active"] = veto
            proposer = organisations[proposer_index]
            before_states = [org.shared_state("doc") for org in organisations]
            before_versions = [org.shared_version("doc") for org in organisations]
            outcome = proposer.propose_update("doc", {"content": content})

            states = [org.shared_state("doc") for org in organisations]
            versions = [org.shared_version("doc") for org in organisations]
            # Replicas are always mutually consistent.
            assert states.count(states[0]) == len(states)
            assert versions.count(versions[0]) == len(versions)
            if veto and proposer_index != 2:
                assert not outcome.agreed
                assert states == before_states
                assert versions == before_versions
            elif outcome.agreed:
                assert states[0] == {"content": content}
                assert versions[0] == before_versions[0] + 1

    @_SETTINGS
    @given(st.lists(st.dictionaries(st.sampled_from("xyz"), st.integers(0, 9), max_size=3),
                    min_size=1, max_size=5))
    def test_every_applied_state_is_recorded_as_agreed(self, updates):
        """Every state ever applied can later be proven to have been agreed."""
        domain = fast_domain(2)
        a = domain.organisation("urn:org:p0")
        b = domain.organisation("urn:org:p1")
        domain.share_object("doc", {"step": -1, "data": {}})
        applied_states = [{"step": -1, "data": {}}]
        for step, data in enumerate(updates):
            outcome = a.propose_update("doc", {"step": step, "data": data})
            assert outcome.agreed
            applied_states.append({"step": step, "data": data})
        for state in applied_states:
            assert a.state_store.is_agreed_state("doc", state)
            assert b.state_store.is_agreed_state("doc", state)
