"""Self-healing convergence: kill a replica, restart it, resync everywhere.

One seeded narrative on both transports: a replica is SIGKILLed through the
client-side crash failpoint (wire) / crashed at the journal barrier
(simulated) right after committing version 1, an update is agreed without
it with the proposer's outcome wave partitioned away, and the restarted
replica must reconverge through durable resume + journal recovery +
restart-time resync -- zero manual re-registration.  The test fails with a
replayable artifact when the transports disagree on versions, states,
per-run evidence multisets, or recovery actions.

Environment knobs (the CI chaos matrix sets these per job):

* ``CHAOS_SEEDS``   -- comma-separated scenario seeds (default ``7``).
* ``CHAOS_STORAGE`` -- persistent storage profile kind, ``file`` or
  ``sqlite`` (default ``sqlite``; memory cannot survive the restart).
"""

from __future__ import annotations

import os

import pytest

from repro.faults.chaos import run_self_healing_scenario, write_self_healing_artifact

SEEDS = [
    int(seed)
    for seed in os.environ.get("CHAOS_SEEDS", "7").split(",")
    if seed.strip()
]
STORAGE = os.environ.get("CHAOS_STORAGE") or "sqlite"


@pytest.mark.parametrize("seed", SEEDS)
def test_killed_replica_reconverges_on_both_transports(seed, tmp_path):
    report = run_self_healing_scenario(seed, storage=STORAGE)
    if not report.converged:
        artifact = write_self_healing_artifact(report, str(tmp_path))
        pytest.fail(
            f"self-healing diverged across transports (artifact: {artifact})\n"
            + "\n".join(report.mismatches())
        )
    # Spot-check the healed shape itself, not just cross-transport equality:
    # every replica finished at version 3 and recovery took the canonical
    # path (aborted half-proposed run, resumed at 1, one resynced version).
    assert set(report.wired["versions"].values()) == {3}
    assert report.wired["recovery"] == {
        "crashed_run": "aborted",
        "resumed_version": 1,
        "resync_applied": 1,
    }
