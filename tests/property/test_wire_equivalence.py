"""Equivalence of the wire transport and the simulated network.

The wire must be a pure *locality* change: splitting a trust domain's
organisations across socket-connected nodes (here: loopback nodes inside one
test process, speaking real TCP) may not change what any protocol run
computes.  At 0% loss a wire deployment must produce

* identical aggregate :class:`NetworkStatistics` counters (statistics are
  sender-side on the wire, so summing every node's counters reproduces the
  simulator's single global view -- byte-for-byte, since both deployments
  run the same virtual clock and byte accounting charges the same canonical
  envelope);
* identical evidence holdings per party (token type / role multisets);
* identical replica state and version on every member.

Separately, killing live connections mid-run must be *recovered* by the
existing retry machinery -- never diverge the replicas: the proposer pays
extra attempts, every member still converges on the agreed state.
"""

from __future__ import annotations

import threading
from collections import Counter

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import TrustDomain
from repro.clock import SimulatedClock
from repro.core.validators import CallableValidator
from repro.transport.wire import WireTransport

_SETTINGS = settings(
    max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

OBJECT_ID = "wire-doc"


def _uris(parties):
    return [f"urn:org:weq{i}" for i in range(parties)]


def _evidence_summary(organisation, run_ids):
    counts = Counter()
    for run_id in run_ids:
        for record in organisation.evidence_store.evidence_for_run(run_id):
            counts[(record.token_type, record.role)] += 1
    return counts


def _stats_summary(statistics_list):
    """Aggregate counters across nodes (the simulator is the 1-node case)."""
    totals = {
        "sent": 0,
        "delivered": 0,
        "dropped": 0,
        "duplicated": 0,
        "bytes": 0,
        "per_operation": Counter(),
        "attempts": Counter(),
        "deliveries": Counter(),
    }
    for stats in statistics_list:
        totals["sent"] += stats.messages_sent
        totals["delivered"] += stats.messages_delivered
        totals["dropped"] += stats.messages_dropped
        totals["duplicated"] += stats.messages_duplicated
        totals["bytes"] += stats.bytes_delivered
        totals["per_operation"].update(stats.per_operation)
        totals["attempts"].update(stats.attempts_per_destination)
        totals["deliveries"].update(stats.deliveries_per_destination)
    return totals


def _drive_updates(proposer_org, values):
    run_ids = []
    for value in values:
        outcome = proposer_org.propose_update(OBJECT_ID, {"v": value})
        assert outcome.agreed, outcome.reason
        run_ids.append(outcome.run_id)
    return run_ids


def _simulated_run(parties, values):
    uris = _uris(parties)
    domain = TrustDomain.create(uris, scheme="hmac", clock=SimulatedClock())
    domain.share_object(OBJECT_ID, {"v": 0})
    run_ids = _drive_updates(domain.organisation(uris[0]), values)
    return {
        "stats": _stats_summary([domain.network.statistics]),
        "evidence": {
            uri: _evidence_summary(domain.organisation(uri), run_ids)
            for uri in uris
        },
        "states": {
            uri: (
                domain.organisation(uri).shared_state(OBJECT_ID),
                domain.organisation(uri).shared_version(OBJECT_ID),
            )
            for uri in uris
        },
    }


def _wire_run(parties, split, values, scheduled_retries=False):
    uris = _uris(parties)
    local_a, local_b = uris[:split], uris[split:]
    with WireTransport(
        local_parties=local_a,
        await_remote_credentials=False,
        clock=SimulatedClock(),
    ) as ta, WireTransport(
        local_parties=local_b,
        await_remote_credentials=False,
        clock=SimulatedClock(),
    ) as tb:
        da = TrustDomain.create(
            uris, transport=ta, scheme="hmac", scheduled_retries=scheduled_retries
        )
        db = TrustDomain.create(
            uris, transport=tb, scheme="hmac", scheduled_retries=scheduled_retries
        )
        ta.introduce_to(tb.host, tb.port)
        tb.introduce_to(ta.host, ta.port)
        da.share_object(OBJECT_ID, {"v": 0})
        db.share_object(OBJECT_ID, {"v": 0})
        run_ids = _drive_updates(da.organisation(uris[0]), values)

        def org(uri):
            return (da if uri in da.organisations else db).organisation(uri)

        return {
            "stats": _stats_summary(
                [da.network.statistics, db.network.statistics]
            ),
            "evidence": {
                uri: _evidence_summary(org(uri), run_ids) for uri in uris
            },
            "states": {
                uri: (org(uri).shared_state(OBJECT_ID), org(uri).shared_version(OBJECT_ID))
                for uri in uris
            },
        }


class TestWireEquivalence:
    @_SETTINGS
    @given(
        parties=st.integers(min_value=3, max_value=4),
        split=st.integers(min_value=1, max_value=2),
        values=st.lists(
            st.integers(min_value=1, max_value=1000),
            min_size=1,
            max_size=3,
            unique=True,
        ),
    )
    def test_loopback_wire_matches_simulator_exactly(self, parties, split, values):
        reference = _simulated_run(parties, values)
        wired = _wire_run(parties, split, values)
        assert wired["stats"] == reference["stats"]
        assert wired["evidence"] == reference["evidence"]
        assert wired["states"] == reference["states"]
        assert wired["stats"]["dropped"] == 0

    def test_scheduled_retry_engine_matches_too(self):
        reference = _simulated_run(3, [1, 2])
        wired = _wire_run(3, 1, [1, 2], scheduled_retries=True)
        assert wired["stats"] == reference["stats"]
        assert wired["evidence"] == reference["evidence"]
        assert wired["states"] == reference["states"]


class TestWireFaultRecovery:
    def test_killed_connection_mid_run_recovers_not_diverges(self):
        uris = _uris(3)
        in_flight = threading.Event()
        release = threading.Event()

        def gate(context):
            # First validation of the faulted run parks here so the test can
            # kill the proposer's connections while the request is on the
            # wire; retried deliveries pass straight through.
            if context.proposed_state.get("v") == 2 and not release.is_set():
                in_flight.set()
                release.wait(timeout=10)
            return True

        with WireTransport(
            local_parties=uris[:1],
            await_remote_credentials=False,
            clock=SimulatedClock(),
        ) as ta, WireTransport(
            local_parties=uris[1:],
            await_remote_credentials=False,
            clock=SimulatedClock(),
        ) as tb:
            da = TrustDomain.create(uris, transport=ta, scheme="hmac")
            db = TrustDomain.create(uris, transport=tb, scheme="hmac")
            ta.introduce_to(tb.host, tb.port)
            tb.introduce_to(ta.host, ta.port)
            validators = [CallableValidator(gate, name="gate")]
            da.share_object(OBJECT_ID, {"v": 0})
            for uri in uris[1:]:
                db.organisation(uri).share_object(
                    OBJECT_ID, {"v": 0}, uris, validators=validators
                )
            proposer = da.organisation(uris[0])
            assert proposer.propose_update(OBJECT_ID, {"v": 1}).agreed

            killer_done = threading.Event()

            def kill_when_in_flight():
                if in_flight.wait(timeout=10):
                    ta.network.pool.kill()
                release.set()
                killer_done.set()

            killer = threading.Thread(target=kill_when_in_flight)
            killer.start()
            outcome = proposer.propose_update(OBJECT_ID, {"v": 2})
            killer.join(timeout=15)
            assert killer_done.is_set()
            assert in_flight.is_set(), "the gated validator never ran"
            assert outcome.agreed, outcome.reason

            # Recovery, not divergence: the kill cost extra attempts but
            # every replica converged on the agreed state.
            stats = da.network.statistics
            failed = stats.failed_attempts_per_destination()
            assert sum(failed.values()) >= 1
            for uri in uris:
                org = (da if uri in da.organisations else db).organisation(uri)
                assert org.shared_state(OBJECT_ID) == {"v": 2}
                assert org.shared_version(OBJECT_ID) == 2
