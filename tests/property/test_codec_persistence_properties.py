"""Property-based tests for canonical encoding, the audit log and the state store."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import codec
from repro.persistence.audit_log import AuditLog
from repro.persistence.state_store import StateStore
from repro.persistence.storage import InMemoryBackend

_SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

# JSON-like values the codec must round-trip losslessly.
json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 53), max_value=2 ** 53),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=40),
    st.binary(max_size=40),
)
json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=10), children, max_size=5),
    ),
    max_leaves=20,
)


def normalise(value):
    """Tuples become lists after decoding; normalise for comparison."""
    if isinstance(value, tuple):
        return [normalise(item) for item in value]
    if isinstance(value, list):
        return [normalise(item) for item in value]
    if isinstance(value, dict):
        return {key: normalise(item) for key, item in value.items()}
    return value


class TestCodecProperties:
    @_SETTINGS
    @given(json_values)
    def test_roundtrip_is_lossless(self, value):
        assert codec.decode(codec.encode(value)) == normalise(value)

    @_SETTINGS
    @given(st.dictionaries(st.text(min_size=1, max_size=8), json_scalars, max_size=6))
    def test_encoding_is_independent_of_insertion_order(self, mapping):
        reordered = dict(reversed(list(mapping.items())))
        assert codec.encode(mapping) == codec.encode(reordered)

    @_SETTINGS
    @given(json_values)
    def test_encoded_size_is_consistent(self, value):
        assert codec.encoded_size(value) == len(codec.encode(value))


class TestAuditLogProperties:
    @_SETTINGS
    @given(
        st.lists(
            st.tuples(st.sampled_from(["a", "b", "c"]), st.text(min_size=1, max_size=10)),
            max_size=15,
        )
    )
    def test_log_always_verifies_after_appends(self, entries):
        log = AuditLog("urn:org:prop")
        for category, subject in entries:
            log.append(f"cat.{category}", subject, {"note": subject})
        assert log.verify_integrity()
        assert len(log) == len(entries)

    @_SETTINGS
    @given(
        st.lists(st.text(min_size=1, max_size=10), min_size=1, max_size=10),
        st.integers(min_value=0, max_value=9),
        st.binary(min_size=1, max_size=4),
    )
    def test_any_backend_mutation_is_detected(self, subjects, index, garbage):
        backend = InMemoryBackend()
        log = AuditLog("urn:org:prop", backend=backend)
        for subject in subjects:
            log.append("cat", subject)
        keys = backend.keys()
        key = keys[index % len(keys)]
        backend.put(key, backend.get(key) + garbage)
        assert not log.verify_integrity()


class TestStateStoreProperties:
    @_SETTINGS
    @given(json_values)
    def test_store_and_resolve_roundtrip(self, state):
        store = StateStore("urn:org:prop")
        digest = store.store_state(state)
        assert store.resolve_digest(digest) == normalise(state)

    @_SETTINGS
    @given(st.lists(st.dictionaries(st.text(max_size=5), json_scalars, max_size=4), max_size=8))
    def test_version_history_reconstructs_every_agreed_state(self, states):
        store = StateStore("urn:org:prop")
        for state in states:
            store.record_version("object", state)
        assert store.version_count("object") == len(states)
        for version, state in enumerate(states):
            assert store.state_at_version("object", version) == normalise(state)
            assert store.is_agreed_state("object", state)
