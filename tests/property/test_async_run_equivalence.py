"""Equivalence of blocking and continuation-driven (async) protocol runs.

The async engine must be a pure execution-strategy change, exactly like
PR 3's retry scheduler: for the same seeded workload, driving a coordination
round inline on the calling thread (``propose_update`` with ``async_runs``
off) and chaining it through continuations (``propose_update_async`` /
``async_runs`` on) must produce identical network statistics, identical
evidence holdings and identical replica state -- at zero drop and under a
seeded lossy fault model.

Run ids are drawn from a process-global RNG, so cross-domain comparisons use
run-id-independent projections: full :class:`NetworkStatistics` equality,
state digests/versions per party, and the multiset of (token_type, role)
evidence records per party.
"""

from collections import Counter

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import FaultModel, TrustDomain

_SETTINGS = settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

PARTIES = 4


def _evidence_projection(domain):
    """Run-id-independent view of every party's evidence store."""
    projection = {}
    for uri in domain.party_uris():
        store = domain.organisation(uri).evidence_store
        records = Counter()
        for run_id in store.run_ids():
            for record in store.evidence_for_run(run_id):
                records[(record.token_type, record.role)] += 1
        projection[uri] = records
    return projection


def _replica_projection(domain):
    # A disconnected member drops its replica, so project only the parties
    # still sharing (which set must itself agree across engine modes).
    return {
        uri: (
            domain.organisation(uri).controller.state_digest("doc").hex(),
            domain.organisation(uri).shared_version("doc"),
        )
        for uri in domain.party_uris()
        if domain.organisation(uri).controller.is_shared("doc")
    }


def _run_workload(mode, drop, seed, updates, membership_change=False):
    """Drive one seeded workload in the requested engine mode.

    ``mode``: "blocking" (inline driver), "optin" (async_runs=True, blocking
    API wraps the continuation engine) or "explicit" (propose_update_async +
    deferred result).
    """
    domain = TrustDomain.create(
        [f"urn:org:p{i}" for i in range(PARTIES)],
        scheme="hmac",
        fault_model=FaultModel(
            drop_probability=drop, max_consecutive_drops=3, seed=seed
        ),
        scheduled_retries=True,
        async_runs=(mode == "optin"),
    )
    domain.share_object("doc", {"v": 0})
    proposer = domain.organisation("urn:org:p0")
    for value in updates:
        if mode == "explicit":
            outcome = proposer.propose_update_async("doc", {"v": value}).result(
                timeout=120
            )
        else:
            outcome = proposer.propose_update("doc", {"v": value})
        assert outcome.agreed, outcome.reason
    if membership_change:
        outcome = proposer.controller.disconnect_member(
            "doc", f"urn:org:p{PARTIES - 1}"
        )
        assert outcome.agreed
    assert domain.retry_scheduler.pending_timers() == 0
    return (
        domain.network.statistics,
        _replica_projection(domain),
        _evidence_projection(domain),
    )


class TestAsyncBlockingEquivalence:
    def test_zero_drop_stats_evidence_and_state_identical(self):
        updates = list(range(1, 6))
        blocking = _run_workload("blocking", 0.0, b"none", updates)
        optin = _run_workload("optin", 0.0, b"none", updates)
        explicit = _run_workload("explicit", 0.0, b"none", updates)
        assert blocking == optin == explicit

    def test_seeded_lossy_stats_evidence_and_state_identical(self):
        updates = list(range(1, 9))
        blocking = _run_workload("blocking", 0.1, b"lossy-async", updates)
        optin = _run_workload("optin", 0.1, b"lossy-async", updates)
        explicit = _run_workload("explicit", 0.1, b"lossy-async", updates)
        assert blocking == optin == explicit
        stats = blocking[0]
        assert stats.messages_dropped > 0  # the fault model actually fired
        assert stats.failed_attempts_per_destination() != {}

    def test_membership_round_equivalent_across_engines(self):
        blocking = _run_workload(
            "blocking", 0.1, b"member-async", [1, 2], membership_change=True
        )
        optin = _run_workload(
            "optin", 0.1, b"member-async", [1, 2], membership_change=True
        )
        assert blocking == optin

    @_SETTINGS
    @given(
        seed=st.binary(min_size=1, max_size=8),
        drop=st.sampled_from([0.0, 0.1]),
        updates=st.lists(
            st.integers(min_value=1, max_value=50),
            min_size=1,
            max_size=4,
            unique=True,
        ),
    )
    def test_equivalence_over_seeded_update_sequences(self, seed, drop, updates):
        blocking = _run_workload("blocking", drop, seed, updates)
        optin = _run_workload("optin", drop, seed, updates)
        assert blocking == optin


class TestDeadlinedRunsStayEquivalent:
    def test_generous_deadline_changes_nothing_but_timer_counters(self):
        """A deadline that never fires must not alter the protocol's cost."""
        domain_plain = TrustDomain.create(
            [f"urn:org:p{i}" for i in range(PARTIES)],
            scheme="hmac",
            fault_model=FaultModel(drop_probability=0.1, seed=b"deadline-equiv"),
            scheduled_retries=True,
        )
        domain_deadline = TrustDomain.create(
            [f"urn:org:p{i}" for i in range(PARTIES)],
            scheme="hmac",
            fault_model=FaultModel(drop_probability=0.1, seed=b"deadline-equiv"),
            scheduled_retries=True,
        )
        for domain in (domain_plain, domain_deadline):
            domain.share_object("doc", {"v": 0})
        for value in (1, 2, 3):
            plain = (
                domain_plain.organisation("urn:org:p0")
                .propose_update_async("doc", {"v": value})
                .result(timeout=120)
            )
            deadlined = (
                domain_deadline.organisation("urn:org:p0")
                .propose_update_async("doc", {"v": value}, deadline=10_000.0)
                .result(timeout=120)
            )
            assert plain.agreed and deadlined.agreed
        assert (
            domain_plain.network.statistics == domain_deadline.network.statistics
        )
        assert _replica_projection(domain_plain) == _replica_projection(
            domain_deadline
        )
        assert domain_deadline.retry_scheduler.pending_timers() == 0
