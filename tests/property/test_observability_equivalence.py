"""Span-tree equivalence of the wire transport and the simulated network.

Tracing must be as transport-agnostic as the protocol itself: the same
proposal driven over the in-process simulator and over a 2-node loopback
wire deployment (real TCP, context carried in frame envelopes) must produce
*shape-identical* span trees — same names, parentage and statuses — modulo
timings and ids.  This extends the counter/evidence/state equivalence of
``test_wire_equivalence.py`` to the observability plane.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import TrustDomain
from repro.clock import SimulatedClock
from repro.core.config import ObservabilityConfig
from repro.observability import runtime
from repro.observability.tracing import build_tree, tree_shape
from repro.transport.wire import WireTransport

_SETTINGS = settings(
    max_examples=4, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

OBJECT_ID = "obs-doc"


def _uris(parties):
    return [f"urn:org:oeq{i}" for i in range(parties)]


def _drive(proposer, values):
    run_ids = []
    for value in values:
        outcome = proposer.propose_update(OBJECT_ID, {"v": value})
        assert outcome.agreed, outcome.reason
        run_ids.append(outcome.run_id)
    return run_ids


def _shapes(run_ids):
    collector = runtime.STATE.tracing
    spans = collector.spans()
    return [tree_shape(spans, run_id) for run_id in run_ids]


def _simulated_shapes(parties, values):
    runtime.enable(ObservabilityConfig())
    runtime.STATE.tracing.clear()
    uris = _uris(parties)
    domain = TrustDomain.create(uris, scheme="hmac", clock=SimulatedClock())
    domain.share_object(OBJECT_ID, {"v": 0})
    return _shapes(_drive(domain.organisation(uris[0]), values))


def _wire_shapes(parties, split, values):
    runtime.enable(ObservabilityConfig())
    runtime.STATE.tracing.clear()
    uris = _uris(parties)
    local_a, local_b = uris[:split], uris[split:]
    with WireTransport(
        local_parties=local_a,
        await_remote_credentials=False,
        clock=SimulatedClock(),
    ) as ta, WireTransport(
        local_parties=local_b,
        await_remote_credentials=False,
        clock=SimulatedClock(),
    ) as tb:
        da = TrustDomain.create(uris, transport=ta, scheme="hmac")
        db = TrustDomain.create(uris, transport=tb, scheme="hmac")
        ta.introduce_to(tb.host, tb.port)
        tb.introduce_to(ta.host, ta.port)
        da.share_object(OBJECT_ID, {"v": 0})
        db.share_object(OBJECT_ID, {"v": 0})
        return _shapes(_drive(da.organisation(uris[0]), values))


class TestSpanTreeEquivalence:
    def teardown_method(self):
        runtime.disable()

    @_SETTINGS
    @given(
        parties=st.integers(min_value=3, max_value=4),
        split=st.integers(min_value=1, max_value=2),
        values=st.lists(
            st.integers(min_value=1, max_value=1000),
            min_size=1,
            max_size=2,
            unique=True,
        ),
    )
    def test_wire_and_simulator_trees_are_shape_identical(
        self, parties, split, values
    ):
        try:
            reference = _simulated_shapes(parties, values)
            wired = _wire_shapes(parties, split, values)
        finally:
            runtime.disable()
        assert wired == reference
        # And the shape is the protocol's: one run root with a commit child.
        for shape in reference:
            assert len(shape) == 1
            name, status, children = shape[0]
            assert name == "run:update"
            assert status == "agreed"
            assert "commit" in {child[0] for child in children}

    def test_every_run_is_one_connected_tree_on_both_transports(self):
        try:
            runtime.enable(ObservabilityConfig())
            runtime.STATE.tracing.clear()
            uris = _uris(3)
            domain = TrustDomain.create(
                uris, scheme="hmac", clock=SimulatedClock()
            )
            domain.share_object(OBJECT_ID, {"v": 0})
            run_ids = _drive(domain.organisation(uris[0]), [1, 2])
            spans = runtime.STATE.tracing.spans()
            for run_id in run_ids:
                roots = build_tree(spans, run_id)
                assert len(roots) == 1, "disconnected span tree"
                total = []

                def _count(node):
                    total.append(node["name"])
                    for child in node["children"]:
                        _count(child)

                _count(roots[0])
                # root + 2 requests + 2 handles + commit (+ sends/outcomes).
                assert len(total) >= 6
        finally:
            runtime.disable()
