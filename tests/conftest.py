"""Shared fixtures for the test suite.

Key generation (RSA/DSA) is the slowest part of setting up a trust domain, so
fixtures that only need *some* working domain are module-scoped; tests that
mutate shared state build their own domain through the factory fixtures.
"""

from __future__ import annotations

import pytest

from repro import ComponentDescriptor, DeploymentStyle, TrustDomain
from repro.crypto.signature import get_scheme


class QuoteService:
    """Simple business service used throughout the tests."""

    def __init__(self) -> None:
        self.calls = 0

    def quote(self, part, quantity=1):
        self.calls += 1
        return {"part": part, "quantity": quantity, "price": 100 * quantity}

    def failing_operation(self):
        raise ValueError("intentional business failure")


class SpecificationDocument:
    """Entity component used as a B2BObject in sharing tests."""

    def __init__(self, state=None) -> None:
        self._state = dict(state or {"sections": {}, "revision": 0})

    def get_state(self):
        return dict(self._state)

    def set_state(self, state):
        self._state = dict(state)

    def set_section(self, name, text):
        self._state["sections"] = dict(self._state.get("sections", {}))
        self._state["sections"][name] = text
        self._state["revision"] = self._state.get("revision", 0) + 1
        return self._state["revision"]

    def read_section(self, name):
        return self._state.get("sections", {}).get(name)


@pytest.fixture(scope="session")
def rsa_keypair():
    """A session-wide RSA key pair for crypto-level tests."""
    return get_scheme("rsa").generate_keypair()


@pytest.fixture(scope="session")
def second_rsa_keypair():
    return get_scheme("rsa").generate_keypair()


def make_domain(parties=2, style=DeploymentStyle.DIRECT, **kwargs):
    """Create a trust domain with ``parties`` organisations."""
    uris = [f"urn:org:party{i}" for i in range(parties)]
    return TrustDomain.create(uris, style=style, **kwargs)


@pytest.fixture
def domain_factory():
    """Factory fixture for building fresh trust domains inside a test."""
    return make_domain


@pytest.fixture(scope="module")
def direct_domain():
    """Module-scoped two-party direct trust domain with a deployed service."""
    domain = make_domain(2)
    provider = domain.organisation("urn:org:party1")
    provider.deploy(
        QuoteService(),
        ComponentDescriptor(name="QuoteService", non_repudiation=True),
    )
    return domain


@pytest.fixture(scope="module")
def three_party_domain():
    """Module-scoped three-party direct trust domain sharing one object."""
    domain = make_domain(3)
    domain.share_object("shared-doc", {"sections": {}, "revision": 0})
    return domain


@pytest.fixture
def quote_service_class():
    return QuoteService


@pytest.fixture
def specification_document_class():
    return SpecificationDocument
