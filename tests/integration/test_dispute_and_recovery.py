"""Integration tests combining dispute resolution, fair-exchange recovery and
tamper detection across a whole interaction history."""

import pytest

from repro import (
    ClaimType,
    ComponentDescriptor,
    DisputeClaim,
    DisputeResolver,
    EvidenceToken,
    TokenType,
    TrustDomain,
)
from repro.core.fair_exchange import FairExchangeClient
from repro.errors import AuditLogTamperedError
from tests.conftest import QuoteService


@pytest.fixture(scope="module")
def history():
    """A domain with an arbitrator and a short interaction history."""
    domain = TrustDomain.create(
        ["urn:org:buyer", "urn:org:seller"], with_arbitrator=True
    )
    seller = domain.organisation("urn:org:seller")
    buyer = domain.organisation("urn:org:buyer")
    seller.deploy(
        QuoteService(), ComponentDescriptor(name="QuoteService", non_repudiation=True)
    )
    domain.share_object("contract-terms", {"price_per_unit": 100})
    outcomes = [
        buyer.invoke_non_repudiably(seller.uri, "QuoteService", "quote", [f"part-{i}"])
        for i in range(3)
    ]
    update = buyer.propose_update("contract-terms", {"price_per_unit": 95})
    return domain, buyer, seller, outcomes, update


class TestWholeHistoryAdjudication:
    def test_every_invocation_is_defensible_by_both_sides(self, history):
        _, buyer, seller, outcomes, _ = history
        for outcome in outcomes:
            run_id = outcome.run_id
            # Buyer denies sending; seller's evidence refutes it.
            assert DisputeResolver(seller.evidence_verifier).adjudicate_from_store(
                DisputeClaim(ClaimType.DENIES_REQUEST_ORIGIN, run_id, "urn:org:buyer"),
                seller.evidence_store,
            ).refuted
            # Seller denies responding; buyer's evidence refutes it.
            assert DisputeResolver(buyer.evidence_verifier).adjudicate_from_store(
                DisputeClaim(ClaimType.DENIES_RESPONSE_ORIGIN, run_id, "urn:org:seller"),
                buyer.evidence_store,
            ).refuted

    def test_agreed_price_change_is_defensible(self, history):
        _, buyer, seller, _, update = history
        resolver = DisputeResolver(buyer.evidence_verifier)
        claim = DisputeClaim(
            ClaimType.DENIES_UPDATE_DECISION, update.run_id, "urn:org:seller"
        )
        assert resolver.adjudicate_from_store(claim, buyer.evidence_store).refuted

    def test_claim_about_a_different_run_is_not_refuted_by_other_evidence(self, history):
        _, buyer, seller, outcomes, _ = history
        resolver = DisputeResolver(seller.evidence_verifier)
        # Present evidence from run 0 against a claim about run 1: not refuting.
        run_0_tokens = [
            EvidenceToken.from_dict(record.token)
            for record in seller.evidence_for_run(outcomes[0].run_id)
        ]
        claim = DisputeClaim(
            ClaimType.DENIES_REQUEST_ORIGIN, outcomes[1].run_id, "urn:org:buyer"
        )
        assert resolver.adjudicate(claim, run_0_tokens).upheld

    def test_recovery_and_dispute_compose(self, history):
        domain, buyer, seller, outcomes, _ = history
        run_id = outcomes[0].run_id
        exchange = FairExchangeClient(seller.uri, seller.coordinator, domain.arbitrator_uri)
        affidavit = exchange.request_resolution(run_id)
        # The affidavit is itself verifiable third-party evidence for the seller.
        assert seller.evidence_verifier.verify(affidavit)
        stored_types = {r.token_type for r in seller.evidence_for_run(run_id)}
        assert TokenType.TTP_AFFIDAVIT.value in stored_types


class TestTamperDetection:
    def test_tampering_with_the_audit_backend_is_detected(self):
        domain = TrustDomain.create(["urn:org:a", "urn:org:b"])
        a = domain.organisation("urn:org:a")
        b = domain.organisation("urn:org:b")
        b.deploy(QuoteService(), ComponentDescriptor(name="QuoteService", non_repudiation=True))
        a.invoke_non_repudiably(b.uri, "QuoteService", "quote", ["x"])
        assert a.audit_log.verify_integrity()
        # Tamper with the first stored audit record directly in the backend.
        backend = a.audit_log._backend  # noqa: SLF001 - simulating an attack
        key = backend.keys()[0]
        backend.put(key, backend.get(key)[:-1] + b"!")
        assert not a.audit_log.verify_integrity()
        with pytest.raises(AuditLogTamperedError):
            a.audit_log.require_integrity()

    def test_state_reconstruction_matches_only_agreed_states(self):
        domain = TrustDomain.create(["urn:org:a", "urn:org:b"])
        a = domain.organisation("urn:org:a")
        b = domain.organisation("urn:org:b")
        domain.share_object("ledger", {"balance": 0})
        a.propose_update("ledger", {"balance": 50})
        a.propose_update("ledger", {"balance": 75})
        for org in (a, b):
            assert org.state_store.is_agreed_state("ledger", {"balance": 50})
            assert org.state_store.is_agreed_state("ledger", {"balance": 75})
            # A state that was never coordinated cannot be passed off as agreed.
            assert not org.state_store.is_agreed_state("ledger", {"balance": 1_000_000})

    def test_agreed_history_is_reconstructible_per_version(self):
        domain = TrustDomain.create(["urn:org:a", "urn:org:b"])
        a = domain.organisation("urn:org:a")
        b = domain.organisation("urn:org:b")
        domain.share_object("ledger", {"balance": 0})
        for amount in (10, 20, 30):
            a.propose_update("ledger", {"balance": amount})
        # Both parties can reconstruct every agreed version, in order.
        for org in (a, b):
            history = [
                org.state_store.state_at_version("ledger", version)
                for version in range(org.state_store.version_count("ledger"))
            ]
            assert history == [
                {"balance": 0},
                {"balance": 10},
                {"balance": 20},
                {"balance": 30},
            ]
