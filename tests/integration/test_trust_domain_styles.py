"""Integration tests: identical application code over all three deployment styles.

The point of the trusted-interceptor abstraction (Section 3.1, Figure 3) is
that the application is insulated from how the trust domain is constructed.
These tests run the same invocation and sharing scenario over the direct,
inline-TTP and distributed-inline-TTP deployments and compare observable cost
(messages, relay counts) while asserting identical application outcomes.
"""

import pytest

from repro import ComponentDescriptor, DeploymentStyle, TrustDomain
from tests.conftest import QuoteService

PARTIES = ["urn:org:client", "urn:org:provider"]

ALL_STYLES = [
    DeploymentStyle.DIRECT,
    DeploymentStyle.INLINE_TTP,
    DeploymentStyle.DISTRIBUTED_TTP,
]


def build(style):
    domain = TrustDomain.create(PARTIES, style=style)
    provider = domain.organisation("urn:org:provider")
    provider.deploy(
        QuoteService(), ComponentDescriptor(name="QuoteService", non_repudiation=True)
    )
    domain.share_object("bill-of-materials", {"parts": []})
    return domain


def run_scenario(domain):
    """One invocation plus one agreed shared-state update."""
    client = domain.organisation("urn:org:client")
    provider = domain.organisation("urn:org:provider")
    before = domain.network.statistics.snapshot()
    invocation = client.invoke_non_repudiably(
        provider.uri, "QuoteService", "quote", ["axle"], {"quantity": 2}
    )
    sharing = client.propose_update("bill-of-materials", {"parts": ["axle", "axle"]})
    delta = domain.network.statistics.delta(before)
    return invocation, sharing, delta


class TestSameBehaviourEveryStyle:
    @pytest.mark.parametrize("style", ALL_STYLES, ids=lambda s: s.value)
    def test_invocation_and_sharing_succeed(self, style):
        domain = build(style)
        invocation, sharing, _ = run_scenario(domain)
        assert invocation.succeeded
        assert invocation.value["price"] == 200
        assert sharing.agreed
        provider = domain.organisation("urn:org:provider")
        assert provider.shared_state("bill-of-materials") == {"parts": ["axle", "axle"]}

    @pytest.mark.parametrize("style", ALL_STYLES, ids=lambda s: s.value)
    def test_evidence_is_complete_in_every_style(self, style):
        domain = build(style)
        invocation, sharing, _ = run_scenario(domain)
        client = domain.organisation("urn:org:client")
        provider = domain.organisation("urn:org:provider")
        assert len(client.evidence_for_run(invocation.run_id)) >= 4
        assert len(provider.evidence_for_run(invocation.run_id)) >= 4
        assert len(client.evidence_for_run(sharing.run_id)) >= 3

    def test_ttp_styles_cost_more_messages_than_direct(self):
        costs = {}
        for style in ALL_STYLES:
            domain = build(style)
            _, _, delta = run_scenario(domain)
            costs[style] = delta.messages_sent
        assert costs[DeploymentStyle.DIRECT] < costs[DeploymentStyle.INLINE_TTP]
        assert costs[DeploymentStyle.INLINE_TTP] <= costs[DeploymentStyle.DISTRIBUTED_TTP]

    def test_ttp_holds_relay_evidence_only_in_ttp_styles(self):
        direct = build(DeploymentStyle.DIRECT)
        run_scenario(direct)
        assert direct.total_relayed_messages() == 0

        inline = build(DeploymentStyle.INLINE_TTP)
        run_scenario(inline)
        assert inline.total_relayed_messages() > 0
        ttp = inline.ttps["urn:ttp:inline"]
        assert ttp.evidence_store.total_records() > 0
        assert ttp.audit_log.verify_integrity()

    def test_mixed_routing_one_leg_via_ttp(self):
        """One part of an interaction may use a TTP while another is direct (§3.1)."""
        domain = TrustDomain.create(
            ["urn:org:a", "urn:org:b", "urn:org:c"], style=DeploymentStyle.DIRECT
        )
        # Introduce a TTP and route only the a<->c legs through it.
        from repro.core.organisation import Organisation
        from repro.core.ttp import install_relays
        from repro.core.invocation import NR_INVOCATION_PROTOCOL

        ttp = Organisation(
            uri="urn:ttp:partial",
            network=domain.network,
            ca=domain.certificate_authority,
        )
        install_relays(ttp.coordinator, [NR_INVOCATION_PROTOCOL])
        for uri in ("urn:org:a", "urn:org:c"):
            org = domain.organisation(uri)
            ttp.trust(org)
            org.evidence_verifier.pin_key(ttp.uri, ttp.public_key)
        domain.organisation("urn:org:a").route_via("urn:org:c", ttp.coordinator.address)

        provider_b = domain.organisation("urn:org:b")
        provider_c = domain.organisation("urn:org:c")
        for provider in (provider_b, provider_c):
            provider.deploy(
                QuoteService(), ComponentDescriptor(name="QuoteService", non_repudiation=True)
            )
        client = domain.organisation("urn:org:a")
        # Direct leg.
        assert client.invoke_non_repudiably(provider_b.uri, "QuoteService", "quote", ["x"]).succeeded
        relayed_after_direct = sum(
            handler.relayed_messages
            for handler in ttp.coordinator._handlers.values()  # noqa: SLF001
            if hasattr(handler, "relayed_messages")
        )
        assert relayed_after_direct == 0
        # TTP-mediated leg.
        assert client.invoke_non_repudiably(provider_c.uri, "QuoteService", "quote", ["x"]).succeeded
        relayed_after_ttp = sum(
            handler.relayed_messages
            for handler in ttp.coordinator._handlers.values()  # noqa: SLF001
            if hasattr(handler, "relayed_messages")
        )
        assert relayed_after_ttp > 0
