"""Integration test of the paper's motivating example (Section 2, Figure 1).

A specialist car dealer, a car manufacturer and three part suppliers form a
virtual enterprise.  The composite service combines NR-Invocation (ordering,
querying part availability) and NR-Sharing (the jointly negotiated component
specification and the agreements governing the interaction).
"""

import pytest

from repro import (
    CallableValidator,
    ComponentDescriptor,
    ClaimType,
    DisputeClaim,
    DisputeResolver,
    TokenType,
    TrustDomain,
)

DEALER = "urn:ve:car-dealer"
MANUFACTURER = "urn:ve:car-manufacturer"
SUPPLIER_A = "urn:ve:part-supplier-a"
SUPPLIER_B = "urn:ve:part-supplier-b"
SUPPLIER_C = "urn:ve:part-supplier-c"

ALL_PARTIES = [DEALER, MANUFACTURER, SUPPLIER_A, SUPPLIER_B, SUPPLIER_C]


class OrderService:
    """Manufacturer service through which the dealer orders a specialist car."""

    def __init__(self):
        self.orders = {}

    def place_order(self, model, options):
        order_id = f"order-{len(self.orders) + 1}"
        self.orders[order_id] = {"model": model, "options": options, "status": "accepted"}
        return {"order_id": order_id, "status": "accepted"}

    def order_status(self, order_id):
        return self.orders[order_id]["status"]


class PartCatalogue:
    """Supplier service answering part availability queries."""

    def __init__(self, parts):
        self._parts = parts

    def availability(self, part):
        return {"part": part, "available": part in self._parts, "lead_time_weeks": 6}


@pytest.fixture(scope="module")
def virtual_enterprise():
    domain = TrustDomain.create(ALL_PARTIES)
    manufacturer = domain.organisation(MANUFACTURER)
    manufacturer.deploy(
        OrderService(), ComponentDescriptor(name="OrderService", non_repudiation=True)
    )
    catalogues = {
        SUPPLIER_A: ["gearbox", "differential"],
        SUPPLIER_B: ["carbon body", "spoiler"],
        SUPPLIER_C: ["bespoke interior"],
    }
    for supplier, parts in catalogues.items():
        domain.organisation(supplier).deploy(
            PartCatalogue(parts),
            ComponentDescriptor(name="PartCatalogue", non_repudiation=True),
        )

    # The component specification is shared by the manufacturer and suppliers
    # A and B (the negotiation of Figure 1); the dealer is not a member.
    spec_members = [MANUFACTURER, SUPPLIER_A, SUPPLIER_B]
    spec_initial = {"component": "drive train", "requirements": {}, "agreed_cost": 0}
    for uri in spec_members:
        org = domain.organisation(uri)
        validators = []
        if uri != MANUFACTURER:
            validators.append(
                CallableValidator(
                    lambda ctx: ctx.proposed_state.get("agreed_cost", 0) <= 25_000,
                    name="cost-ceiling",
                )
            )
        org.share_object("drive-train-spec", spec_initial, spec_members, validators)
    return domain


class TestVirtualEnterpriseScenario:
    def test_dealer_places_non_repudiable_order(self, virtual_enterprise):
        dealer = virtual_enterprise.organisation(DEALER)
        manufacturer = virtual_enterprise.organisation(MANUFACTURER)
        proxy = dealer.nr_proxy(manufacturer, "OrderService")
        confirmation = proxy.place_order("roadster", {"colour": "british racing green"})
        assert confirmation["status"] == "accepted"
        # The manufacturer can later prove who placed the order.
        run_id = dealer.evidence_store.run_ids()[0]
        origin = manufacturer.evidence_store.tokens_of_type(run_id, TokenType.NRO_REQUEST.value)
        assert origin and origin[0].token["issuer"] == DEALER

    def test_manufacturer_queries_suppliers(self, virtual_enterprise):
        manufacturer = virtual_enterprise.organisation(MANUFACTURER)
        for supplier_uri, part, expected in [
            (SUPPLIER_A, "gearbox", True),
            (SUPPLIER_B, "gearbox", False),
            (SUPPLIER_C, "bespoke interior", True),
        ]:
            supplier = virtual_enterprise.organisation(supplier_uri)
            outcome = manufacturer.invoke_non_repudiably(
                supplier.uri, "PartCatalogue", "availability", [part]
            )
            assert outcome.succeeded
            assert outcome.value["available"] is expected

    def test_specification_negotiation_round(self, virtual_enterprise):
        manufacturer = virtual_enterprise.organisation(MANUFACTURER)
        supplier_a = virtual_enterprise.organisation(SUPPLIER_A)
        supplier_b = virtual_enterprise.organisation(SUPPLIER_B)

        proposal = {
            "component": "drive train",
            "requirements": {"torque": "450Nm", "interface": "standard flange"},
            "agreed_cost": 22_000,
        }
        outcome = manufacturer.propose_update("drive-train-spec", proposal)
        assert outcome.agreed
        assert supplier_a.shared_state("drive-train-spec")["agreed_cost"] == 22_000
        assert supplier_b.shared_state("drive-train-spec")["requirements"]["torque"] == "450Nm"

    def test_over_budget_specification_is_vetoed(self, virtual_enterprise):
        manufacturer = virtual_enterprise.organisation(MANUFACTURER)
        supplier_a = virtual_enterprise.organisation(SUPPLIER_A)
        before = supplier_a.shared_state("drive-train-spec")
        outcome = manufacturer.propose_update(
            "drive-train-spec",
            {"component": "drive train", "requirements": {}, "agreed_cost": 90_000},
        )
        assert not outcome.agreed
        assert supplier_a.shared_state("drive-train-spec") == before

    def test_dealer_is_not_a_member_of_the_specification_group(self, virtual_enterprise):
        dealer = virtual_enterprise.organisation(DEALER)
        assert not dealer.controller.is_shared("drive-train-spec")
        manufacturer = virtual_enterprise.organisation(MANUFACTURER)
        assert DEALER not in manufacturer.controller.members("drive-train-spec")

    def test_disputes_are_resolvable_from_stored_evidence(self, virtual_enterprise):
        dealer = virtual_enterprise.organisation(DEALER)
        manufacturer = virtual_enterprise.organisation(MANUFACTURER)
        outcome = dealer.invoke_non_repudiably(
            manufacturer.uri, "OrderService", "place_order", ["gt", {"colour": "silver"}]
        )
        resolver = DisputeResolver(manufacturer.evidence_verifier)
        # The dealer later denies having ordered the silver GT.
        claim = DisputeClaim(
            claim_type=ClaimType.DENIES_REQUEST_ORIGIN,
            run_id=outcome.run_id,
            denying_party=DEALER,
        )
        verdict = resolver.adjudicate_from_store(claim, manufacturer.evidence_store)
        assert verdict.refuted
        # The manufacturer denies having confirmed the order.
        counter_claim = DisputeClaim(
            claim_type=ClaimType.DENIES_RESPONSE_ORIGIN,
            run_id=outcome.run_id,
            denying_party=MANUFACTURER,
        )
        counter_verdict = DisputeResolver(dealer.evidence_verifier).adjudicate_from_store(
            counter_claim, dealer.evidence_store
        )
        assert counter_verdict.refuted

    def test_supplier_c_joins_the_specification_group_later(self, virtual_enterprise):
        manufacturer = virtual_enterprise.organisation(MANUFACTURER)
        supplier_c = virtual_enterprise.organisation(SUPPLIER_C)
        outcome = manufacturer.controller.connect_member("drive-train-spec", SUPPLIER_C)
        assert outcome.agreed
        assert supplier_c.controller.is_shared("drive-train-spec")
        # The new member participates in the next negotiation round.
        state = supplier_c.shared_state("drive-train-spec")
        state["requirements"]["interior mounts"] = "leather trim compatible"
        update = supplier_c.propose_update("drive-train-spec", state)
        assert update.agreed
        assert (
            manufacturer.shared_state("drive-train-spec")["requirements"]["interior mounts"]
            == "leather trim compatible"
        )

    def test_audit_logs_of_all_parties_are_intact(self, virtual_enterprise):
        for uri in ALL_PARTIES:
            assert virtual_enterprise.organisation(uri).audit_log.verify_integrity()
