"""At-most-once protocol semantics under injected duplication and reordering.

The transports deliberately do NOT deduplicate (a wire retry after a lost
reply is indistinguishable from a duplicate); the protocol layer must.
Under a seeded plan that duplicates and reorders every message, on either
transport, runs must still agree and every party's evidence store must
hold exactly the same token multiset as a clean run -- interceptors are
idempotent and the evidence store never double-inserts.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro import TrustDomain
from repro.clock import SimulatedClock
from repro.core.messages import B2BProtocolMessage
from repro.core.protocol import DEDUP_WINDOW, RESPONSE_CACHE, ProtocolRun
from repro.faults import FaultPlan, FaultRule
from repro.transport.wire import WireTransport
from repro.transport.wire.server import FAILPOINT_BEFORE_REPLY

OBJECT_ID = "dedup-doc"
URIS = [f"urn:org:dedup{i}" for i in range(3)]


def _chatty_plan():
    """Duplicate and reorder every protocol message."""
    return FaultPlan(
        rules=(
            FaultRule(fault="duplicate", probability=1.0),
            FaultRule(fault="reorder", probability=1.0),
        ),
        seed=b"dedup",
    )


def _evidence(org, run_ids):
    counts = Counter()
    for run_id in run_ids:
        for record in org.evidence_store.evidence_for_run(run_id):
            counts[(record.token_type, record.role)] += 1
    return counts


def _drive(domain, values):
    proposer = domain.organisation(URIS[0])
    run_ids = []
    for value in values:
        outcome = proposer.propose_update(OBJECT_ID, {"v": value})
        assert outcome.agreed, outcome.reason
        run_ids.append(outcome.run_id)
    return run_ids


def _simulated(fault_plan=None):
    domain = TrustDomain.create(
        URIS, scheme="hmac", clock=SimulatedClock(), fault_plan=fault_plan
    )
    domain.share_object(OBJECT_ID, {"v": 0})
    run_ids = _drive(domain, [1, 2])
    return {
        uri: _evidence(domain.organisation(uri), run_ids) for uri in URIS
    }, {
        uri: (
            domain.organisation(uri).shared_state(OBJECT_ID),
            domain.organisation(uri).shared_version(OBJECT_ID),
        )
        for uri in URIS
    }


class TestProtocolRunDedup:
    def _message(self, message_id, step=1):
        return B2BProtocolMessage(
            run_id="run-1",
            protocol="p",
            step=step,
            sender="urn:a",
            recipient="urn:b",
            payload={},
            message_id=message_id,
        )

    def test_duplicate_message_ids_are_refused_once_recorded(self):
        run = ProtocolRun(
            run_id="run-1", protocol="p", initiator="urn:a", responder="urn:b"
        )
        assert run.record_message(self._message("m-1"))
        assert not run.record_message(self._message("m-1"))
        assert run.record_message(self._message("m-2"))
        assert run.messages_seen == ["m-1", "m-2"]

    def test_response_cache_replays_and_is_bounded(self):
        run = ProtocolRun(
            run_id="run-1", protocol="p", initiator="urn:a", responder="urn:b"
        )
        reply = self._message("r-1", step=2)
        run.cache_response("m-1", reply)
        assert run.cached_response("m-1") is reply
        assert run.cached_response("m-unknown") is None
        for n in range(RESPONSE_CACHE + 5):
            run.cache_response(f"m-fill-{n}", reply)
        assert run.cached_response("m-1") is None  # evicted oldest-first
        assert run.cached_response(f"m-fill-{RESPONSE_CACHE + 4}") is reply

    def test_dedup_window_is_bounded_and_evicts_oldest(self):
        run = ProtocolRun(
            run_id="run-1", protocol="p", initiator="urn:a", responder="urn:b"
        )
        for n in range(DEDUP_WINDOW + 10):
            assert run.record_message(self._message(f"m-{n}"))
        assert len(run.messages_seen) == DEDUP_WINDOW
        # The oldest ids fell out of the window; the newest are still known.
        assert run.record_message(self._message("m-0"))
        assert not run.record_message(
            self._message(f"m-{DEDUP_WINDOW + 9}")
        )

    def test_recovered_runs_seed_the_window_from_the_record(self):
        run = ProtocolRun(
            run_id="run-1",
            protocol="p",
            initiator="urn:a",
            responder="urn:b",
            messages_seen=["m-1"],
        )
        assert not run.record_message(self._message("m-1"))


class TestDuplicationAcrossTransports:
    def test_simulated_duplication_leaves_clean_run_evidence(self):
        clean_evidence, clean_states = _simulated()
        noisy_evidence, noisy_states = _simulated(fault_plan=_chatty_plan())
        assert noisy_evidence == clean_evidence
        assert noisy_states == clean_states

    def test_wire_duplication_leaves_clean_run_evidence(self):
        clean_evidence, clean_states = _simulated()
        plan = _chatty_plan()
        with WireTransport(
            local_parties=URIS[:1],
            await_remote_credentials=False,
            clock=SimulatedClock(),
        ) as ta, WireTransport(
            local_parties=URIS[1:],
            await_remote_credentials=False,
            clock=SimulatedClock(),
        ) as tb:
            da = TrustDomain.create(
                URIS, transport=ta, scheme="hmac", fault_plan=plan
            )
            db = TrustDomain.create(URIS, transport=tb, scheme="hmac")
            ta.introduce_to(tb.host, tb.port)
            tb.introduce_to(ta.host, ta.port)
            da.share_object(OBJECT_ID, {"v": 0})
            db.share_object(OBJECT_ID, {"v": 0})
            run_ids = _drive(da, [1, 2])

            def org(uri):
                return (da if uri in da.organisations else db).organisation(uri)

            assert {
                uri: _evidence(org(uri), run_ids) for uri in URIS
            } == clean_evidence
            assert {
                uri: (
                    org(uri).shared_state(OBJECT_ID),
                    org(uri).shared_version(OBJECT_ID),
                )
                for uri in URIS
            } == clean_states
            assert da.network.statistics.messages_duplicated > 0

    def test_lost_reply_retry_is_absorbed_as_a_duplicate(self):
        # Crash-before-reply on the responder node: the request is
        # processed, the reply lost, and the sender's retry re-delivers the
        # SAME message id.  The protocol layer must replay its cached
        # response instead of re-running the interceptor -- exactly one
        # received NRO_UPDATE and one generated NR_DECISION per responder.
        clean_evidence, _clean_states = _simulated()
        with WireTransport(
            local_parties=URIS[:1],
            await_remote_credentials=False,
            clock=SimulatedClock(),
        ) as ta, WireTransport(
            local_parties=URIS[1:],
            await_remote_credentials=False,
            clock=SimulatedClock(),
        ) as tb:
            da = TrustDomain.create(URIS, transport=ta, scheme="hmac")
            db = TrustDomain.create(URIS, transport=tb, scheme="hmac")
            ta.introduce_to(tb.host, tb.port)
            tb.introduce_to(ta.host, ta.port)
            da.share_object(OBJECT_ID, {"v": 0})
            db.share_object(OBJECT_ID, {"v": 0})
            tb.network.failpoints.arm(FAILPOINT_BEFORE_REPLY, max_shots=1)
            run_ids = _drive(da, [1, 2])

            def org(uri):
                return (da if uri in da.organisations else db).organisation(uri)

            assert {
                uri: _evidence(org(uri), run_ids) for uri in URIS
            } == clean_evidence
            # The retry really happened: the proposer paid a failed attempt.
            failed = da.network.statistics.failed_attempts_per_destination()
            assert sum(failed.values()) >= 1


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-v"]))
