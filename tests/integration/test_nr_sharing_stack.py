"""Integration tests for the full NR-Sharing stack (Figures 5 and 8).

The scenario mirrors Figure 8: an EJB client invokes an application interface
(session bean) that updates an entity bean identified as a B2BObject; the
middleware coordinates the update with the remote replicas, appealing to
application-specific validator components before agreeing.
"""

import pytest

from repro import (
    CallableValidator,
    ComponentDescriptor,
    ComponentType,
    TokenType,
    TrustDomain,
)
from repro.container.interceptor import Invocation
from tests.conftest import SpecificationDocument


class SpecificationFacade:
    """Application interface (session bean) in front of the shared document."""

    def __init__(self, container, document_name):
        self._container = container
        self._document_name = document_name

    def _dispatch(self, method, *args):
        result = self._container.dispatch(
            Invocation(component=self._document_name, method=method, args=list(args))
        )
        return result.unwrap()

    def author_section(self, name, text):
        return self._dispatch("set_section", name, text)

    def revise_whole_specification(self, sections):
        # Rolled up into a single coordination event via the descriptor.
        for name, text in sections.items():
            self._dispatch("set_section", name, text)
        return len(sections)

    def read_section(self, name):
        return self._dispatch("read_section", name)


def budget_validator(limit):
    def check(context):
        cost = context.proposed_state.get("cost", 0)
        return cost <= limit

    return CallableValidator(check, name=f"budget<={limit}")


@pytest.fixture(scope="module")
def sharing_stack():
    domain = TrustDomain.create(
        ["urn:org:manufacturer", "urn:org:supplierA", "urn:org:supplierB"]
    )
    initial_state = SpecificationDocument().get_state()
    domain.share_object("component-spec", initial_state)

    facades = {}
    documents = {}
    for uri in domain.party_uris():
        org = domain.organisation(uri)
        document = SpecificationDocument()
        org.deploy(
            document,
            ComponentDescriptor(
                name="component-spec",
                component_type=ComponentType.ENTITY,
                b2b_object=True,
            ),
        )
        documents[uri] = document
        org.deploy(
            SpecificationFacade(org.container, "component-spec"),
            ComponentDescriptor(name="SpecificationFacade", rollup_methods=["revise_whole_specification"],
                                metadata={"b2b_object_id": "component-spec"}),
        )
        facades[uri] = org.container.create_local_proxy("SpecificationFacade")
    return domain, facades, documents


class TestSharedDocumentLifecycle:
    def test_update_through_session_facade_propagates(self, sharing_stack):
        domain, facades, documents = sharing_stack
        facades["urn:org:manufacturer"].author_section("interface", "CAN bus")
        for uri in domain.party_uris():
            assert documents[uri].read_section("interface") == "CAN bus"
            org = domain.organisation(uri)
            assert org.shared_state("component-spec")["sections"]["interface"] == "CAN bus"

    def test_remote_reader_sees_agreed_state_locally(self, sharing_stack):
        domain, facades, _ = sharing_stack
        facades["urn:org:supplierA"].author_section("materials", "aluminium")
        # Supplier B reads through its *local* replica -- no remote call needed.
        assert facades["urn:org:supplierB"].read_section("materials") == "aluminium"

    def test_rollup_method_coordinates_once(self, sharing_stack):
        domain, facades, _ = sharing_stack
        manufacturer = domain.organisation("urn:org:manufacturer")
        runs_before = len(manufacturer.evidence_store.run_ids())
        facades["urn:org:manufacturer"].revise_whole_specification(
            {"tolerances": "0.1mm", "finish": "anodised", "testing": "ISO-123"}
        )
        assert len(manufacturer.evidence_store.run_ids()) == runs_before + 1
        supplier = domain.organisation("urn:org:supplierB")
        assert supplier.shared_state("component-spec")["sections"]["finish"] == "anodised"

    def test_version_numbers_advance_in_lockstep(self, sharing_stack):
        domain, facades, _ = sharing_stack
        versions = {
            uri: domain.organisation(uri).shared_version("component-spec")
            for uri in domain.party_uris()
        }
        assert len(set(versions.values())) == 1
        facades["urn:org:supplierB"].author_section("delivery", "week 30")
        for uri in domain.party_uris():
            assert (
                domain.organisation(uri).shared_version("component-spec")
                == versions[uri] + 1
            )

    def test_every_party_holds_decision_evidence_of_every_other(self, sharing_stack):
        domain, facades, _ = sharing_stack
        manufacturer = domain.organisation("urn:org:manufacturer")
        state = manufacturer.shared_state("component-spec")
        state["sections"]["warranty"] = "24 months"
        outcome = manufacturer.propose_update("component-spec", state)
        assert outcome.agreed
        run_id = outcome.run_id
        # Proposer holds NR_DECISION evidence from both suppliers.
        decisions = manufacturer.evidence_store.tokens_of_type(
            run_id, TokenType.NR_DECISION.value
        )
        deciders = {record.token["issuer"] for record in decisions}
        assert deciders == {"urn:org:supplierA", "urn:org:supplierB"}
        # Peers hold the proposer's origin evidence and the collective outcome.
        for supplier_uri in ("urn:org:supplierA", "urn:org:supplierB"):
            supplier = domain.organisation(supplier_uri)
            types = {r.token_type for r in supplier.evidence_for_run(run_id)}
            assert TokenType.NRO_UPDATE.value in types
            assert TokenType.NR_OUTCOME.value in types


class TestValidatedNegotiation:
    @pytest.fixture
    def negotiation(self):
        domain = TrustDomain.create(["urn:org:buyer", "urn:org:sellerA", "urn:org:sellerB"])
        initial = {"item": "custom gearbox", "cost": 0}
        for uri in domain.party_uris():
            org = domain.organisation(uri)
            validators = []
            if uri != "urn:org:buyer":
                validators.append(budget_validator(10_000))
            org.share_object("purchase-order", initial, domain.party_uris(), validators)
        return domain

    def test_within_budget_update_is_agreed(self, negotiation):
        buyer = negotiation.organisation("urn:org:buyer")
        outcome = buyer.propose_update(
            "purchase-order", {"item": "custom gearbox", "cost": 8_000}
        )
        assert outcome.agreed
        for uri in negotiation.party_uris():
            assert negotiation.organisation(uri).shared_state("purchase-order")["cost"] == 8_000

    def test_over_budget_update_is_vetoed_by_validators(self, negotiation):
        buyer = negotiation.organisation("urn:org:buyer")
        outcome = buyer.propose_update(
            "purchase-order", {"item": "custom gearbox", "cost": 50_000}
        )
        assert not outcome.agreed
        rejectors = [uri for uri, d in outcome.decisions.items() if not d.accepted]
        assert set(rejectors) == {"urn:org:sellerA", "urn:org:sellerB"}
        for uri in negotiation.party_uris():
            assert negotiation.organisation(uri).shared_state("purchase-order")["cost"] == 0

    def test_audit_trail_records_validation_decisions(self, negotiation):
        buyer = negotiation.organisation("urn:org:buyer")
        seller = negotiation.organisation("urn:org:sellerA")
        outcome = buyer.propose_update(
            "purchase-order", {"item": "custom gearbox", "cost": 50_000}
        )
        records = seller.audit_records(category="nr.sharing", subject=outcome.run_id)
        assert any(record.details.get("event") == "proposal-validated" for record in records)
        assert any(record.details.get("accepted") is False for record in records)
