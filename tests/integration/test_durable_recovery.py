"""Crash-recovery integration tests for durable runs (in-process crashes).

The run journal is written *before* each phase's side effects dispatch, so
an injected crash right after a journal write is the worst case for that
phase: the record exists but none of its consequences do.  These tests
crash a proposer at each stage, replay recovery, and check the convergence
contract -- a run that never passed the commit barrier aborts everywhere,
a run that passed it resumes to completion everywhere, and doing either
twice changes nothing.  The wire-level SIGKILL variant of these scenarios
lives in ``tests/property/test_durable_runs_wire.py``.
"""

from collections import Counter

import pytest

from repro import TrustDomain
from repro.clock import SimulatedClock
from repro.core.sharing import set_run_fault_injector
from repro.crypto.signature import get_scheme
from repro.persistence.run_journal import PHASE_COMMITTED, PHASE_PROPOSED
from repro.persistence.storage import InMemoryBackend

URIS = ["urn:org:a", "urn:org:b", "urn:org:c"]
OBJECT_ID = "contract"


class SimulatedCrash(Exception):
    """Stands in for the process dying at the injected stage."""


@pytest.fixture(autouse=True)
def _clear_fault_injector():
    yield
    set_run_fault_injector(None)


def crash_once_at(stage):
    """Install an injector that raises at ``stage`` the first time only."""
    fired = []

    def injector(at_stage, run):
        if at_stage == stage and not fired:
            fired.append(run.run_id)
            raise SimulatedCrash(stage)

    set_run_fault_injector(injector)
    return fired


def durable_domain(**overrides):
    options = dict(durable_runs=True)
    options.update(overrides)
    domain = TrustDomain.create(URIS, **options)
    domain.share_object(OBJECT_ID, {"clauses": []})
    return domain


def versions(domain):
    return [
        domain.organisation(uri).controller.get_version(OBJECT_ID) for uri in URIS
    ]


def states(domain):
    return [
        domain.organisation(uri).controller.get_state(OBJECT_ID) for uri in URIS
    ]


def evidence_summary(org, run_id):
    return Counter(
        (stored.token_type, stored.role) for stored in org.evidence_for_run(run_id)
    )


class TestRecoveryNoOpCases:
    def test_recovery_with_empty_journal_is_a_noop(self):
        domain = durable_domain()
        assert domain.recover_runs() == {uri: {} for uri in URIS}
        # The domain is fully usable afterwards.
        outcome = domain.organisation(URIS[0]).propose_update(
            OBJECT_ID, {"clauses": ["delivery"]}
        )
        assert outcome.agreed
        assert versions(domain) == [1, 1, 1]

    def test_recovery_skips_settled_runs(self):
        domain = durable_domain()
        proposer = domain.organisation(URIS[0])
        outcome = proposer.propose_update(OBJECT_ID, {"clauses": ["delivery"]})
        assert outcome.agreed
        journaled = proposer.controller.run_journal.run(outcome.run_id)
        assert not journaled.open
        assert domain.recover_runs() == {uri: {} for uri in URIS}


class TestCrashBeforeCommitBarrier:
    def test_crash_after_proposed_record_recovers_by_aborting(self):
        domain = durable_domain()
        proposer = domain.organisation(URIS[0])
        crash_once_at("after-journal-proposed")
        with pytest.raises(SimulatedCrash):
            proposer.propose_update(OBJECT_ID, {"clauses": ["delivery"]})

        # The crash landed before the fan-out: no peer saw anything.
        journaled = proposer.controller.run_journal.open_runs()
        assert [run.phase for run in journaled] == [PHASE_PROPOSED]
        run_id = journaled[0].run_id

        recovered = domain.recover_runs()
        assert recovered[URIS[0]] == {run_id: "aborted"}
        assert not proposer.controller.run_journal.run(run_id).open
        # Nothing was applied anywhere; the next proposal converges normally.
        assert versions(domain) == [0, 0, 0]
        outcome = proposer.propose_update(OBJECT_ID, {"clauses": ["payment"]})
        assert outcome.agreed
        assert versions(domain) == [1, 1, 1]
        assert len({repr(state) for state in states(domain)}) == 1

    def test_abort_notices_are_tolerated_for_unknown_runs(self):
        # Peers never saw the crashed proposal, so the recovery abort notice
        # names a run they have no state for; it must be absorbed silently.
        domain = durable_domain()
        proposer = domain.organisation(URIS[0])
        crash_once_at("after-journal-proposed")
        with pytest.raises(SimulatedCrash):
            proposer.propose_update(OBJECT_ID, {"clauses": ["delivery"]})
        (run_id,) = [run.run_id for run in proposer.controller.run_journal.open_runs()]
        domain.recover_runs()
        for uri in URIS[1:]:
            received = domain.organisation(uri).audit_records(subject=run_id)
            assert any(
                record.details.get("event") == "run-abort-received"
                for record in received
            )


class TestCrashAfterCommitBarrier:
    def test_crash_after_committed_record_recovers_by_resuming(self):
        domain = durable_domain()
        proposer = domain.organisation(URIS[0])
        crash_once_at("after-journal-committed")
        with pytest.raises(SimulatedCrash):
            proposer.propose_update(OBJECT_ID, {"clauses": ["delivery"]})

        # Peers validated and decided, but no outcome left the proposer:
        # responders hold half-open runs, the proposer holds version 0.
        journaled = proposer.controller.run_journal.open_runs()
        assert [run.phase for run in journaled] == [PHASE_COMMITTED]
        run_id = journaled[0].run_id
        assert proposer.controller.get_version(OBJECT_ID) == 0

        recovered = domain.recover_runs()
        assert recovered[URIS[0]] == {run_id: "resumed"}
        assert versions(domain) == [1, 1, 1]
        assert len({repr(state) for state in states(domain)}) == 1
        assert states(domain)[0] == {"clauses": ["delivery"]}

        # Convergence is evidential, not just state-level: both responders
        # hold identical evidence multisets for the recovered run.
        b, c = (domain.organisation(uri) for uri in URIS[1:])
        assert evidence_summary(b, run_id) == evidence_summary(c, run_id)
        assert evidence_summary(b, run_id)  # non-empty

    def test_double_recovery_is_idempotent(self):
        domain = durable_domain()
        proposer = domain.organisation(URIS[0])
        crash_once_at("after-journal-committed")
        with pytest.raises(SimulatedCrash):
            proposer.propose_update(OBJECT_ID, {"clauses": ["delivery"]})
        first = domain.recover_runs()
        assert list(first[URIS[0]].values()) == ["resumed"]
        run_id = next(iter(first[URIS[0]]))

        snapshot = (versions(domain), states(domain))
        summaries = [
            evidence_summary(domain.organisation(uri), run_id) for uri in URIS
        ]
        second = domain.recover_runs()
        assert second == {uri: {} for uri in URIS}
        assert (versions(domain), states(domain)) == snapshot
        assert [
            evidence_summary(domain.organisation(uri), run_id) for uri in URIS
        ] == summaries

    def test_resumed_membership_run_applies_idempotently(self):
        domain = durable_domain()
        proposer = domain.organisation(URIS[0])
        crash_once_at("after-journal-committed")
        with pytest.raises(SimulatedCrash):
            proposer.controller.disconnect_member(OBJECT_ID, URIS[2])
        recovered = domain.recover_runs()
        assert list(recovered[URIS[0]].values()) == ["resumed"]
        assert URIS[2] not in proposer.controller.members(OBJECT_ID)
        assert URIS[2] not in domain.organisation(URIS[1]).controller.members(
            OBJECT_ID
        )
        # Recover again: membership application must not error or flap.
        assert domain.recover_runs() == {uri: {} for uri in URIS}
        assert URIS[2] not in proposer.controller.members(OBJECT_ID)


class TestRestartedOrganisationRecovers:
    def test_restarted_proposer_with_persisted_identity_resumes(self):
        """A brand-new Organisation over the old journal/evidence recovers.

        This is the in-process analogue of the SIGKILL chaos suite: the
        proposer object is discarded and rebuilt from its durable pieces
        (keypair, journal backend, evidence backend) on the same network.
        """
        journal_backends = {uri: InMemoryBackend() for uri in URIS}
        evidence_backends = {uri: InMemoryBackend() for uri in URIS}
        domain = durable_domain(
            run_journal_backend_factory=journal_backends.__getitem__,
            evidence_backend_factory=evidence_backends.__getitem__,
            keypair_factory=lambda uri: get_scheme("rsa").generate_keypair(),
        )
        old = domain.organisation(URIS[0])
        crash_once_at("after-journal-committed")
        with pytest.raises(SimulatedCrash):
            old.propose_update(OBJECT_ID, {"clauses": ["delivery"]})

        from repro.core.organisation import Organisation

        restarted = Organisation(
            uri=URIS[0],
            network=domain.network,
            ca=domain.certificate_authority,
            keypair=old.keypair,
            durable_runs=True,
            run_journal_backend=journal_backends[URIS[0]],
            evidence_backend=evidence_backends[URIS[0]],
        )
        domain.organisations[URIS[0]] = restarted
        for uri in URIS[1:]:
            peer = domain.organisation(uri)
            restarted.trust(peer)
            peer.trust(restarted)
        # The restarted process re-registers its shared objects from
        # configuration, then replays the journal.
        restarted.share_object(OBJECT_ID, {"clauses": []}, list(URIS))

        recovered = restarted.recover_runs()
        assert list(recovered.values()) == ["resumed"]
        assert versions(domain) == [1, 1, 1]
        assert states(domain)[0] == {"clauses": ["delivery"]}
        assert len({repr(state) for state in states(domain)}) == 1
        # And the restarted identity keeps proposing.
        outcome = restarted.propose_update(OBJECT_ID, {"clauses": ["payment"]})
        assert outcome.agreed
        assert versions(domain) == [2, 2, 2]


class TestOrphanExpiry:
    def orphaned_domain(self, timeout=5.0):
        clock = SimulatedClock()
        domain = durable_domain(
            scheduled_retries=True, clock=clock, orphan_run_timeout=timeout
        )
        proposer = domain.organisation(URIS[0])
        crash_once_at("after-journal-committed")
        with pytest.raises(SimulatedCrash):
            proposer.propose_update(OBJECT_ID, {"clauses": ["delivery"]})
        (record,) = proposer.controller.run_journal.open_runs()
        return domain, record.run_id

    def test_responders_expire_orphaned_runs(self):
        domain, run_id = self.orphaned_domain()
        scheduler = domain.retry_scheduler
        b, c = (domain.organisation(uri) for uri in URIS[1:])
        assert b.controller.pending_orphan_watches() == [run_id]
        assert c.controller.pending_orphan_watches() == [run_id]

        # The proposer never comes back; virtual time passes the timeout.
        scheduler.drive_until(
            lambda: not b.controller.pending_orphan_watches()
            and not c.controller.pending_orphan_watches()
        )
        for responder in (b, c):
            run = responder.controller._handler.runs.get(run_id)  # noqa: SLF001
            assert run is not None and run.finished
            expiries = [
                record
                for record in responder.audit_records(subject=run_id)
                if record.details.get("event") == "orphan-run-expired"
            ]
            assert len(expiries) == 1
        # No timer leaks: the expiry timers fired and nothing rescheduled.
        assert scheduler.pending_timers() == 0
        # State never advanced from an expired proposal.
        assert versions(domain) == [0, 0, 0]

    def test_recovery_abort_clears_orphan_watches_before_expiry(self):
        domain, run_id = self.orphaned_domain()
        scheduler = domain.retry_scheduler
        b, c = (domain.organisation(uri) for uri in URIS[1:])
        # Here the proposer *does* come back, before the timeout fires.
        # (The run committed, so recovery resumes it; the outcome delivery
        # clears the responders' expiry clocks.)
        recovered = domain.recover_runs()
        assert list(recovered[URIS[0]].values()) == ["resumed"]
        assert b.controller.pending_orphan_watches() == []
        assert c.controller.pending_orphan_watches() == []
        assert scheduler.pending_timers() == 0
        assert versions(domain) == [1, 1, 1]

    def test_outcome_delivery_cancels_the_watch_in_healthy_runs(self):
        clock = SimulatedClock()
        domain = durable_domain(
            scheduled_retries=True, clock=clock, orphan_run_timeout=5.0
        )
        outcome = domain.organisation(URIS[0]).propose_update(
            OBJECT_ID, {"clauses": ["delivery"]}
        )
        assert outcome.agreed
        for uri in URIS[1:]:
            assert domain.organisation(uri).controller.pending_orphan_watches() == []
        assert domain.retry_scheduler.pending_timers() == 0


class TestAbortNoticeAuthorisation:
    def test_impostor_abort_notice_is_refused(self):
        domain, run_id = TestOrphanExpiry().orphaned_domain(timeout=1000.0)
        impostor = domain.organisation(URIS[2])
        victim = domain.organisation(URIS[1])
        live_run = victim.controller._handler.runs.get(run_id)  # noqa: SLF001
        assert live_run is not None and not live_run.finished

        from repro.core.messages import B2BProtocolMessage
        from repro.core.sharing import ACTION_ABORT, RunAbortNotice

        victim.controller.handle_abort(
            B2BProtocolMessage(
                run_id=run_id,
                protocol="nr-sharing",
                step=3,
                sender=impostor.uri,  # not the run's initiator
                recipient=victim.uri,
                payload=RunAbortNotice(
                    run_id=run_id,
                    object_id=OBJECT_ID,
                    proposer=impostor.uri,
                    reason="forged",
                ),
                attributes={"action": ACTION_ABORT},
            )
        )
        # The run survives and the expiry watch still stands.
        assert not live_run.finished
        assert victim.controller.pending_orphan_watches() == [run_id]
        refused = [
            record
            for record in victim.audit_records(subject=run_id)
            if record.details.get("event") == "abort-refused"
        ]
        assert len(refused) == 1
