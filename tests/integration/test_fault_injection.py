"""Fault-injection integration tests.

The trusted-interceptor assumptions permit "a bounded number of temporary
network and computer related failures" (Section 3.1); the liveness guarantee
is that agreed interactions complete despite them.  These tests inject
message loss, duplication, latency, node crashes and misbehaving parties and
check the safety invariants hold and liveness is regained once faults clear.
"""

import pytest

from repro import (
    CallableValidator,
    ComponentDescriptor,
    FaultModel,
    TokenType,
    TrustDomain,
)
from repro.errors import DeliveryError, ProtocolError, ReproError
from repro.transport.delivery import RetryPolicy
from tests.conftest import QuoteService


def lossy_domain(drop_probability, seed, parties=2, duplicate_probability=0.0):
    uris = [f"urn:org:party{i}" for i in range(parties)]
    fault_model = FaultModel(
        drop_probability=drop_probability,
        duplicate_probability=duplicate_probability,
        max_consecutive_drops=4,
        seed=seed,
    )
    return TrustDomain.create(uris, fault_model=fault_model)


class TestLossyNetwork:
    def test_invocation_completes_despite_heavy_loss(self):
        domain = lossy_domain(0.6, b"loss-invocation")
        client = domain.organisation("urn:org:party0")
        server = domain.organisation("urn:org:party1")
        server.deploy(
            QuoteService(), ComponentDescriptor(name="QuoteService", non_repudiation=True)
        )
        for i in range(5):
            outcome = client.invoke_non_repudiably(
                server.uri, "QuoteService", "quote", [f"part-{i}"]
            )
            assert outcome.succeeded
        assert domain.network.statistics.messages_dropped > 0

    def test_at_most_once_despite_duplication(self):
        domain = lossy_domain(0.0, b"dup", duplicate_probability=0.5)
        client = domain.organisation("urn:org:party0")
        server = domain.organisation("urn:org:party1")
        service = QuoteService()
        server.deploy(
            service, ComponentDescriptor(name="QuoteService", non_repudiation=True)
        )
        for _ in range(5):
            assert client.invoke_non_repudiably(
                server.uri, "QuoteService", "quote", ["duplicated part"]
            ).succeeded
        # Despite transport-level duplication, each request executed exactly once.
        assert service.calls == 5
        assert domain.network.statistics.messages_duplicated > 0

    def test_sharing_completes_despite_loss_and_latency(self):
        uris = [f"urn:org:party{i}" for i in range(3)]
        domain = TrustDomain.create(
            uris,
            fault_model=FaultModel(
                drop_probability=0.4,
                latency_seconds=0.01,
                jitter_seconds=0.01,
                max_consecutive_drops=3,
                seed=b"loss-sharing",
            ),
        )
        domain.share_object("resilient-doc", {"counter": 0})
        organisations = [domain.organisation(uri) for uri in uris]
        for round_number in range(1, 4):
            proposer = organisations[round_number % 3]
            outcome = proposer.propose_update("resilient-doc", {"counter": round_number})
            assert outcome.agreed
        states = {org.controller.state_digest("resilient-doc") for org in organisations}
        assert len(states) == 1
        assert organisations[0].shared_state("resilient-doc") == {"counter": 3}


class TestCrashesAndPartitions:
    def test_crashed_peer_prevents_agreement_but_not_safety(self):
        domain = TrustDomain.create([f"urn:org:party{i}" for i in range(3)])
        domain.share_object("doc", {"v": 0})
        a, b, c = [domain.organisation(uri) for uri in domain.party_uris()]
        domain.network.set_online(c.uri, False)
        outcome = a.propose_update("doc", {"v": 1})
        # Without the crashed party's validation there is no unanimous agreement.
        assert not outcome.agreed
        assert a.shared_state("doc") == {"v": 0}
        assert b.shared_state("doc") == {"v": 0}
        # Once the peer recovers, coordination succeeds again (liveness regained).
        domain.network.set_online(c.uri, True)
        recovered = a.propose_update("doc", {"v": 1})
        assert recovered.agreed
        assert c.shared_state("doc") == {"v": 1}

    def test_partitioned_invocation_fails_cleanly_then_recovers(self):
        domain = TrustDomain.create(
            ["urn:org:client", "urn:org:server"],
        )
        client = domain.organisation("urn:org:client")
        server = domain.organisation("urn:org:server")
        server.deploy(
            QuoteService(), ComponentDescriptor(name="QuoteService", non_repudiation=True)
        )
        domain.network.partition.sever(client.uri, server.uri)
        with pytest.raises(ReproError):
            client.invoke_non_repudiably(server.uri, "QuoteService", "quote", ["x"])
        domain.network.partition.heal_all()
        assert client.invoke_non_repudiably(
            server.uri, "QuoteService", "quote", ["x"]
        ).succeeded

    def test_client_keeps_origin_evidence_even_when_delivery_fails(self):
        domain = TrustDomain.create(["urn:org:client", "urn:org:server"])
        client = domain.organisation("urn:org:client")
        server = domain.organisation("urn:org:server")
        server.deploy(
            QuoteService(), ComponentDescriptor(name="QuoteService", non_repudiation=True)
        )
        domain.network.partition.sever(client.uri, server.uri)
        with pytest.raises(ReproError):
            client.invoke_non_repudiably(server.uri, "QuoteService", "quote", ["x"])
        # The client generated and stored NRO_req before attempting delivery:
        # it can later prove what it tried to send.
        run_ids = client.evidence_store.run_ids()
        assert any(
            client.evidence_store.tokens_of_type(run_id, TokenType.NRO_REQUEST.value)
            for run_id in run_ids
        )
        # The server, which never saw the request, holds nothing for those runs.
        for run_id in run_ids:
            assert server.evidence_store.evidence_for_run(run_id) == []


class TestMisbehaviour:
    def test_dishonest_validator_cannot_corrupt_state(self):
        """A peer that always vetoes can block progress but never corrupt state."""
        domain = TrustDomain.create([f"urn:org:party{i}" for i in range(3)])
        domain.share_object("doc", {"v": 0})
        a, b, c = [domain.organisation(uri) for uri in domain.party_uris()]
        c.controller.add_validator("doc", CallableValidator(lambda ctx: False, name="griefer"))
        for attempt in range(3):
            outcome = a.propose_update("doc", {"v": attempt + 1})
            assert not outcome.agreed
        digests = {org.controller.state_digest("doc") for org in (a, b, c)}
        assert len(digests) == 1
        assert a.shared_state("doc") == {"v": 0}

    def test_unknown_party_cannot_inject_proposals(self):
        domain = TrustDomain.create(["urn:org:a", "urn:org:b"])
        intruder_domain = TrustDomain.create(["urn:org:mallory", "urn:org:other"])
        domain.share_object("doc", {"v": 0})
        b = domain.organisation("urn:org:b")
        mallory = intruder_domain.organisation("urn:org:mallory")
        # Mallory crafts a proposal for a group it does not belong to, signed
        # with its own (untrusted) key.
        from repro.core.messages import B2BProtocolMessage
        from repro.core.sharing import ACTION_PROPOSE, NR_SHARING_PROTOCOL

        payload = {"object_id": "doc", "proposer": mallory.uri, "base_version": 0,
                   "proposed_state": {"v": 666}}
        token = mallory.evidence_builder.build(
            token_type=TokenType.NRO_UPDATE, run_id="run-evil", step=1,
            recipient="doc", payload=payload,
        )
        message = B2BProtocolMessage(
            run_id="run-evil", protocol=NR_SHARING_PROTOCOL, step=1,
            sender=mallory.uri, recipient=b.uri, payload=payload, tokens=[token],
            attributes={"action": ACTION_PROPOSE},
        )
        response = b.controller.handler.process_request(message)
        assert response.payload["accepted"] is False
        assert b.shared_state("doc") == {"v": 0}

    def test_retry_budget_exhaustion_is_reported(self):
        fault_model = FaultModel(drop_probability=1.0, max_consecutive_drops=10**6, seed=b"dead")
        domain = TrustDomain.create(
            ["urn:org:a", "urn:org:b"], fault_model=fault_model
        )
        client = domain.organisation("urn:org:a")
        server = domain.organisation("urn:org:b")
        server.deploy(
            QuoteService(), ComponentDescriptor(name="QuoteService", non_repudiation=True)
        )
        with pytest.raises(ReproError):
            client.invoke_non_repudiably(server.uri, "QuoteService", "quote", ["x"])
