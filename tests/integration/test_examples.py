"""Smoke tests: every shipped example runs to completion.

The examples double as executable documentation of the paper's scenarios, so
the suite fails if any of them stops working.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")

EXAMPLES = [
    "quickstart.py",
    "virtual_enterprise.py",
    "trust_domains.py",
    "information_sharing.py",
    "fault_tolerance.py",
    "two_process_sharing.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_cleanly(script):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, script))
    result = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=300,
        check=False,
    )
    assert result.returncode == 0, (
        f"{script} failed\nstdout:\n{result.stdout}\nstderr:\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script} produced no output"


def test_quickstart_reports_complete_evidence():
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, "quickstart.py"))
    result = subprocess.run(
        [sys.executable, path], capture_output=True, text=True, timeout=300, check=True
    )
    for token_type in ("nro-request", "nrr-request", "nro-response", "nrr-response"):
        assert token_type in result.stdout
    assert "audit log intact: True" in result.stdout


def test_two_process_example_verifies_evidence_on_both_sides():
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, "two_process_sharing.py"))
    result = subprocess.run(
        [sys.executable, path], capture_output=True, text=True, timeout=300, check=True
    )
    assert "update agreed across processes" in result.stdout
    assert "A holds verified evidence: nro-update (generated)" in result.stdout
    assert "B holds verified evidence: nro-update (received)" in result.stdout
    assert "B holds verified evidence: nr-outcome (received)" in result.stdout
    assert "verified on both sides of the socket" in result.stdout


def test_two_process_example_renders_distributed_trace():
    """The wire run yields one connected tree plus both metric exports."""
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, "two_process_sharing.py"))
    result = subprocess.run(
        [sys.executable, path], capture_output=True, text=True, timeout=300, check=True
    )
    assert "distributed span tree of the cross-process update:" in result.stdout
    # One tree: the root run span plus B's handler spans recorded in the
    # other OS process, parented through the context the socket carried.
    assert "run:update [agreed]" in result.stdout
    assert "handle:proposal [ok]" in result.stdout
    assert "handle:outcome [ok]" in result.stdout
    assert "repro_run_duration_seconds_count 1" in result.stdout
    assert "metrics (JSON): histograms exported = 5" in result.stdout


def test_fault_tolerance_example_traces_the_self_healing_run():
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, "fault_tolerance.py"))
    result = subprocess.run(
        [sys.executable, path], capture_output=True, text=True, timeout=300, check=True
    )
    assert "span tree of the self-healing run:" in result.stdout
    assert "run:update [agreed]" in result.stdout
    # The severed outcome wave and the re-delivery repair are both spans.
    assert "[error]" in result.stdout
    assert "redeliver [ok]" in result.stdout
    assert "crypto.sign_seconds: count=" in result.stdout


def test_trust_domains_example_reports_all_styles():
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, "trust_domains.py"))
    result = subprocess.run(
        [sys.executable, path], capture_output=True, text=True, timeout=300, check=True
    )
    for style in ("direct", "inline-ttp", "distributed-ttp"):
        assert style in result.stdout
