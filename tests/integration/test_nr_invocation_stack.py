"""Integration tests for the full NR-Invocation stack (Figures 4, 6, 7).

These tests exercise the whole path the paper describes: EJB-style client ->
client proxy with NR interceptor -> B2BInvocationHandler -> coordinators over
the (simulated) network -> server NR interceptor -> interceptor chain ->
component, with evidence persisted and audited at each trusted interceptor.
"""

import pytest

from repro import ComponentDescriptor, EvidenceToken, TokenType, TrustDomain
from repro.container.services import CallStatisticsInterceptor, LoggingInterceptor
from repro.errors import InterceptorError
from tests.conftest import QuoteService


@pytest.fixture(scope="module")
def stack():
    domain = TrustDomain.create(["urn:org:dealer", "urn:org:manufacturer"])
    dealer = domain.organisation("urn:org:dealer")
    manufacturer = domain.organisation("urn:org:manufacturer")

    # The manufacturer's container also runs ordinary container services,
    # showing the NR service composes with them (Figure 6).
    statistics = CallStatisticsInterceptor()
    manufacturer.container.add_default_interceptor(statistics)
    manufacturer.container.add_default_interceptor(
        LoggingInterceptor(manufacturer.audit_log)
    )
    manufacturer.deploy(
        QuoteService(),
        ComponentDescriptor(name="QuoteService", non_repudiation=True),
    )
    return domain, dealer, manufacturer, statistics


class TestEndToEndInvocation:
    def test_business_result_is_correct(self, stack):
        _, dealer, manufacturer, _ = stack
        proxy = dealer.nr_proxy(manufacturer, "QuoteService")
        result = proxy.quote("carbon-fibre body", quantity=2)
        assert result == {"part": "carbon-fibre body", "quantity": 2, "price": 200}

    def test_container_services_observed_the_call(self, stack):
        _, dealer, manufacturer, statistics = stack
        proxy = dealer.nr_proxy(manufacturer, "QuoteService")
        before = statistics.total_calls()
        proxy.quote("brake disc")
        assert statistics.total_calls() == before + 1
        assert manufacturer.audit_records(category="container.invocation")

    def test_cross_verification_of_evidence(self, stack):
        """Each party can verify every token the *other* party stored."""
        _, dealer, manufacturer, _ = stack
        outcome = dealer.invoke_non_repudiably(
            manufacturer.uri, "QuoteService", "quote", ["suspension"]
        )
        for holder, checker in ((dealer, manufacturer), (manufacturer, dealer)):
            for record in holder.evidence_for_run(outcome.run_id):
                token = EvidenceToken.from_dict(record.token)
                assert checker.evidence_verifier.verify(token)

    def test_audit_logs_remain_tamper_evident(self, stack):
        _, dealer, manufacturer, _ = stack
        dealer.invoke_non_repudiably(manufacturer.uri, "QuoteService", "quote", ["gear"])
        assert dealer.audit_log.verify_integrity()
        assert manufacturer.audit_log.verify_integrity()

    def test_many_sequential_invocations_keep_distinct_evidence(self, stack):
        _, dealer, manufacturer, _ = stack
        run_ids = [
            dealer.invoke_non_repudiably(
                manufacturer.uri, "QuoteService", "quote", [f"part-{i}"]
            ).run_id
            for i in range(5)
        ]
        assert len(set(run_ids)) == 5
        for run_id in run_ids:
            assert len(dealer.evidence_for_run(run_id)) == 4
            assert len(manufacturer.evidence_for_run(run_id)) == 4

    def test_multiple_clients_of_one_service(self, stack):
        domain, _, manufacturer, _ = stack
        # A second client organisation joins the domain dynamically.
        # (Simplest path: build a new domain including a third party.)
        domain3 = TrustDomain.create(
            ["urn:org:dealer", "urn:org:partsB", "urn:org:manufacturer"]
        )
        maker = domain3.organisation("urn:org:manufacturer")
        maker.deploy(
            QuoteService(),
            ComponentDescriptor(name="QuoteService", non_repudiation=True),
        )
        for client_uri in ("urn:org:dealer", "urn:org:partsB"):
            client = domain3.organisation(client_uri)
            outcome = client.invoke_non_repudiably(
                maker.uri, "QuoteService", "quote", ["shared part"]
            )
            assert outcome.succeeded
            # The server's evidence names the right originator for each run.
            origin = maker.evidence_store.tokens_of_type(
                outcome.run_id, TokenType.NRO_REQUEST.value
            )[0]
            assert origin.token["issuer"] == client_uri

    def test_plain_and_nr_access_can_coexist_on_different_components(self, stack):
        domain, dealer, manufacturer, _ = stack
        manufacturer.deploy(
            QuoteService(), ComponentDescriptor(name="CatalogueService")
        )
        plain = dealer.plain_proxy(manufacturer, "CatalogueService")
        assert plain.quote("catalogue item")["price"] == 100
        protected = dealer.plain_proxy(manufacturer, "QuoteService")
        with pytest.raises(InterceptorError):
            protected.quote("catalogue item")

    def test_server_work_not_consumed_is_still_evidenced(self, stack):
        """At-most-once: the server may do work the client does not consume."""
        _, dealer, manufacturer, _ = stack
        outcome = dealer.invoke_non_repudiably(
            manufacturer.uri, "QuoteService", "quote", ["spoiler"], consume_response=False
        )
        assert outcome.value is None
        receipt = manufacturer.evidence_store.tokens_of_type(
            outcome.run_id, TokenType.NRR_RESPONSE.value
        )[0]
        assert receipt.token["details"]["consumed"] is False
        # The server can later prove it produced the response.
        assert manufacturer.evidence_store.tokens_of_type(
            outcome.run_id, TokenType.NRO_RESPONSE.value
        )
