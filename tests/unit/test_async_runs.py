"""Unit tests for the run-multiplexing async protocol engine.

Covers the :class:`repro.core.sharing.RunFuture` lifecycle (completion,
abort, deadline expiry), the timer hygiene of aborted runs (extending the
``ReliableChannel.close`` no-leak guarantee to whole protocol runs), the
membership-change expiry, and the scheduler-driven fair-exchange abort
deadline.
"""

import pytest

from repro import ComponentDescriptor, FaultModel, TokenType, TrustDomain
from repro.core.fair_exchange import FairExchangeClient
from repro.core.sharing import RunFuture
from repro.errors import CoordinationError, FairExchangeError, MembershipError
from tests.conftest import QuoteService


def make_domain(parties=3, **kwargs):
    uris = [f"urn:org:p{i}" for i in range(parties)]
    kwargs.setdefault("scheme", "hmac")
    domain = TrustDomain.create(uris, **kwargs)
    domain.share_object("doc", {"v": 0})
    return domain


class TestProposeUpdateAsync:
    def test_async_run_reaches_agreement_and_applies_everywhere(self):
        domain = make_domain(scheduled_retries=True)
        future = domain.organisation("urn:org:p0").propose_update_async("doc", {"v": 1})
        assert isinstance(future, RunFuture)
        outcome = future.result(timeout=30)
        assert outcome.agreed and outcome.new_version == 1
        assert future.done()
        for uri in domain.party_uris():
            assert domain.organisation(uri).shared_state("doc") == {"v": 1}
        assert domain.retry_scheduler.pending_timers() == 0

    def test_async_works_without_scheduler(self):
        # Fan-outs then execute eagerly; the future is resolved by the
        # continuation chain with no timers involved.
        domain = make_domain(scheduled_retries=False)
        outcome = (
            domain.organisation("urn:org:p0")
            .propose_update_async("doc", {"v": 5})
            .result(timeout=30)
        )
        assert outcome.agreed
        assert domain.organisation("urn:org:p2").shared_state("doc") == {"v": 5}

    def test_many_concurrent_runs_from_one_thread(self):
        domain = make_domain(
            parties=4,
            scheduled_retries=True,
            fault_model=FaultModel(drop_probability=0.15, seed=b"async-unit"),
        )
        for index in range(8):
            domain.share_object(f"obj-{index}", {"v": 0})
        proposer = domain.organisation("urn:org:p0")
        futures = [
            proposer.propose_update_async(f"obj-{index}", {"v": index + 1})
            for index in range(8)
        ]
        outcomes = [future.result(timeout=60) for future in futures]
        assert all(outcome.agreed for outcome in outcomes)
        for index in range(8):
            assert domain.organisation("urn:org:p3").shared_state(f"obj-{index}") == {
                "v": index + 1
            }
        assert domain.retry_scheduler.pending_timers() == 0

    def test_vetoed_async_run_reports_reason(self):
        from repro import CallableValidator

        domain = make_domain(scheduled_retries=True)
        domain.organisation("urn:org:p1").controller.add_validator(
            "doc", CallableValidator(lambda ctx: False, name="always-veto")
        )
        outcome = (
            domain.organisation("urn:org:p0")
            .propose_update_async("doc", {"v": 2})
            .result(timeout=30)
        )
        assert not outcome.agreed
        with pytest.raises(CoordinationError):
            outcome.require_agreed()

    def test_unknown_object_raises_synchronously(self):
        domain = make_domain(scheduled_retries=True)
        with pytest.raises(CoordinationError):
            domain.organisation("urn:org:p0").propose_update_async("nope", {})

    def test_deadline_requires_scheduler(self):
        domain = make_domain(scheduled_retries=False)
        with pytest.raises(CoordinationError, match="retry scheduler"):
            domain.organisation("urn:org:p0").propose_update_async(
                "doc", {"v": 1}, deadline=1.0
            )


class TestRunDeadlinesAndAbort:
    def partitioned_domain(self):
        domain = make_domain(scheduled_retries=True)
        for uri in domain.party_uris():
            if uri != "urn:org:p0":
                domain.network.partition.sever("urn:org:p0", uri)
        return domain

    def test_deadline_aborts_run_and_releases_timers(self):
        domain = self.partitioned_domain()
        future = domain.organisation("urn:org:p0").propose_update_async(
            "doc", {"v": 1}, deadline=0.5
        )
        outcome = future.result(timeout=30)
        assert not outcome.agreed
        assert "deadline" in outcome.reason
        # The abort withdrew the run's delivery retries and its own deadline
        # timer: nothing pending, for this run or at all.
        assert domain.retry_scheduler.pending_timers_for_run(future.run_id) == 0
        assert domain.retry_scheduler.pending_timers() == 0
        # The replica never applied anything.
        assert domain.organisation("urn:org:p0").shared_state("doc") == {"v": 0}
        audits = domain.organisation("urn:org:p0").audit_records(
            subject=future.run_id
        )
        assert any(r.details.get("event") == "update-aborted" for r in audits)

    def test_manual_abort_settles_future(self):
        domain = self.partitioned_domain()
        future = domain.organisation("urn:org:p0").propose_update_async("doc", {"v": 1})
        assert not future.done()
        assert future.abort("operator gave up") is True
        outcome = future.result(timeout=30)
        assert not outcome.agreed and "operator gave up" in outcome.reason
        assert domain.retry_scheduler.pending_timers() == 0
        # A settled run cannot be aborted twice.
        assert future.abort("again") is False

    def test_deadline_cancelled_on_normal_completion(self):
        domain = make_domain(scheduled_retries=True)
        future = domain.organisation("urn:org:p0").propose_update_async(
            "doc", {"v": 1}, deadline=60.0
        )
        outcome = future.result(timeout=30)
        assert outcome.agreed
        assert domain.retry_scheduler.pending_timers() == 0  # deadline withdrawn

    def test_completed_run_ignores_late_abort(self):
        domain = make_domain(scheduled_retries=True)
        future = domain.organisation("urn:org:p0").propose_update_async("doc", {"v": 1})
        outcome = future.result(timeout=30)
        assert outcome.agreed
        assert future.abort() is False
        assert future.result(timeout=1).agreed  # outcome unchanged


class TestCommitBarrier:
    """Aborts race the outcome fan-out; the commit barrier decides the winner."""

    def test_abort_refused_once_outcome_committed(self):
        from repro.core.sharing import _UpdateRun

        domain = make_domain(scheduled_retries=True)
        controller = domain.organisation("urn:org:p0").controller
        run = _UpdateRun(controller, "doc", {"v": 1})
        phase1 = controller.coordinator.request_all_async(run._phase1_messages())
        outcome_fan_out = run._commit_outcome(run._phase2_messages(phase1.results()))
        assert outcome_fan_out is not None
        # The collective decision is out at the peers: aborting now would
        # diverge the replicas, so it is refused and the run completes.
        assert run.abort("too late") is False
        run._after_phase2(outcome_fan_out)
        outcome = run.future.result(timeout=10)
        assert outcome.agreed
        for uri in domain.party_uris():
            assert domain.organisation(uri).shared_state("doc") == {"v": 1}

    def test_abort_before_commit_suppresses_outcome_fanout(self):
        from repro.core.sharing import _UpdateRun

        domain = make_domain(scheduled_retries=True)
        controller = domain.organisation("urn:org:p0").controller
        run = _UpdateRun(controller, "doc", {"v": 1})
        phase1 = controller.coordinator.request_all_async(run._phase1_messages())
        messages = run._phase2_messages(phase1.results())
        assert run.abort("changed my mind") is True
        before = domain.network.statistics.messages_sent
        assert run._commit_outcome(messages) is None  # nothing sent
        assert domain.network.statistics.messages_sent == before
        assert run.future.result(timeout=10).agreed is False
        # No peer applied anything: the outcome never left the proposer.
        for uri in domain.party_uris():
            assert domain.organisation(uri).shared_state("doc") == {"v": 0}
        # And the proposer's evidence trail agrees with the not-agreed
        # result: no generated NR_OUTCOME token exists for the dead run.
        store = domain.organisation("urn:org:p0").evidence_store
        assert store.tokens_of_type(run.run_id, TokenType.NR_OUTCOME.value) == []


class TestMembershipAsync:
    def test_connect_member_async(self):
        domain = make_domain(parties=4, scheduled_retries=True)
        members = domain.party_uris()[:3]
        newcomer = domain.party_uris()[3]
        for uri in members:
            domain.organisation(uri).share_object("grp", {"v": 0}, members)
        future = domain.organisation(members[0]).controller.connect_member_async(
            "grp", newcomer
        )
        outcome = future.result(timeout=30)
        assert outcome.agreed
        assert domain.organisation(newcomer).controller.is_shared("grp")
        assert domain.retry_scheduler.pending_timers() == 0

    def test_membership_expiry_aborts_pending_change(self):
        domain = make_domain(parties=3, scheduled_retries=True)
        controller = domain.organisation("urn:org:p0").controller
        for uri in domain.party_uris():
            if uri != "urn:org:p0":
                domain.network.partition.sever("urn:org:p0", uri)
        future = controller.disconnect_member_async(
            "doc", "urn:org:p2", deadline=0.5
        )
        outcome = future.result(timeout=30)
        assert not outcome.agreed and "deadline" in outcome.reason
        # Membership unchanged everywhere; no timers left behind.
        assert "urn:org:p2" in controller.members("doc")
        assert domain.retry_scheduler.pending_timers() == 0

    def test_membership_validation_raises_synchronously(self):
        domain = make_domain(parties=3, scheduled_retries=True)
        controller = domain.organisation("urn:org:p0").controller
        with pytest.raises(MembershipError):
            controller.connect_member_async("doc", "urn:org:p1")


class TestAsyncRunsOptIn:
    def test_blocking_api_delegates_through_async_engine(self):
        domain = make_domain(scheduled_retries=True, async_runs=True)
        assert domain.organisation("urn:org:p0").controller.async_runs
        outcome = domain.organisation("urn:org:p0").propose_update("doc", {"v": 3})
        assert outcome.agreed
        for uri in domain.party_uris():
            assert domain.organisation(uri).shared_state("doc") == {"v": 3}

    def test_async_runs_implies_scheduled_retries(self):
        domain = make_domain(async_runs=True)
        assert domain.retry_scheduler is not None


class TestFairExchangeAbortDeadline:
    @pytest.fixture
    def arbitrated(self):
        domain = TrustDomain.create(
            ["urn:org:client", "urn:org:server"],
            with_arbitrator=True,
            scheduled_retries=True,
        )
        server = domain.organisation("urn:org:server")
        server.deploy(
            QuoteService(),
            ComponentDescriptor(name="QuoteService", non_repudiation=True),
        )
        client = domain.organisation("urn:org:client")
        outcome = client.invoke_non_repudiably(
            server.uri, "QuoteService", "quote", ["beam"]
        )
        return domain, client, server, outcome.run_id

    def test_expired_deadline_obtains_abort_token(self, arbitrated):
        domain, client, server, run_id = arbitrated
        exchange = FairExchangeClient(
            client.uri, client.coordinator, domain.arbitrator_uri
        )
        handle = exchange.schedule_abort(run_id, timeout=0.25)
        assert not handle.fired
        domain.retry_scheduler.drive_until(lambda: handle.fired, timeout=30)
        stored = client.evidence_store.tokens_of_type(
            run_id, TokenType.TTP_ABORT.value
        )
        assert stored, "deadline expiry should have produced a TTP_ABORT"
        assert domain.retry_scheduler.pending_timers() == 0
        # The abort is final: the server can no longer resolve.
        server_exchange = FairExchangeClient(
            server.uri, server.coordinator, domain.arbitrator_uri
        )
        with pytest.raises(FairExchangeError):
            server_exchange.request_resolution(run_id)

    def test_cancelled_deadline_never_aborts(self, arbitrated):
        domain, client, server, run_id = arbitrated
        exchange = FairExchangeClient(
            client.uri, client.coordinator, domain.arbitrator_uri
        )
        handle = exchange.schedule_abort(run_id, timeout=5.0)
        assert handle.cancel() is True  # the awaited response "arrived"
        assert domain.retry_scheduler.pending_timers() == 0
        server_exchange = FairExchangeClient(
            server.uri, server.coordinator, domain.arbitrator_uri
        )
        affidavit = server_exchange.request_resolution(run_id)
        assert affidavit.token_type == TokenType.TTP_AFFIDAVIT.value

    def test_deadline_losing_the_race_is_audited_not_raised(self, arbitrated):
        domain, client, server, run_id = arbitrated
        server_exchange = FairExchangeClient(
            server.uri, server.coordinator, domain.arbitrator_uri
        )
        server_exchange.request_resolution(run_id)  # decision now final
        exchange = FairExchangeClient(
            client.uri, client.coordinator, domain.arbitrator_uri
        )
        handle = exchange.schedule_abort(run_id, timeout=0.25)
        domain.retry_scheduler.drive_until(lambda: handle.fired, timeout=30)
        audits = client.audit_records(subject=run_id)
        assert any(
            record.details.get("event") == "abort-deadline-refused"
            for record in audits
        )

    def test_schedule_abort_requires_scheduler(self):
        domain = TrustDomain.create(
            ["urn:org:client", "urn:org:server"], with_arbitrator=True
        )
        client = domain.organisation("urn:org:client")
        exchange = FairExchangeClient(
            client.uri, client.coordinator, domain.arbitrator_uri
        )
        with pytest.raises(FairExchangeError, match="retry scheduler"):
            exchange.schedule_abort("some-run", timeout=1.0)
