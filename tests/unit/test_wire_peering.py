"""Lazy peer-channel management on the wire transport.

Two real socket-backed nodes: a hub process hosting many parties and a
single-party node with a small peering cap.  The node must reach every
hub party without eager credential exchange, with live channel state
bounded by the cap, evictions audited, evicted peers reachable again on
the next touch, and pooled sockets released when every channel of an
endpoint is gone.
"""

import pytest

from repro.core.config import DomainConfig, PeeringConfig, TransportConfig
from repro.core.trust_domain import TrustDomain
from repro.errors import DeliveryError, ProtocolError
from repro.peering import AUDIT_CATEGORY_PEERING, EVICT_EXPLICIT, PeeringPolicy
from repro.transport.wire import WireTransport

NODE = "urn:wp:node"
PEERS = [f"urn:wp:peer{i}" for i in range(4)]
ALL = [NODE] + PEERS


@pytest.fixture
def deployment():
    hub = WireTransport(PEERS, port=0)
    node = WireTransport(
        [NODE],
        port=0,
        peers={peer: (hub.host, hub.port) for peer in PEERS},
    )
    hub.network.address_book.add(NODE, node.host, node.port)
    node_domain = TrustDomain.create(
        ALL,
        config=DomainConfig(
            transport=TransportConfig(wire=node),
            peering=PeeringConfig(max_live_channels=2),
        ),
    )
    hub_domain = TrustDomain.create(ALL, transport=hub)
    for i, peer in enumerate(PEERS):
        members = [NODE, peer]
        hub_domain.share_object(f"doc-{i}", {"v": 0}, members)
        node_domain.share_object(f"doc-{i}", {"v": 0}, members)
    try:
        yield node, node_domain, hub_domain
    finally:
        node.close()
        hub.close()


class TestLazyDomain:
    def test_no_eager_exchange_and_bounded_channels(self, deployment):
        node, node_domain, _hub_domain = deployment
        assert node.peer_manager is not None
        # nothing resolved yet: domain creation performed no exchange
        assert node.peer_manager.live_channels() == 0
        org = node_domain.organisation(NODE)
        for i in range(len(PEERS)):
            assert org.propose_update(f"doc-{i}", {"v": i + 1}).agreed
        stats = node.peer_manager.stats
        assert stats.created == len(PEERS)
        assert stats.peak_live <= 2
        assert node.peer_manager.live_channels() <= 2
        assert stats.evicted >= len(PEERS) - 2

    def test_evictions_are_audited_on_the_node(self, deployment):
        node, node_domain, _hub_domain = deployment
        org = node_domain.organisation(NODE)
        for i in range(len(PEERS)):
            org.propose_update(f"doc-{i}", {"v": 1})
        records = org.audit_log.records(category=AUDIT_CATEGORY_PEERING)
        assert records, "channel evictions must be audited"
        assert {r.details["event"] for r in records} == {"peer-channel-evicted"}
        assert all(r.details["reason"] == "lru-cap" for r in records)

    def test_evicted_peer_is_reachable_again(self, deployment):
        node, node_domain, _hub_domain = deployment
        org = node_domain.organisation(NODE)
        for i in range(len(PEERS)):
            org.propose_update(f"doc-{i}", {"v": 1})
        # doc-0's peer was evicted (cap 2, four peers touched in order)
        assert PEERS[0] not in node.peer_manager.live_parties()
        assert org.propose_update("doc-0", {"v": 2}).agreed
        assert node.peer_manager.stats.recreated >= 1

    def test_draining_an_endpoint_releases_its_sockets(self, deployment):
        node, node_domain, _hub_domain = deployment
        org = node_domain.organisation(NODE)
        for i in range(len(PEERS)):
            org.propose_update(f"doc-{i}", {"v": 1})
        # every hub party shares one endpoint; evicting all live channels
        # drops its refcount to zero and retires the pooled connections
        for party in list(node.peer_manager.live_parties()):
            node.peer_manager.evict(party, EVICT_EXPLICIT)
        assert node.network.pool.peer_releases >= 1
        # ... and the hub is still reachable afterwards (fresh dial)
        assert org.propose_update("doc-1", {"v": 9}).agreed


class TestTransportSurface:
    def test_constructor_peering_policy_enables_manager(self):
        with WireTransport(
            ["urn:wp:solo"], port=0, peering=PeeringPolicy(max_live_channels=7)
        ) as transport:
            assert transport.peer_manager is not None
            assert transport.peer_manager.policy.max_live_channels == 7

    def test_enable_peering_twice_is_an_error(self):
        with WireTransport(["urn:wp:solo"], port=0) as transport:
            transport.enable_peering()
            with pytest.raises(ProtocolError, match="already enabled"):
                transport.enable_peering()

    def test_ensure_party_rejects_unmapped_party(self):
        with WireTransport(["urn:wp:solo"], port=0) as transport:
            transport.enable_peering()
            with pytest.raises(ProtocolError, match="neither known nor"):
                transport.ensure_party("urn:wp:ghost")

    def test_unreachable_mapped_peer_is_retryable(self):
        # A mapped peer whose process is down must surface as DeliveryError
        # (retryable), not wedge the channel manager for later touches.
        with WireTransport(["urn:wp:solo"], port=0) as transport:
            transport.enable_peering()
            transport.network.address_book.add("urn:wp:down", "127.0.0.1", 1)
            with pytest.raises(DeliveryError):
                transport.ensure_party("urn:wp:down")
            assert transport.peer_manager.live_channels() == 0
