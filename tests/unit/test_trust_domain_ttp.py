"""Unit tests for trust-domain construction and TTP relays (Figure 3)."""

import pytest

from repro import ComponentDescriptor, DeploymentStyle, TokenType, TrustDomain
from repro.core.invocation import NR_INVOCATION_PROTOCOL
from repro.core.sharing import NR_SHARING_PROTOCOL
from repro.errors import ProtocolError
from tests.conftest import QuoteService


def deploy_quotes(domain, provider_uri="urn:org:party1"):
    provider = domain.organisation(provider_uri)
    provider.deploy(
        QuoteService(), ComponentDescriptor(name="QuoteService", non_repudiation=True)
    )
    return provider


class TestDomainConstruction:
    def test_requires_at_least_two_parties(self):
        with pytest.raises(ProtocolError):
            TrustDomain.create(["urn:org:lonely"])

    def test_rejects_duplicate_uris(self):
        with pytest.raises(ProtocolError):
            TrustDomain.create(["urn:org:a", "urn:org:a"])

    def test_direct_domain_has_no_ttps(self, domain_factory):
        domain = domain_factory(2)
        assert domain.style is DeploymentStyle.DIRECT
        assert domain.ttps == {}
        assert domain.total_relayed_messages() == 0

    def test_every_party_gets_certificate_and_keys(self, domain_factory):
        domain = domain_factory(2)
        for org in domain.organisations.values():
            assert org.certificate is not None
            assert org.certificate.subject == org.uri
            assert org.certificate_store.verify_certificate(org.certificate)

    def test_parties_trust_each_other(self, domain_factory):
        domain = domain_factory(3)
        uris = domain.party_uris()
        for uri in uris:
            org = domain.organisation(uri)
            for other in uris:
                if other != uri:
                    assert org.evidence_verifier.key_for(other) is not None
                    assert other in org.coordinator.known_parties()

    def test_unknown_organisation_lookup_raises(self, domain_factory):
        with pytest.raises(ProtocolError):
            domain_factory(2).organisation("urn:org:nobody")

    def test_share_object_registers_everywhere(self, domain_factory):
        domain = domain_factory(3)
        domain.share_object("doc", {"v": 0})
        for org in domain.organisations.values():
            assert org.controller.is_shared("doc")

    def test_timestamping_can_be_enabled(self):
        domain = TrustDomain.create(
            ["urn:org:a", "urn:org:b"], use_timestamping=True
        )
        assert domain.timestamp_authority is not None
        provider = deploy_quotes(domain, "urn:org:b")
        client = domain.organisation("urn:org:a")
        outcome = client.invoke_non_repudiably(provider.uri, "QuoteService", "quote", ["x"])
        token = outcome.evidence[TokenType.NRR_REQUEST.value]
        assert token.timestamp_token is not None


class TestInlineTTP:
    @pytest.fixture(scope="class")
    def ttp_domain(self):
        domain = TrustDomain.create(
            ["urn:org:party0", "urn:org:party1"], style=DeploymentStyle.INLINE_TTP
        )
        deploy_quotes(domain)
        return domain

    def test_single_ttp_created(self, ttp_domain):
        assert len(ttp_domain.ttps) == 1
        assert "urn:ttp:inline" in ttp_domain.ttps

    def test_routes_point_to_the_ttp(self, ttp_domain):
        a = ttp_domain.organisation("urn:org:party0")
        assert a.coordinator.route_for("urn:org:party1") == "urn:ttp:inline"

    def test_invocation_works_and_is_relayed(self, ttp_domain):
        client = ttp_domain.organisation("urn:org:party0")
        server = ttp_domain.organisation("urn:org:party1")
        before = ttp_domain.total_relayed_messages()
        proxy = client.nr_proxy(server, "QuoteService")
        assert proxy.quote("wheel")["price"] == 100
        assert ttp_domain.total_relayed_messages() == before + 2

    def test_ttp_notarises_relayed_messages(self, ttp_domain):
        client = ttp_domain.organisation("urn:org:party0")
        server = ttp_domain.organisation("urn:org:party1")
        outcome = client.invoke_non_repudiably(server.uri, "QuoteService", "quote", ["frame"])
        ttp = ttp_domain.ttps["urn:ttp:inline"]
        relay_tokens = ttp.evidence_store.tokens_of_type(
            outcome.run_id, TokenType.TTP_RELAY.value
        )
        assert relay_tokens, "the TTP should hold its own relay evidence"
        # The client also receives the TTP's countersignature on the response path.
        client_relay = client.evidence_store.tokens_of_type(
            outcome.run_id, TokenType.TTP_RELAY.value
        )
        server_relay = server.evidence_store.tokens_of_type(
            outcome.run_id, TokenType.TTP_RELAY.value
        )
        assert client_relay or server_relay or relay_tokens

    def test_sharing_works_through_the_ttp(self, ttp_domain):
        ttp_domain.share_object("ttp-doc", {"v": 0})
        a = ttp_domain.organisation("urn:org:party0")
        b = ttp_domain.organisation("urn:org:party1")
        outcome = a.propose_update("ttp-doc", {"v": 1})
        assert outcome.agreed
        assert b.shared_state("ttp-doc") == {"v": 1}

    def test_relay_handlers_registered_for_expected_protocols(self, ttp_domain):
        relays = ttp_domain.relays["urn:ttp:inline"]
        assert set(relays) == {NR_INVOCATION_PROTOCOL, NR_SHARING_PROTOCOL}


class TestDistributedTTP:
    @pytest.fixture(scope="class")
    def distributed_domain(self):
        domain = TrustDomain.create(
            ["urn:org:party0", "urn:org:party1"], style=DeploymentStyle.DISTRIBUTED_TTP
        )
        deploy_quotes(domain)
        return domain

    def test_one_ttp_per_party(self, distributed_domain):
        assert len(distributed_domain.ttps) == 2

    def test_each_party_routes_through_its_own_ttp(self, distributed_domain):
        a = distributed_domain.organisation("urn:org:party0")
        assert a.coordinator.route_for("urn:org:party1") == "urn:ttp:for:party0"

    def test_invocation_traverses_both_ttps(self, distributed_domain):
        client = distributed_domain.organisation("urn:org:party0")
        server = distributed_domain.organisation("urn:org:party1")
        before = distributed_domain.total_relayed_messages()
        proxy = client.nr_proxy(server, "QuoteService")
        assert proxy.quote("axle")["price"] == 100
        # Each of the two protocol messages is relayed by two TTPs.
        assert distributed_domain.total_relayed_messages() == before + 4

    def test_message_count_exceeds_direct_deployment(self, distributed_domain, direct_domain):
        direct_client = direct_domain.organisation("urn:org:party0")
        direct_server = direct_domain.organisation("urn:org:party1")
        before_direct = direct_domain.network.statistics.snapshot()
        direct_client.invoke_non_repudiably(direct_server.uri, "QuoteService", "quote", ["z"])
        direct_count = direct_domain.network.statistics.delta(before_direct).messages_sent

        client = distributed_domain.organisation("urn:org:party0")
        server = distributed_domain.organisation("urn:org:party1")
        before = distributed_domain.network.statistics.snapshot()
        client.invoke_non_repudiably(server.uri, "QuoteService", "quote", ["z"])
        distributed_count = distributed_domain.network.statistics.delta(before).messages_sent
        assert distributed_count > direct_count


class TestArbitratorInstallation:
    def test_arbitrator_reachable_by_all_parties(self):
        domain = TrustDomain.create(
            ["urn:org:a", "urn:org:b"], with_arbitrator=True
        )
        assert domain.arbitrator is not None
        assert domain.arbitrator_uri == "urn:ttp:arbitrator"
        for org in domain.organisations.values():
            assert domain.arbitrator_uri in org.coordinator.known_parties()
            assert org.evidence_verifier.key_for(domain.arbitrator_uri) is not None
