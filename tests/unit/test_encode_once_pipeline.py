"""Unit tests for the encode-once evidence pipeline.

Exercises the caching layers added across codec, crypto, messages and
transport: the keyed :class:`~repro.codec.EncodingCache` and its invalidation
contract, per-instance encoding caches on tokens and protocol messages (and
that mutation never yields a stale digest), the signature-verification memo,
CRT signing equivalence, honest ``repr`` sizing in the network statistics,
and the batched delivery fan-out.
"""

import pytest

from repro import codec
from repro.core.evidence import EvidenceBuilder, EvidenceVerifier, TokenType, payload_digest
from repro.core.messages import B2BProtocolMessage
from repro.crypto.keys import PrivateKey
from repro.crypto.signature import (
    Signer,
    clear_verification_cache,
    generate_keypair,
    get_scheme,
    verification_cache_stats,
)
from repro.errors import DeliveryError, UnknownEndpointError
from repro.transport.delivery import ReliableChannel, RetryPolicy
from repro.transport.network import (
    SIZING_CANONICAL,
    SIZING_REPR,
    Message,
    SimulatedNetwork,
)


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair("rsa", bits=1024)


@pytest.fixture()
def builder(keypair):
    return EvidenceBuilder(party="urn:test:alice", signer=Signer(keypair.private))


@pytest.fixture()
def verifier(keypair):
    verifier = EvidenceVerifier()
    verifier.pin_key("urn:test:alice", keypair.public)
    return verifier


class TestEncodingCache:
    def test_memoises_by_key(self):
        cache = codec.EncodingCache()
        first = cache.get_or_encode(("doc", 1), {"v": 1})
        again = cache.get_or_encode(("doc", 1), {"v": "ignored: key unchanged"})
        assert again is first
        assert cache.stats()["hits"] == 1

    def test_changed_key_never_serves_stale_digest(self):
        cache = codec.EncodingCache()
        state = {"balance": 100}
        old = cache.get_or_encode(("doc", 1), state)
        state["balance"] = 999  # mutation accompanied by a version bump
        new = cache.get_or_encode(("doc", 2), state)
        assert new.digest != old.digest
        assert new.digest == codec.digest_of({"balance": 999})

    def test_invalidate_forces_recomputation_after_in_place_mutation(self):
        cache = codec.EncodingCache()
        state = {"balance": 100}
        stale = cache.get_or_encode("doc", state)
        state["balance"] = 999  # mutated under the SAME key...
        cache.invalidate("doc")  # ...so the contract requires invalidation
        fresh = cache.get_or_encode("doc", state)
        assert fresh.digest != stale.digest
        assert fresh.digest == codec.digest_of(state)

    def test_lru_eviction_respects_maxsize(self):
        cache = codec.EncodingCache(maxsize=2)
        for version in range(5):
            cache.get_or_encode(("doc", version), {"v": version})
        assert len(cache) == 2
        assert cache.get(("doc", 0)) is None
        assert cache.get(("doc", 4)) is not None

    def test_encoded_snapshot_is_immune_to_source_mutation(self):
        payload = {"amount": 1}
        encoded = codec.canonicalize(payload)
        digest_before = encoded.digest
        payload["amount"] = 2
        # The snapshot keeps the canonical form taken at canonicalisation
        # time; a fresh canonicalisation sees the new value.
        assert encoded.digest == digest_before
        assert codec.canonicalize(payload).digest != digest_before


class TestTokenEncodingCaches:
    def test_body_bytes_and_data_encoded_are_stable_and_correct(self, builder):
        token = builder.build(
            token_type=TokenType.NRO_REQUEST,
            run_id="run-1",
            step=1,
            recipient="urn:test:bob",
            payload={"x": 1},
            details={"note": "hello"},
        )
        assert token.body_bytes() is token.body_bytes()
        assert token.data_encoded().data == codec.encode(token.to_dict())
        assert codec.encode(token) == token.canonical_encoded().data

    def test_payload_digest_reuses_canonical_digest(self, builder):
        payload = codec.canonicalize({"x": 1})
        token = builder.build(
            token_type=TokenType.NRO_REQUEST,
            run_id="run-1",
            step=1,
            recipient="urn:test:bob",
            payload=payload,
        )
        assert token.payload_digest == payload.digest
        assert payload_digest(payload) == payload_digest({"x": 1})


class TestMessageEncodingCache:
    def _message(self, builder, payload):
        token = builder.build(
            token_type=TokenType.NRO_REQUEST,
            run_id="run-1",
            step=1,
            recipient="urn:test:bob",
            payload=payload,
        )
        return B2BProtocolMessage(
            run_id="run-1",
            protocol="nr-invocation",
            step=1,
            sender="urn:test:alice",
            recipient="urn:test:bob",
            payload=payload,
            tokens=[token],
        )

    def test_encoded_size_is_cached(self, builder):
        message = self._message(builder, {"x": 1})
        assert message.data_encoded() is message.data_encoded()
        assert message.encoded_size() == codec.encoded_size(message.to_dict())

    def test_field_mutation_invalidates_cached_encoding(self, builder):
        message = self._message(builder, {"x": 1})
        before = message.data_encoded()
        message.recipient = "urn:test:carol"
        after = message.data_encoded()
        assert after is not before
        assert after.digest != before.digest
        assert message.encoded_size() == codec.encoded_size(message.to_dict())

    def test_spliced_payload_matches_plain_payload_encoding(self, builder):
        plain = self._message(builder, {"x": [1, 2, 3]})
        spliced = B2BProtocolMessage(
            run_id=plain.run_id,
            protocol=plain.protocol,
            step=plain.step,
            sender=plain.sender,
            recipient=plain.recipient,
            payload=codec.canonicalize({"x": [1, 2, 3]}),
            tokens=plain.tokens,
            message_id=plain.message_id,
        )
        assert spliced.data_encoded().data == plain.data_encoded().data


class TestVerificationMemo:
    def test_repeated_verification_hits_the_memo(self, builder, verifier):
        clear_verification_cache()
        token = builder.build(
            token_type=TokenType.NR_DECISION,
            run_id="run-1",
            step=2,
            recipient="urn:test:bob",
            payload={"accepted": True},
        )
        assert verifier.verify(token)
        before = verification_cache_stats()["hits"]
        for _ in range(3):
            assert verifier.verify(token)
        assert verification_cache_stats()["hits"] == before + 3

    def test_tampered_signature_fails_despite_memo(self, builder, verifier):
        token = builder.build(
            token_type=TokenType.NR_DECISION,
            run_id="run-1",
            step=2,
            recipient="urn:test:bob",
            payload={"accepted": True},
        )
        assert verifier.verify(token)
        import dataclasses

        forged_signature = dataclasses.replace(
            token.signature, value=bytes(token.signature.value[:-1]) + b"\x00"
        )
        forged = dataclasses.replace(token, signature=forged_signature)
        assert not verifier.verify(forged)

    def test_repinned_key_is_not_served_a_stale_verdict(self, builder, keypair):
        token = builder.build(
            token_type=TokenType.NR_DECISION,
            run_id="run-1",
            step=2,
            recipient="urn:test:bob",
            payload={"accepted": True},
        )
        verifier = EvidenceVerifier()
        other = generate_keypair("rsa", bits=1024)
        verifier.pin_key("urn:test:alice", other.public)
        assert not verifier.verify(token)  # wrong key -> memoised as False
        # Re-pinning the correct key must verify: the memo binds the key id,
        # so the earlier negative verdict for the wrong key is not reused.
        verifier.pin_key("urn:test:alice", keypair.public)
        assert verifier.verify(token)


class TestSetEncodingOrder:
    def test_homogeneous_sets_keep_natural_order(self):
        # Seed compatibility: numeric sets sort numerically, not textually,
        # so digests of previously-encodable sets are unchanged.
        assert codec.encode({3, 10, 2}) == b'{"__set__":[2,3,10]}'
        assert codec.encode({"b", "a"}) == b'{"__set__":["a","b"]}'

    def test_heterogeneous_sets_fall_back_to_canonical_order(self):
        # Regression: this raised TypeError in the seed.
        encoded = codec.encode({1, "a"})
        assert codec.decode(encoded) == {1, "a"}
        assert encoded == codec.encode({"a", 1})

    def test_bytes_sets_are_encodable(self):
        # Also a TypeError in the seed (jsonable bytes are dicts).
        value = {b"\x01", b"\x02"}
        assert codec.decode(codec.encode(value)) == value


class TestTokenDictIsolation:
    def test_mutating_to_dict_result_does_not_corrupt_caches(self, builder, verifier):
        token = builder.build(
            token_type=TokenType.NRO_REQUEST,
            run_id="run-1",
            step=1,
            recipient="urn:test:bob",
            payload={"x": 1},
            details={"note": "original"},
        )
        body_before = token.body_bytes()
        exported = token.to_dict()
        exported["details"]["note"] = "tampered"
        exported["signature"]["value"] = "00"
        assert token.body_bytes() == body_before
        assert token.to_dict()["details"]["note"] == "original"
        assert verifier.verify(token)


class TestVerificationMemoKeyBinding:
    def test_spoofed_key_id_cannot_poison_the_memo(self, keypair):
        from repro.crypto.hashing import secure_hash
        from repro.crypto.keys import PublicKey
        from repro.crypto.signature import Signature

        scheme = get_scheme("rsa")
        attacker = generate_keypair("rsa", bits=1024)
        message = b"the agreed payload"
        forged = Signature(
            scheme="rsa",
            key_id=keypair.public.key_id,  # declares the victim's key id
            value=scheme.sign_digest(attacker.private, secure_hash(message)),
            digest=secure_hash(message),
        )
        # The attacker presents their own key material under the victim's
        # declared key_id; verifying memoises a True verdict for it.
        spoofed_key = PublicKey(
            scheme="rsa", params=attacker.public.params, key_id=keypair.public.key_id
        )
        clear_verification_cache()
        assert scheme.verify(spoofed_key, message, forged)
        # The victim's real key must still reject: the memo binds the
        # recomputed key-material fingerprint, not the declared key_id.
        assert not scheme.verify(keypair.public, message, forged)


class TestCrtSigning:
    def test_crt_signature_matches_direct_exponentiation(self, keypair):
        scheme = get_scheme("rsa")
        digest = b"\xab" * 32
        with_crt = scheme.sign_digest(keypair.private, digest)
        stripped = PrivateKey(
            scheme="rsa",
            params={
                name: value
                for name, value in keypair.private.params.items()
                if name not in ("p", "q")
            },
            key_id=keypair.private.key_id,
        )
        without_crt = scheme.sign_digest(stripped, digest)
        assert with_crt == without_crt
        assert scheme.verify_digest(keypair.public, digest, with_crt)


class TestNetworkSizing:
    def test_canonical_payload_is_marked_canonical(self):
        message = Message("a", "b", "op", {"x": 1})
        size = message.encoded_size()
        assert message.sizing == SIZING_CANONICAL
        assert message.encoded_size() == size  # cached

    def test_repr_fallback_is_marked_and_counted(self):
        network = SimulatedNetwork()
        network.register("urn:dest", lambda message: "ok")
        network.send("urn:src", "urn:dest", "op", {"x": 1})
        assert network.statistics.messages_sized_by_repr == 0
        network.send("urn:src", "urn:dest", "op", object())  # unencodable
        assert network.statistics.messages_sized_by_repr == 1
        delta = network.statistics.delta(network.statistics.snapshot())
        assert delta.messages_sized_by_repr == 0


class TestBatchedDelivery:
    def _network(self):
        network = SimulatedNetwork()
        network.register("urn:a", lambda message: f"a:{message.payload}")
        network.register("urn:b", lambda message: f"b:{message.payload}")
        return network

    def test_batch_results_preserve_order_and_replies(self):
        network = self._network()
        results = network.send_batch(
            "urn:src", [("urn:a", "op", 1), ("urn:b", "op", 2)]
        )
        assert [outcome.result for outcome in results] == ["a:1", "b:2"]
        assert all(outcome.delivered for outcome in results)

    def test_batch_statistics_match_sequential_sends(self):
        batched = self._network()
        batched.send_batch("urn:src", [("urn:a", "op", {"v": 1}), ("urn:b", "op", {"v": 2})])
        sequential = self._network()
        sequential.send("urn:src", "urn:a", "op", {"v": 1})
        sequential.send("urn:src", "urn:b", "op", {"v": 2})
        assert batched.statistics.snapshot() == sequential.statistics.snapshot()

    def test_one_failure_does_not_mask_other_deliveries(self):
        network = self._network()
        network.set_online("urn:a", False)
        results = network.send_batch(
            "urn:src",
            [("urn:a", "op", 1), ("urn:missing", "op", 2), ("urn:b", "op", 3)],
        )
        assert isinstance(results[0].error, DeliveryError)
        assert isinstance(results[1].error, UnknownEndpointError)
        assert results[2].result == "b:3"
        assert network.statistics.messages_dropped == 2
        assert network.statistics.messages_delivered == 1

    def test_reliable_channel_batch_retries_until_delivery(self):
        network = self._network()
        network.set_online("urn:a", False)
        attempts = {"n": 0}
        original = network._admit_locked

        def flaky_admit(message):
            if message.destination == "urn:a":
                attempts["n"] += 1
                if attempts["n"] >= 3:
                    network.set_online("urn:a", True)
            return original(message)

        network._admit_locked = flaky_admit
        channel = ReliableChannel(
            network, "urn:src", RetryPolicy(max_attempts=5, backoff_seconds=0.0)
        )
        results = channel.send_batch([("urn:a", "op", 1), ("urn:b", "op", 2)])
        assert results[0].result == "a:1"
        assert results[1].result == "b:2"
        assert channel.retries_made >= 1
