"""Unit tests for non-repudiable service invocation (NR-Invocation)."""

import pytest

from repro import ComponentDescriptor, InvocationStatus, TokenType
from repro.core.invocation import (
    B2BInvocation,
    B2BInvocationHandler,
    NR_INVOCATION_PROTOCOL,
)
from repro.container.interceptor import Invocation
from repro.core.messages import B2BProtocolMessage
from repro.errors import ProtocolError, RemoteInvocationError
from tests.conftest import QuoteService


@pytest.fixture(scope="module")
def invocation_domain(direct_domain):
    return direct_domain


@pytest.fixture(scope="module")
def client(invocation_domain):
    return invocation_domain.organisation("urn:org:party0")


@pytest.fixture(scope="module")
def server(invocation_domain):
    return invocation_domain.organisation("urn:org:party1")


class TestSuccessfulInvocation:
    def test_value_is_returned(self, client, server):
        outcome = client.invoke_non_repudiably(
            server.uri, "QuoteService", "quote", ["wheel"], {"quantity": 2}
        )
        assert outcome.succeeded
        assert outcome.value == {"part": "wheel", "quantity": 2, "price": 200}
        assert outcome.status is InvocationStatus.EXECUTED

    def test_both_parties_hold_all_four_tokens(self, client, server):
        outcome = client.invoke_non_repudiably(server.uri, "QuoteService", "quote", ["door"])
        expected = {
            TokenType.NRO_REQUEST.value,
            TokenType.NRR_REQUEST.value,
            TokenType.NRO_RESPONSE.value,
            TokenType.NRR_RESPONSE.value,
        }
        client_types = {r.token_type for r in client.evidence_for_run(outcome.run_id)}
        server_types = {r.token_type for r in server.evidence_for_run(outcome.run_id)}
        assert client_types == expected
        assert server_types == expected

    def test_outcome_carries_verifiable_evidence(self, client, server, invocation_domain):
        outcome = client.invoke_non_repudiably(server.uri, "QuoteService", "quote", ["hood"])
        nrr_request = outcome.evidence[TokenType.NRR_REQUEST.value]
        nro_response = outcome.evidence[TokenType.NRO_RESPONSE.value]
        assert nrr_request.issuer == server.uri
        assert nro_response.issuer == server.uri
        assert client.evidence_verifier.verify(nrr_request)
        assert client.evidence_verifier.verify(nro_response)

    def test_audit_trails_written_on_both_sides(self, client, server):
        outcome = client.invoke_non_repudiably(server.uri, "QuoteService", "quote", ["mirror"])
        assert client.audit_records(category="nr.invocation.client", subject=outcome.run_id)
        assert server.audit_records(category="nr.invocation.server", subject=outcome.run_id)

    def test_protocol_uses_exactly_two_network_messages(self, client, server, invocation_domain):
        before = invocation_domain.network.statistics.snapshot()
        client.invoke_non_repudiably(server.uri, "QuoteService", "quote", ["bolt"])
        delta = invocation_domain.network.statistics.delta(before)
        # step 1+2 share one request/response exchange; step 3 is one more message.
        assert delta.messages_sent == 2

    def test_server_marks_run_complete_after_receipt(self, client, server):
        outcome = client.invoke_non_repudiably(server.uri, "QuoteService", "quote", ["cable"])
        run = server.server_invocation_handler.runs.get(outcome.run_id)
        assert run is not None and run.finished

    def test_distinct_invocations_have_distinct_run_ids(self, client, server):
        first = client.invoke_non_repudiably(server.uri, "QuoteService", "quote", ["a"])
        second = client.invoke_non_repudiably(server.uri, "QuoteService", "quote", ["b"])
        assert first.run_id != second.run_id


class TestFailuresAndEdgeCases:
    def test_business_exception_is_evidence_backed(self, client, server):
        outcome = client.invoke_non_repudiably(server.uri, "QuoteService", "failing_operation")
        assert outcome.status is InvocationStatus.EXECUTED
        assert outcome.exception_type == "ValueError"
        with pytest.raises(RemoteInvocationError):
            outcome.unwrap()
        # Evidence is still exchanged: the failure itself is non-repudiable.
        types = {r.token_type for r in server.evidence_for_run(outcome.run_id)}
        assert TokenType.NRO_RESPONSE.value in types

    def test_unknown_component_returns_failure_outcome(self, client, server):
        outcome = client.invoke_non_repudiably(server.uri, "NoSuchService", "anything")
        assert outcome.exception is not None

    def test_unconsumed_response_is_recorded(self, client, server):
        outcome = client.invoke_non_repudiably(
            server.uri, "QuoteService", "quote", ["panel"], consume_response=False
        )
        assert outcome.value is None
        assert not outcome.consumed
        receipts = server.evidence_store.tokens_of_type(
            outcome.run_id, TokenType.NRR_RESPONSE.value
        )
        assert receipts and receipts[0].token["details"]["consumed"] is False

    def test_at_most_once_for_retransmitted_request(self, client, server):
        service_instance = server.container.component("QuoteService").instance
        calls_before = service_instance.calls
        handler = B2BInvocationHandler.get_instance(
            "python", "direct", client.uri, client.coordinator
        )
        invocation = Invocation(component="QuoteService", method="quote", args=["axle"])
        b2b = B2BInvocation(target_party=server.uri, invocation=invocation)

        # Send the same step-1 message twice, as a lossy network might.
        services = client.coordinator.services
        request_payload = b2b.request_payload()
        from repro.crypto.rng import new_unique_id

        run_id = new_unique_id("inv")
        nro = services.evidence_builder.build(
            token_type=TokenType.NRO_REQUEST,
            run_id=run_id,
            step=1,
            recipient=server.uri,
            payload=request_payload,
        )
        message = B2BProtocolMessage(
            run_id=run_id,
            protocol=NR_INVOCATION_PROTOCOL,
            step=1,
            sender=client.uri,
            recipient=server.uri,
            payload=request_payload,
            tokens=[nro],
        )
        first = client.coordinator.request(message)
        second = client.coordinator.request(message)
        assert first.payload == second.payload
        assert service_instance.calls == calls_before + 1

    def test_forged_origin_evidence_is_rejected_without_execution(self, client, server):
        service_instance = server.container.component("QuoteService").instance
        calls_before = service_instance.calls
        services = client.coordinator.services
        from repro.crypto.rng import new_unique_id

        run_id = new_unique_id("inv")
        honest_payload = {"component": "QuoteService", "method": "quote", "args": ["cheap"],
                          "kwargs": {}, "caller": client.uri, "target_party": server.uri}
        forged_payload = dict(honest_payload, args=["expensive"])
        # Token signed over the honest payload but sent with a different payload.
        nro = services.evidence_builder.build(
            token_type=TokenType.NRO_REQUEST,
            run_id=run_id,
            step=1,
            recipient=server.uri,
            payload=honest_payload,
        )
        message = B2BProtocolMessage(
            run_id=run_id,
            protocol=NR_INVOCATION_PROTOCOL,
            step=1,
            sender=client.uri,
            recipient=server.uri,
            payload=forged_payload,
            tokens=[nro],
        )
        response = client.coordinator.request(message)
        assert response.payload["status"] == InvocationStatus.REJECTED.value
        assert service_instance.calls == calls_before

    def test_step1_without_token_raises(self, client, server):
        message = B2BProtocolMessage(
            run_id="run-x",
            protocol=NR_INVOCATION_PROTOCOL,
            step=1,
            sender=client.uri,
            recipient=server.uri,
            payload={"component": "QuoteService", "method": "quote", "args": [], "kwargs": {}},
        )
        with pytest.raises(Exception):
            client.coordinator.request(message)

    def test_receipt_for_unknown_run_rejected(self, client, server):
        services = client.coordinator.services
        token = services.evidence_builder.build(
            token_type=TokenType.NRR_RESPONSE,
            run_id="run-never-existed",
            step=3,
            recipient=server.uri,
            payload={"whatever": 1},
        )
        message = B2BProtocolMessage(
            run_id="run-never-existed",
            protocol=NR_INVOCATION_PROTOCOL,
            step=3,
            sender=client.uri,
            recipient=server.uri,
            payload={},
            tokens=[token],
        )
        with pytest.raises(Exception):
            client.coordinator.send(message)

    def test_unexpected_step_rejected_by_server_handler(self, server):
        message = B2BProtocolMessage(
            run_id="run-x",
            protocol=NR_INVOCATION_PROTOCOL,
            step=7,
            sender="urn:org:party0",
            recipient=server.uri,
            payload={},
        )
        with pytest.raises(ProtocolError):
            server.server_invocation_handler.process_request(message)
        with pytest.raises(ProtocolError):
            server.server_invocation_handler.process(message)


class TestInvocationHandlerFactory:
    def test_default_factory_resolves(self, client):
        handler = B2BInvocationHandler.get_instance(
            "python", "direct", client.uri, client.coordinator
        )
        assert isinstance(handler, B2BInvocationHandler)

    def test_unknown_platform_rejected(self, client):
        with pytest.raises(ProtocolError):
            B2BInvocationHandler.get_instance("jboss", "exotic", client.uri, client.coordinator)

    def test_custom_factory_registration(self, client):
        class CustomHandler(B2BInvocationHandler):
            pass

        B2BInvocationHandler.register_factory("test-platform", "test-protocol", CustomHandler)
        try:
            handler = B2BInvocationHandler.get_instance(
                "test-platform", "test-protocol", client.uri, client.coordinator
            )
            assert isinstance(handler, CustomHandler)
            with pytest.raises(ProtocolError):
                B2BInvocationHandler.register_factory(
                    "test-platform", "test-protocol", CustomHandler
                )
        finally:
            B2BInvocationHandler._factories.pop(("test-platform", "test-protocol"), None)

    def test_request_payload_structure(self, client, server):
        invocation = Invocation(
            component="QuoteService", method="quote", args=["x"], kwargs={"quantity": 1},
            caller=client.uri,
        )
        b2b = B2BInvocation(target_party=server.uri, invocation=invocation)
        payload = b2b.request_payload()
        assert payload["component"] == "QuoteService"
        assert payload["target_party"] == server.uri
        assert payload["caller"] == client.uri
