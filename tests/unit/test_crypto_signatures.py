"""Unit tests for the signature schemes and the scheme registry."""

import pytest

from repro.crypto.dsa import DSAScheme, generate_domain_parameters
from repro.crypto.forward_secure import (
    ForwardSecureScheme,
    _cached_context,
    current_period,
    disable_period_precompute,
    enable_period_precompute,
    evolve_key,
    period_precompute_stats,
)
from repro.crypto.hmac_scheme import HMACScheme
from repro.crypto.keys import KeyPair, PrivateKey, PublicKey
from repro.crypto.primality import generate_prime, is_probable_prime, modular_inverse
from repro.crypto.rsa import RSAScheme
from repro.crypto.signature import (
    Signature,
    Signer,
    Verifier,
    available_schemes,
    generate_keypair,
    get_scheme,
    sign_message,
    verify_message,
)
from repro.errors import KeyError_, SignatureError


class TestPrimality:
    def test_small_primes_recognised(self):
        for prime in (2, 3, 5, 7, 11, 97, 499):
            assert is_probable_prime(prime)

    def test_small_composites_rejected(self):
        for composite in (0, 1, 4, 9, 100, 561, 41041):  # includes Carmichael numbers
            assert not is_probable_prime(composite)

    def test_generated_prime_has_requested_size(self):
        prime = generate_prime(64)
        assert prime.bit_length() == 64
        assert is_probable_prime(prime)

    def test_generate_prime_rejects_tiny_sizes(self):
        with pytest.raises(ValueError):
            generate_prime(4)

    def test_modular_inverse(self):
        assert (modular_inverse(3, 11) * 3) % 11 == 1

    def test_modular_inverse_missing(self):
        with pytest.raises(ValueError):
            modular_inverse(6, 9)


class TestRSA:
    def test_sign_and_verify(self, rsa_keypair):
        scheme = RSAScheme()
        signature = scheme.sign(rsa_keypair.private, b"message")
        assert scheme.verify(rsa_keypair.public, b"message", signature)

    def test_verification_fails_for_modified_message(self, rsa_keypair):
        scheme = RSAScheme()
        signature = scheme.sign(rsa_keypair.private, b"message")
        assert not scheme.verify(rsa_keypair.public, b"other message", signature)

    def test_verification_fails_with_other_key(self, rsa_keypair, second_rsa_keypair):
        scheme = RSAScheme()
        signature = scheme.sign(rsa_keypair.private, b"message")
        assert not scheme.verify(second_rsa_keypair.public, b"message", signature)

    def test_verification_fails_for_corrupted_signature(self, rsa_keypair):
        scheme = RSAScheme()
        signature = scheme.sign(rsa_keypair.private, b"message")
        corrupted = Signature(
            scheme=signature.scheme,
            key_id=signature.key_id,
            value=bytes([signature.value[0] ^ 0xFF]) + signature.value[1:],
            digest=signature.digest,
        )
        assert not scheme.verify(rsa_keypair.public, b"message", corrupted)

    def test_key_pair_halves_share_key_id(self, rsa_keypair):
        assert rsa_keypair.private.key_id == rsa_keypair.public.key_id

    def test_minimum_modulus_enforced(self):
        with pytest.raises(SignatureError):
            RSAScheme().generate_keypair(bits=128)

    def test_small_keys_still_roundtrip(self):
        keypair = RSAScheme().generate_keypair(bits=512)
        scheme = RSAScheme()
        signature = scheme.sign(keypair.private, b"small key message")
        assert scheme.verify(keypair.public, b"small key message", signature)


class TestDSA:
    @pytest.fixture(scope="class")
    def dsa_keypair(self):
        return DSAScheme().generate_keypair(p_bits=512, q_bits=160)

    def test_sign_and_verify(self, dsa_keypair):
        scheme = DSAScheme()
        signature = scheme.sign(dsa_keypair.private, b"message")
        assert scheme.verify(dsa_keypair.public, b"message", signature)

    def test_verification_fails_for_modified_message(self, dsa_keypair):
        scheme = DSAScheme()
        signature = scheme.sign(dsa_keypair.private, b"message")
        assert not scheme.verify(dsa_keypair.public, b"tampered", signature)

    def test_domain_parameters_are_cached(self):
        first = generate_domain_parameters(512, 160)
        second = generate_domain_parameters(512, 160)
        assert first == second

    def test_domain_parameter_structure(self):
        p, q, g = generate_domain_parameters(512, 160)
        assert (p - 1) % q == 0
        assert pow(g, q, p) == 1
        assert g != 1

    def test_signature_is_deterministic_per_message(self, dsa_keypair):
        scheme = DSAScheme()
        sig_a = scheme.sign_digest(dsa_keypair.private, b"d" * 32)
        sig_b = scheme.sign_digest(dsa_keypair.private, b"d" * 32)
        assert sig_a == sig_b

    def test_malformed_signature_rejected(self, dsa_keypair):
        scheme = DSAScheme()
        assert not scheme.verify_digest(dsa_keypair.public, b"d" * 32, b"short")


class TestHMACScheme:
    def test_sign_and_verify(self):
        scheme = HMACScheme()
        keypair = scheme.generate_keypair()
        signature = scheme.sign(keypair.private, b"message")
        assert scheme.verify(keypair.public, b"message", signature)

    def test_wrong_key_rejected(self):
        scheme = HMACScheme()
        keypair = scheme.generate_keypair()
        other = scheme.generate_keypair()
        signature = scheme.sign(keypair.private, b"message")
        # A different key pair has a different key id, so verification fails.
        assert not scheme.verify(other.public, b"message", signature)

    def test_tampered_message_rejected(self):
        scheme = HMACScheme()
        keypair = scheme.generate_keypair()
        signature = scheme.sign(keypair.private, b"message")
        assert not scheme.verify(keypair.public, b"other", signature)


class TestForwardSecure:
    @pytest.fixture(scope="class")
    def fs_keypair(self):
        return ForwardSecureScheme().generate_keypair(periods=4)

    def test_sign_and_verify_in_initial_period(self, fs_keypair):
        scheme = ForwardSecureScheme()
        signature = scheme.sign(fs_keypair.private, b"period-0 message")
        assert scheme.verify(fs_keypair.public, b"period-0 message", signature)

    def test_signatures_remain_valid_after_evolution(self, fs_keypair):
        scheme = ForwardSecureScheme()
        signature = scheme.sign(fs_keypair.private, b"early evidence")
        evolved = evolve_key(fs_keypair.private)
        later = scheme.sign(evolved, b"later evidence")
        assert scheme.verify(fs_keypair.public, b"early evidence", signature)
        assert scheme.verify(fs_keypair.public, b"later evidence", later)

    def test_evolution_advances_period(self, fs_keypair):
        evolved = evolve_key(fs_keypair.private)
        assert current_period(evolved) == current_period(fs_keypair.private) + 1

    def test_evolved_key_cannot_sign_for_past_period(self, fs_keypair):
        scheme = ForwardSecureScheme()
        evolved = evolve_key(fs_keypair.private)
        early = scheme.sign(fs_keypair.private, b"x")
        late = scheme.sign(evolved, b"x")
        import json

        assert json.loads(early.value)["period"] != json.loads(late.value)["period"]

    def test_exhausted_key_refuses_to_sign(self):
        scheme = ForwardSecureScheme()
        keypair = scheme.generate_keypair(periods=1)
        evolved = evolve_key(keypair.private)
        with pytest.raises(SignatureError):
            scheme.sign(evolved, b"too late")

    def test_requires_at_least_one_period(self):
        with pytest.raises(SignatureError):
            ForwardSecureScheme().generate_keypair(periods=0)

    def test_evolve_requires_forward_secure_key(self, rsa_keypair):
        with pytest.raises(SignatureError):
            evolve_key(rsa_keypair.private)

    def test_garbage_signature_rejected(self, fs_keypair):
        scheme = ForwardSecureScheme()
        assert not scheme.verify_digest(fs_keypair.public, b"d" * 32, b"not json")


class TestForwardSecurePrecompute:
    """Offline/online split of the message-independent per-period work."""

    @pytest.fixture
    def precompute(self):
        enable_period_precompute()
        yield
        disable_period_precompute()

    def test_signature_bytes_identical_to_uncached_path(self):
        scheme = ForwardSecureScheme()
        keypair = scheme.generate_keypair(periods=4)
        digest = b"\x05" * 20
        baseline = scheme.sign_digest(keypair.private, digest)
        enable_period_precompute()
        try:
            pooled = scheme.sign_digest(keypair.private, digest)
            again = scheme.sign_digest(keypair.private, digest)  # cache hit
        finally:
            disable_period_precompute()
        # The split only relocates work: envelope, proof and the (RFC 6979
        # deterministic) inner DSA signature are bit-identical.
        assert pooled == baseline
        assert again == baseline
        assert scheme.verify_digest(keypair.public, digest, pooled)

    def test_cache_hits_after_first_signature(self, precompute):
        scheme = ForwardSecureScheme()
        keypair = scheme.generate_keypair(periods=4)
        before = period_precompute_stats()
        for _ in range(3):
            scheme.sign_digest(keypair.private, b"\x07" * 20)
        after = period_precompute_stats()
        assert after["misses"] == before["misses"] + 1
        assert after["hits"] >= before["hits"] + 2

    def test_evolve_evicts_cached_secret_and_stages_next_period(self, precompute):
        scheme = ForwardSecureScheme()
        keypair = scheme.generate_keypair(periods=4)
        digest = b"\x09" * 20
        scheme.sign_digest(keypair.private, digest)  # populate period 0
        root = keypair.private.params["root"]
        before = period_precompute_stats()
        evolved = evolve_key(keypair.private)
        # The evolved-away period's context (which held its secret) is gone.
        assert _cached_context(root, 0) is None
        assert period_precompute_stats()["evicted"] == before["evicted"] + 1
        # The next period still signs correctly (staged or rebuilt on miss).
        signature = scheme.sign_digest(evolved, digest)
        assert scheme.verify_digest(keypair.public, digest, signature)

    def test_exhausted_and_erased_periods_still_refuse(self, precompute):
        scheme = ForwardSecureScheme()
        keypair = scheme.generate_keypair(periods=1)
        evolved = evolve_key(keypair.private)
        with pytest.raises(SignatureError):
            scheme.sign(evolved, b"too late")


class TestRegistryAndHelpers:
    def test_builtin_schemes_registered(self):
        names = set(available_schemes())
        assert {"rsa", "dsa", "hmac", "forward-secure"} <= names

    def test_get_unknown_scheme_raises(self):
        with pytest.raises(SignatureError):
            get_scheme("post-quantum-magic")

    def test_generate_keypair_helper(self):
        keypair = generate_keypair("hmac")
        assert keypair.scheme == "hmac"

    def test_sign_and_verify_helpers(self, rsa_keypair):
        signature = sign_message(rsa_keypair.private, b"helper message")
        assert verify_message(rsa_keypair.public, b"helper message", signature)

    def test_verify_helper_handles_missing_signature(self, rsa_keypair):
        assert not verify_message(rsa_keypair.public, b"helper message", None)

    def test_signer_and_verifier_objects(self, rsa_keypair):
        signature = Signer(rsa_keypair.private).sign(b"object api")
        assert Verifier(rsa_keypair.public).verify(b"object api", signature)

    def test_signature_dict_roundtrip(self, rsa_keypair):
        signature = sign_message(rsa_keypair.private, b"roundtrip")
        restored = Signature.from_dict(signature.to_dict())
        assert restored == signature
        assert verify_message(rsa_keypair.public, b"roundtrip", restored)

    def test_scheme_mismatch_between_key_and_scheme(self, rsa_keypair):
        with pytest.raises(SignatureError):
            DSAScheme().sign(rsa_keypair.private, b"x")

    def test_signature_with_wrong_scheme_label_rejected(self, rsa_keypair):
        signature = sign_message(rsa_keypair.private, b"x")
        forged = Signature(
            scheme="dsa", key_id=signature.key_id, value=signature.value, digest=signature.digest
        )
        assert not verify_message(rsa_keypair.public, b"x", forged)


class TestKeyObjects:
    def test_public_key_dict_roundtrip(self, rsa_keypair):
        restored = PublicKey.from_dict(rsa_keypair.public.to_dict())
        assert restored.key_id == rsa_keypair.public.key_id
        assert restored.params["n"] == rsa_keypair.public.params["n"]

    def test_private_key_dict_roundtrip(self, rsa_keypair):
        restored = PrivateKey.from_dict(rsa_keypair.private.to_dict())
        assert restored.key_id == rsa_keypair.private.key_id

    def test_fingerprint_is_stable(self, rsa_keypair):
        clone = PublicKey(scheme="rsa", params=dict(rsa_keypair.public.params))
        assert clone.key_id == rsa_keypair.public.key_id

    def test_mismatched_keypair_rejected(self, rsa_keypair, second_rsa_keypair):
        with pytest.raises(KeyError_):
            KeyPair(private=rsa_keypair.private, public=second_rsa_keypair.public)

    def test_unsupported_param_type_rejected(self):
        with pytest.raises(KeyError_):
            PublicKey(scheme="rsa", params={"n": 3.14})
