"""Contract suite run against every storage backend, plus profile selection.

One parametrized battery asserts the :class:`StorageBackend` semantics the
stores above rely on -- bytes-only values, insertion-ordered ``keys()``,
upsert keeping position, prefix scans in key order -- identically for the
in-memory, file and SQLite backends.  A second battery covers what is
specific to the embedded-KV backend (persistence across reopen, many
logical stores sharing one database file) and the ``StorageProfile``
selector behind ``TrustDomain.create(storage=...)``.
"""

import pytest

from repro.errors import PersistenceError
from repro.persistence.sqlite_backend import SQLiteBackend
from repro.persistence.storage import (
    FileBackend,
    InMemoryBackend,
    StorageProfile,
)

BACKENDS = ["memory", "file", "sqlite"]


@pytest.fixture
def backend(request, tmp_path):
    kind = request.param
    if kind == "memory":
        yield InMemoryBackend()
    elif kind == "file":
        yield FileBackend(tmp_path / "store")
    else:
        with SQLiteBackend(tmp_path / "store.db") as db:
            yield db


@pytest.mark.parametrize("backend", BACKENDS, indirect=True)
class TestBackendContract:
    def test_put_get_delete_contains(self, backend):
        assert backend.get("k") is None
        backend.put("k", b"v")
        assert backend.get("k") == b"v"
        assert "k" in backend
        backend.delete("k")
        assert backend.get("k") is None
        assert "k" not in backend
        backend.delete("k")  # deleting a missing key is a no-op

    def test_values_must_be_bytes(self, backend):
        with pytest.raises(PersistenceError):
            backend.put("k", "not bytes")

    def test_keys_preserve_insertion_order(self, backend):
        for name in ("c", "a", "b"):
            backend.put(name, b"x")
        assert backend.keys() == ["c", "a", "b"]

    def test_upsert_keeps_position_and_replaces_value(self, backend):
        backend.put("c", b"1")
        backend.put("a", b"2")
        backend.put("c", b"3")
        assert backend.keys() == ["c", "a"]
        assert backend.get("c") == b"3"

    def test_items_iterates_pairs(self, backend):
        backend.put("a", b"1")
        backend.put("b", b"2")
        assert list(backend.items()) == [("a", b"1"), ("b", b"2")]

    def test_scan_keys_sorted_and_filtered(self, backend):
        for key in ("p:2", "q:1", "p:1", "p:10", "pz"):
            backend.put(key, b"x")
        assert backend.scan_keys("p:") == ["p:1", "p:10", "p:2"]

    def test_scan_returns_pairs_in_key_order(self, backend):
        backend.put("p:b", b"2")
        backend.put("p:a", b"1")
        backend.put("q:a", b"3")
        assert list(backend.scan("p:")) == [("p:a", b"1"), ("p:b", b"2")]

    def test_scan_empty_prefix_is_everything(self, backend):
        backend.put("b", b"2")
        backend.put("a", b"1")
        assert backend.scan_keys("") == ["a", "b"]

    def test_scan_stats_counts_and_sizes(self, backend):
        backend.put("p:a", b"12")
        backend.put("p:b", b"345")
        backend.put("q:a", b"6789")
        count, total = backend.scan_stats("p:")
        assert (count, total) == (2, 5)

    def test_scan_prefix_at_char_boundary(self, backend):
        # A prefix ending in 0xFF-adjacent characters must not leak
        # neighbouring keys (the upper scan bound increments the last char).
        backend.put("p", b"0")
        backend.put("p\x7f", b"1")
        backend.put("q", b"2")
        assert backend.scan_keys("p") == ["p", "p\x7f"]


class TestSQLiteBackend:
    def test_supports_prefix_scan_flag(self, tmp_path):
        with SQLiteBackend(tmp_path / "s.db") as db:
            assert db.supports_prefix_scan
        assert not InMemoryBackend().supports_prefix_scan

    def test_reopen_preserves_data_and_order(self, tmp_path):
        path = tmp_path / "s.db"
        with SQLiteBackend(path) as db:
            db.put("c", b"1")
            db.put("a", b"2")
        with SQLiteBackend(path) as db:
            assert db.keys() == ["c", "a"]
            assert db.get("a") == b"2"

    def test_two_handles_share_one_file(self, tmp_path):
        path = tmp_path / "s.db"
        with SQLiteBackend(path) as one, SQLiteBackend(path) as two:
            one.put("k", b"from-one")
            assert two.get("k") == b"from-one"
            two.put("k", b"from-two")
            assert one.get("k") == b"from-two"

    def test_creates_parent_directories(self, tmp_path):
        with SQLiteBackend(tmp_path / "deep" / "er" / "s.db") as db:
            db.put("k", b"v")
            assert db.get("k") == b"v"


class TestStorageProfile:
    def test_parse_memory(self):
        profile = StorageProfile.parse("memory")
        assert profile.kind == "memory"

    def test_parse_file_and_sqlite_locations(self, tmp_path):
        assert StorageProfile.parse(f"file:{tmp_path}").kind == "file"
        assert StorageProfile.parse(f"sqlite:{tmp_path}/x.db").kind == "sqlite"

    @pytest.mark.parametrize(
        "bad", ["", "postgres:db", "file", "file:", "sqlite:", "mem"]
    )
    def test_parse_rejects_unknown_profiles(self, bad):
        with pytest.raises(PersistenceError):
            StorageProfile.parse(bad)

    def test_memory_backends_are_fresh_per_store(self):
        profile = StorageProfile.parse("memory")
        a = profile.backend_for("urn:org:a", "evidence")
        b = profile.backend_for("urn:org:a", "evidence")
        a.put("k", b"v")
        assert b.get("k") is None

    def test_file_backends_are_isolated_per_owner_and_store(self, tmp_path):
        profile = StorageProfile.parse(f"file:{tmp_path}")
        a_ev = profile.backend_for("urn:org:a", "evidence")
        a_au = profile.backend_for("urn:org:a", "audit")
        b_ev = profile.backend_for("urn:org:b", "evidence")
        a_ev.put("k", b"1")
        assert a_au.get("k") is None
        assert b_ev.get("k") is None

    def test_sqlite_evidence_store_reopen_does_no_index_rebuild(self, tmp_path):
        # Non-scan backends pay an O(all records) rebuild at open: every
        # key enumerated, every record fetched and decoded.  A scan-backed
        # store must open cold and touch only what is queried.
        from repro.persistence.evidence_store import EvidenceStore

        class SpyBackend(SQLiteBackend):
            def __init__(self, path):
                super().__init__(path)
                self.keys_calls = 0
                self.get_calls = 0

            def keys(self):
                self.keys_calls += 1
                return super().keys()

            def get(self, key):
                self.get_calls += 1
                return super().get(key)

        path = tmp_path / "evidence.db"
        with SpyBackend(path) as backend:
            store = EvidenceStore(owner="urn:org:a", backend=backend)
            for run in ("run:1", "run:2"):
                for token_type in ("NRO", "NRR"):
                    store.store(run, token_type, {"body": f"{run}/{token_type}"})
        with SpyBackend(path) as backend:
            store = EvidenceStore(owner="urn:org:a", backend=backend)
            assert backend.keys_calls == 0  # no full enumeration at open
            assert backend.get_calls == 0  # no per-record fetch at open
            records = store.tokens_of_type("run:1", "NRO")
            assert [r.token["body"] for r in records] == ["run:1/NRO"]
            assert backend.keys_calls == 0  # queries scan, never enumerate

    def test_sqlite_backends_share_one_database(self, tmp_path):
        profile = StorageProfile.parse(f"sqlite:{tmp_path}/kv.db")
        a = profile.backend_for("urn:org:a", "evidence")
        b = profile.backend_for("urn:org:b", "audit")
        a.put("k", b"v")
        assert b.get("k") == b"v"  # one shared KV; key prefixes namespace it
        assert a.supports_prefix_scan
