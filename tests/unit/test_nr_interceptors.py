"""Unit tests for the client/server NR interceptors and the deployment hook."""

import pytest

from repro import ComponentDescriptor
from repro.container.interceptor import Invocation
from repro.core.nr_interceptors import (
    ClientNRInterceptor,
    ServerNRInterceptor,
    nr_interceptor_provider,
)
from repro.errors import InterceptorError
from tests.conftest import QuoteService, make_domain


@pytest.fixture(scope="module")
def domain():
    domain = make_domain(2)
    provider = domain.organisation("urn:org:party1")
    provider.deploy(
        QuoteService(),
        ComponentDescriptor(name="QuoteService", non_repudiation=True),
    )
    provider.deploy(
        QuoteService(),
        ComponentDescriptor(
            name="LocalFriendlyService",
            non_repudiation=True,
            metadata={"nr_allow_local": True},
        ),
    )
    provider.deploy(QuoteService(), ComponentDescriptor(name="OpenService"))
    return domain


@pytest.fixture(scope="module")
def client(domain):
    return domain.organisation("urn:org:party0")


@pytest.fixture(scope="module")
def server(domain):
    return domain.organisation("urn:org:party1")


class TestClientNRInterceptor:
    def test_nr_proxy_returns_business_value(self, client, server):
        proxy = client.nr_proxy(server, "QuoteService")
        assert proxy.quote("wing", quantity=4)["price"] == 400

    def test_result_context_carries_run_id(self, client, server):
        proxy = client.nr_proxy(server, "QuoteService")
        result = proxy.invoke(Invocation(component="QuoteService", method="quote", args=["nut"]))
        assert result.succeeded
        assert result.context["nr.run_id"].startswith("inv-")
        assert result.context["nr.status"] == "executed"

    def test_interceptor_short_circuits_transport(self, client, server):
        # The NR proxy's dispatcher raises if reached; a successful call
        # therefore proves the interceptor took over the invocation path.
        proxy = client.nr_proxy(server, "QuoteService")
        assert proxy.quote("rivet")["part"] == "rivet"

    def test_business_failures_surface_through_proxy(self, client, server):
        proxy = client.nr_proxy(server, "QuoteService")
        with pytest.raises(InterceptorError):
            proxy.failing_operation()

    def test_standalone_interceptor_use(self, client, server):
        interceptor = ClientNRInterceptor(
            party=client.uri,
            coordinator=client.coordinator,
            target_party=server.uri,
        )
        result = interceptor.invoke(
            Invocation(component="QuoteService", method="quote", args=["bolt"]),
            next_interceptor=lambda inv: pytest.fail("chain should not continue"),
        )
        assert result.value["part"] == "bolt"


class TestServerNRInterceptor:
    def test_plain_invocation_on_protected_component_rejected(self, client, server):
        plain = client.plain_proxy(server, "QuoteService")
        with pytest.raises(InterceptorError, match="requires non-repudiable"):
            plain.quote("sneaky")

    def test_plain_invocation_on_open_component_allowed(self, client, server):
        plain = client.plain_proxy(server, "OpenService")
        assert plain.quote("open")["part"] == "open"

    def test_local_calls_allowed_when_descriptor_permits(self, server):
        result = server.container.dispatch(
            Invocation(
                component="LocalFriendlyService",
                method="quote",
                args=["internal"],
                context={"nr.local": True},
            )
        )
        assert result.succeeded

    def test_local_calls_rejected_without_permission(self, server):
        result = server.container.dispatch(
            Invocation(
                component="QuoteService",
                method="quote",
                args=["internal"],
                context={"nr.local": True},
            )
        )
        assert not result.succeeded

    def test_dispatch_audited_per_run(self, client, server):
        proxy = client.nr_proxy(server, "QuoteService")
        result = proxy.invoke(Invocation(component="QuoteService", method="quote", args=["pin"]))
        run_id = result.context["nr.run_id"]
        records = server.audit_records(category="nr.invocation.dispatch", subject=run_id)
        assert len(records) == 1
        assert records[0].details["method"] == "quote"

    def test_direct_interceptor_rejects_without_run_context(self):
        interceptor = ServerNRInterceptor(party="urn:org:x", component_name="Svc")
        result = interceptor.invoke(
            Invocation(component="Svc", method="op"),
            next_interceptor=lambda inv: pytest.fail("must not be called"),
        )
        assert not result.succeeded
        assert "non-repudiable" in result.exception


class TestProvider:
    def test_provider_only_applies_to_nr_components(self, server):
        provider = nr_interceptor_provider("urn:org:x")
        nr_descriptor = ComponentDescriptor(name="A", non_repudiation=True)
        plain_descriptor = ComponentDescriptor(name="B")
        assert provider(server.container, nr_descriptor) is not None
        assert provider(server.container, plain_descriptor) is None

    def test_provider_respects_allow_local_metadata(self, server):
        provider = nr_interceptor_provider("urn:org:x")
        descriptor = ComponentDescriptor(
            name="A", non_repudiation=True, metadata={"nr_allow_local": True}
        )
        interceptor = provider(server.container, descriptor)
        result = interceptor.invoke(
            Invocation(component="A", method="op", context={"nr.local": True}),
            next_interceptor=lambda inv: __import__(
                "repro.container.interceptor", fromlist=["InvocationResult"]
            ).InvocationResult(value="ran"),
        )
        assert result.value == "ran"
