"""Unit tests for the lazy per-peer channel manager."""

import threading

import pytest

from repro.clock import SimulatedClock
from repro.errors import ProtocolError
from repro.peering import (
    AUDIT_CATEGORY_PEERING,
    EVICT_EXPLICIT,
    EVICT_IDLE,
    EVICT_LRU,
    PeerChannelManager,
    PeeringPolicy,
)
from repro.persistence.audit_log import AuditLog


class Resolver:
    """Counts resolutions; endpoint defaults to the party name itself."""

    def __init__(self, endpoint_for=None):
        self.calls = []
        self.endpoint_for = endpoint_for or (lambda party: f"endpoint:{party}")
        self.gate = None  # optionally block resolutions to force overlap

    def __call__(self, party):
        if self.gate is not None:
            self.gate.wait()
        self.calls.append(party)
        return self.endpoint_for(party)


class TestPolicy:
    def test_rejects_zero_cap(self):
        with pytest.raises(ProtocolError, match="cap must be >= 1"):
            PeeringPolicy(max_live_channels=0)

    def test_rejects_non_positive_idle_timeout(self):
        with pytest.raises(ProtocolError, match="idle timeout must be positive"):
            PeeringPolicy(idle_timeout_seconds=0)


class TestLazyCreation:
    def test_channel_created_on_first_touch_only(self):
        resolver = Resolver()
        manager = PeerChannelManager(resolver)
        assert manager.live_channels() == 0
        assert resolver.calls == []
        endpoint = manager.resolve("urn:p:1")
        assert endpoint == "endpoint:urn:p:1"
        assert resolver.calls == ["urn:p:1"]
        # a second touch reuses the channel, no second resolution
        assert manager.resolve("urn:p:1") == endpoint
        assert resolver.calls == ["urn:p:1"]
        assert manager.stats.created == 1
        assert manager.stats.touches == 2

    def test_resolver_failure_leaves_no_channel(self):
        def failing(party):
            raise RuntimeError("introduction refused")

        manager = PeerChannelManager(failing)
        with pytest.raises(RuntimeError):
            manager.resolve("urn:p:1")
        assert manager.live_channels() == 0
        # the failed creation does not wedge later touches
        ok = PeerChannelManager(Resolver())
        assert ok.resolve("urn:p:1")

    def test_concurrent_touches_of_one_peer_resolve_once(self):
        resolver = Resolver()
        resolver.gate = threading.Event()
        manager = PeerChannelManager(resolver)
        results = []
        threads = [
            threading.Thread(target=lambda: results.append(manager.resolve("urn:p:1")))
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        resolver.gate.set()
        for t in threads:
            t.join()
        assert results == ["endpoint:urn:p:1"] * 8
        assert resolver.calls == ["urn:p:1"]
        assert manager.stats.created == 1


class TestCapEviction:
    def test_lru_eviction_over_cap(self):
        manager = PeerChannelManager(
            Resolver(), policy=PeeringPolicy(max_live_channels=2)
        )
        manager.resolve("urn:p:1")
        manager.resolve("urn:p:2")
        manager.resolve("urn:p:1")  # p1 becomes most-recent
        manager.resolve("urn:p:3")  # evicts p2, the LRU victim
        assert sorted(manager.live_parties()) == ["urn:p:1", "urn:p:3"]
        assert manager.stats.evictions == {EVICT_LRU: 1}
        assert manager.stats.peak_live == 2

    def test_eviction_then_reuse_recreates(self):
        resolver = Resolver()
        manager = PeerChannelManager(
            resolver, policy=PeeringPolicy(max_live_channels=1)
        )
        manager.resolve("urn:p:1")
        manager.resolve("urn:p:2")  # evicts p1
        assert manager.resolve("urn:p:1") == "endpoint:urn:p:1"  # recreated
        assert resolver.calls == ["urn:p:1", "urn:p:2", "urn:p:1"]
        assert manager.stats.created == 3
        assert manager.stats.recreated == 1

    def test_cap_enforced_under_concurrent_touch(self):
        manager = PeerChannelManager(
            Resolver(), policy=PeeringPolicy(max_live_channels=4)
        )
        errors = []

        def worker(index):
            try:
                for round_ in range(20):
                    manager.resolve(f"urn:p:{(index + round_) % 12}")
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert manager.live_channels() <= 4
        assert manager.stats.peak_live <= 4
        assert manager.stats.evicted >= 8  # 12 distinct peers through a cap of 4

    def test_on_evict_reports_endpoint_unused_with_refcounts(self):
        # Two parties share one endpoint: evicting the first must not
        # release the endpoint, evicting the second must.
        events = []
        manager = PeerChannelManager(
            Resolver(endpoint_for=lambda party: "shared"),
            on_evict=lambda ch, reason, unused: events.append((ch.party, unused)),
        )
        manager.resolve("urn:p:1")
        manager.resolve("urn:p:2")
        manager.evict("urn:p:1")
        manager.evict("urn:p:2")
        assert events == [("urn:p:1", False), ("urn:p:2", True)]


class TestIdleEviction:
    def test_idle_channels_swept_on_touch(self):
        clock = SimulatedClock()
        manager = PeerChannelManager(
            Resolver(),
            policy=PeeringPolicy(idle_timeout_seconds=10.0),
            clock=clock,
        )
        manager.resolve("urn:p:1")
        clock.advance(11.0)
        manager.resolve("urn:p:2")  # the touch sweeps the stale p1
        assert manager.live_parties() == ["urn:p:2"]
        assert manager.stats.evictions == {EVICT_IDLE: 1}

    def test_evict_idle_is_explicit_and_returns_victims(self):
        clock = SimulatedClock()
        manager = PeerChannelManager(
            Resolver(),
            policy=PeeringPolicy(idle_timeout_seconds=5.0),
            clock=clock,
        )
        manager.resolve("urn:p:1")
        clock.advance(2.0)
        manager.resolve("urn:p:2")
        clock.advance(4.0)  # p1 idle 6s > 5s, p2 idle 4s < 5s
        assert manager.evict_idle() == ["urn:p:1"]
        assert manager.live_parties() == ["urn:p:2"]

    def test_fresh_touch_defers_idle_eviction(self):
        clock = SimulatedClock()
        manager = PeerChannelManager(
            Resolver(),
            policy=PeeringPolicy(idle_timeout_seconds=10.0),
            clock=clock,
        )
        manager.resolve("urn:p:1")
        clock.advance(9.0)
        manager.resolve("urn:p:1")  # refreshes last_activity
        clock.advance(9.0)
        assert manager.evict_idle() == []
        assert manager.live_parties() == ["urn:p:1"]


class TestAuditAndClose:
    def test_evictions_are_audited(self):
        audit = AuditLog(owner="urn:p:node")
        manager = PeerChannelManager(
            Resolver(), policy=PeeringPolicy(max_live_channels=1)
        )
        manager.attach_audit_log(audit)
        manager.resolve("urn:p:1")
        manager.resolve("urn:p:2")
        records = audit.records(category=AUDIT_CATEGORY_PEERING)
        assert len(records) == 1
        assert records[0].subject == "urn:p:1"
        assert records[0].details["event"] == "peer-channel-evicted"
        assert records[0].details["reason"] == EVICT_LRU
        assert audit.verify_integrity()

    def test_close_evicts_everything(self):
        manager = PeerChannelManager(Resolver())
        for i in range(5):
            manager.resolve(f"urn:p:{i}")
        manager.close()
        assert manager.live_channels() == 0
        assert manager.stats.evictions == {EVICT_EXPLICIT: 5}

    def test_evict_unknown_party_is_false(self):
        manager = PeerChannelManager(Resolver())
        assert manager.evict("urn:p:ghost") is False
