"""Unit tests for contract monitoring and transactional sharing (paper §6)."""

import pytest

from repro import CallableValidator, ContractFSM, ContractMonitor, ContractValidator
from repro.core.transactions import (
    SharedStateTransaction,
    TransactionManager,
    TransactionStatus,
)
from repro.core.validators import ValidationContext
from repro.errors import (
    ContractError,
    ContractViolationError,
    TransactionAbortedError,
    TransactionError,
)
from tests.conftest import make_domain


def build_procurement_contract():
    """Simple negotiation contract: draft -> offered -> accepted/rejected."""
    fsm = ContractFSM("procurement", initial_state="draft", final_states={"closed"})
    fsm.add_transition("draft", "offer", "offered")
    fsm.add_transition("offered", "counter-offer", "offered")
    fsm.add_transition("offered", "accept", "accepted")
    fsm.add_transition("offered", "reject", "rejected")
    fsm.add_transition("accepted", "close", "closed")
    fsm.add_transition("rejected", "close", "closed")
    return fsm


class TestContractFSM:
    def test_legal_transition_lookup(self):
        fsm = build_procurement_contract()
        assert fsm.next_state("draft", "offer") == "offered"
        assert fsm.next_state("draft", "accept") is None
        assert fsm.is_event_legal("offered", "accept")

    def test_guarded_transition(self):
        fsm = ContractFSM("guarded", initial_state="open", final_states={"done"})
        fsm.add_transition(
            "open", "purchase", "done", guard=lambda attrs: attrs.get("amount", 0) <= 100
        )
        assert fsm.next_state("open", "purchase", {"amount": 50}) == "done"
        assert fsm.next_state("open", "purchase", {"amount": 500}) is None

    def test_verify_detects_unreachable_states(self):
        fsm = ContractFSM("broken", initial_state="start", final_states={"end"})
        fsm.add_transition("start", "go", "end")
        fsm.add_state("island")
        with pytest.raises(ContractError, match="unreachable"):
            fsm.verify()

    def test_verify_detects_deadlocks(self):
        fsm = ContractFSM("deadlocked", initial_state="start", final_states=set())
        fsm.add_transition("start", "go", "stuck")
        with pytest.raises(ContractError, match="deadlock"):
            fsm.verify()

    def test_well_formed_contract_verifies(self):
        build_procurement_contract().verify()

    def test_transitions_from(self):
        fsm = build_procurement_contract()
        events = {t.event for t in fsm.transitions_from("offered")}
        assert events == {"counter-offer", "accept", "reject"}


class TestContractMonitor:
    def test_legal_events_advance_state(self):
        monitor = ContractMonitor(build_procurement_contract())
        monitor.observe("offer", actor="urn:org:a")
        monitor.observe("accept", actor="urn:org:b")
        assert monitor.current_state == "accepted"
        assert not monitor.is_complete()
        monitor.observe("close", actor="urn:org:a")
        assert monitor.is_complete()
        assert len(monitor.history) == 3
        assert monitor.violations == []

    def test_illegal_event_recorded_as_violation(self):
        monitor = ContractMonitor(build_procurement_contract())
        record = monitor.observe("accept", actor="urn:org:b")
        assert not record.legal
        assert monitor.current_state == "draft"
        assert len(monitor.violations) == 1

    def test_strict_mode_raises_on_violation(self):
        monitor = ContractMonitor(build_procurement_contract(), strict=True)
        with pytest.raises(ContractViolationError):
            monitor.observe("accept", actor="urn:org:b")


class TestContractValidator:
    def _context(self, proposed_state):
        return ValidationContext(
            object_id="negotiation",
            proposer="urn:org:a",
            current_state={"phase": "draft"},
            proposed_state=proposed_state,
            base_version=0,
        )

    @staticmethod
    def _extract_event(context):
        return context.proposed_state.get("event")

    def test_compliant_update_accepted_and_advances_contract(self):
        monitor = ContractMonitor(build_procurement_contract())
        validator = ContractValidator(monitor, self._extract_event)
        decision = validator.validate(self._context({"event": "offer", "price": 100}))
        assert decision.accepted
        assert monitor.current_state == "offered"

    def test_non_compliant_update_rejected(self):
        monitor = ContractMonitor(build_procurement_contract())
        validator = ContractValidator(monitor, self._extract_event)
        decision = validator.validate(self._context({"event": "accept"}))
        assert not decision.accepted
        assert "not permitted" in decision.reason
        assert monitor.current_state == "draft"

    def test_updates_without_event_pass_through(self):
        monitor = ContractMonitor(build_procurement_contract())
        validator = ContractValidator(monitor, self._extract_event)
        assert validator.validate(self._context({"note": "typo fix"})).accepted

    def test_contract_validator_in_a_sharing_group(self):
        domain = make_domain(2)
        a = domain.organisation("urn:org:party0")
        b = domain.organisation("urn:org:party1")
        fsm = build_procurement_contract()
        # Each party monitors the contract independently.
        validators = {
            org.uri: ContractValidator(ContractMonitor(fsm), self._extract_event)
            for org in (a, b)
        }
        for org in (a, b):
            org.share_object(
                "negotiation", {"event": None, "terms": {}}, domain.party_uris(),
                validators=[validators[org.uri]],
            )
        assert a.propose_update("negotiation", {"event": "offer", "terms": {"price": 10}}).agreed
        # Skipping ahead to "close" violates the contract and is vetoed by B.
        outcome = a.propose_update("negotiation", {"event": "close", "terms": {}})
        assert not outcome.agreed
        assert a.shared_state("negotiation")["event"] == "offer"


class TestSharedStateTransaction:
    @pytest.fixture
    def tx_domain(self):
        domain = make_domain(2)
        domain.share_object("orders", {"items": []})
        domain.share_object("schedule", {"deliveries": []})
        return domain

    def test_commit_applies_all_staged_updates(self, tx_domain):
        a = tx_domain.organisation("urn:org:party0")
        b = tx_domain.organisation("urn:org:party1")
        manager = TransactionManager(a.controller)
        tx = manager.begin()
        tx.stage_update("orders", {"items": ["chassis"]})
        tx.stage_update("schedule", {"deliveries": ["week-12"]})
        report = tx.commit()
        assert report.status is TransactionStatus.COMMITTED
        assert tx.status is TransactionStatus.COMMITTED
        assert b.shared_state("orders") == {"items": ["chassis"]}
        assert b.shared_state("schedule") == {"deliveries": ["week-12"]}

    def test_veto_rolls_back_earlier_updates(self, tx_domain):
        a = tx_domain.organisation("urn:org:party0")
        b = tx_domain.organisation("urn:org:party1")
        # B accepts order changes but vetoes any schedule change.
        b.controller.add_validator(
            "schedule", CallableValidator(lambda ctx: False, name="no-schedule-change")
        )
        tx = SharedStateTransaction(a.controller)
        tx.stage_update("orders", {"items": ["chassis"]})
        tx.stage_update("schedule", {"deliveries": ["week-12"]})
        with pytest.raises(TransactionAbortedError) as excinfo:
            tx.commit()
        report = excinfo.value.report
        assert report.status is TransactionStatus.ROLLED_BACK
        # The first update was compensated: both parties are back to the original state.
        assert a.shared_state("orders") == {"items": []}
        assert b.shared_state("orders") == {"items": []}
        assert b.shared_state("schedule") == {"deliveries": []}
        assert "orders" in report.compensations

    def test_stage_change_uses_mutator(self, tx_domain):
        a = tx_domain.organisation("urn:org:party0")
        tx = SharedStateTransaction(a.controller)
        tx.stage_change("orders", lambda state: {"items": state["items"] + ["wheel"]})
        report = tx.commit()
        assert report.outcomes["orders"].agreed
        assert a.shared_state("orders") == {"items": ["wheel"]}

    def test_unknown_object_rejected_at_staging(self, tx_domain):
        a = tx_domain.organisation("urn:org:party0")
        tx = SharedStateTransaction(a.controller)
        with pytest.raises(TransactionError):
            tx.stage_update("not-shared", {})

    def test_completed_transaction_cannot_be_reused(self, tx_domain):
        a = tx_domain.organisation("urn:org:party0")
        tx = SharedStateTransaction(a.controller)
        tx.stage_update("orders", {"items": ["x"]})
        tx.commit()
        with pytest.raises(TransactionError):
            tx.stage_update("orders", {"items": ["y"]})
        with pytest.raises(TransactionError):
            tx.commit()

    def test_rollback_discards_staged_updates(self, tx_domain):
        a = tx_domain.organisation("urn:org:party0")
        b = tx_domain.organisation("urn:org:party1")
        tx = SharedStateTransaction(a.controller)
        tx.stage_update("orders", {"items": ["never-applied"]})
        report = tx.rollback()
        assert report.status is TransactionStatus.ROLLED_BACK
        assert b.shared_state("orders") == {"items": []}

    def test_manager_tracks_transactions(self, tx_domain):
        a = tx_domain.organisation("urn:org:party0")
        manager = TransactionManager(a.controller)
        tx = manager.begin()
        assert manager.get(tx.transaction_id) is tx
        assert manager.active_transactions() == [tx]
        tx.rollback()
        assert manager.active_transactions() == []
        with pytest.raises(TransactionError):
            manager.get("tx-unknown")

    def test_staged_object_ids_listed(self, tx_domain):
        a = tx_domain.organisation("urn:org:party0")
        tx = SharedStateTransaction(a.controller)
        tx.stage_update("orders", {"items": []})
        tx.stage_update("schedule", {"deliveries": []})
        assert tx.staged_object_ids() == ["orders", "schedule"]
