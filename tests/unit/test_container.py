"""Unit tests for the component container substrate."""

import pytest

from repro.access.policy import AccessPolicy
from repro.access.roles import RoleActivationRule, RoleManager
from repro.access.credentials import CredentialIssuer
from repro.container.component import Component, ComponentDescriptor, ComponentType
from repro.container.container import Container
from repro.container.interceptor import (
    Interceptor,
    InterceptorChain,
    Invocation,
    InvocationResult,
    business_method_handler,
)
from repro.container.naming import NamingContext
from repro.container.proxy import ClientProxy
from repro.container.services import (
    AccessControlInterceptor,
    CallStatisticsInterceptor,
    LoggingInterceptor,
)
from repro.errors import (
    DeploymentError,
    InterceptorError,
    NoSuchComponentError,
)
from repro.persistence.audit_log import AuditLog
from repro.transport.network import SimulatedNetwork
from repro.transport.rmi import RemoteInvoker


class Greeter:
    def greet(self, name):
        return f"hello {name}"

    def fail(self):
        raise RuntimeError("boom")


class TestComponentDescriptor:
    def test_requires_name(self):
        with pytest.raises(DeploymentError):
            ComponentDescriptor(name="")

    def test_b2b_object_must_be_entity(self):
        with pytest.raises(DeploymentError):
            ComponentDescriptor(name="x", b2b_object=True, component_type=ComponentType.SESSION)
        ComponentDescriptor(name="x", b2b_object=True, component_type=ComponentType.ENTITY)

    def test_dict_roundtrip(self):
        descriptor = ComponentDescriptor(
            name="Svc",
            non_repudiation=True,
            nr_protocol="direct",
            validators=["v1"],
            rollup_methods=["do_all"],
            metadata={"key": "value"},
        )
        restored = ComponentDescriptor.from_dict(descriptor.to_dict())
        assert restored == descriptor


class TestComponent:
    def test_business_methods_listed(self):
        component = Component(ComponentDescriptor(name="Greeter"), Greeter())
        assert "greet" in component.business_methods()
        assert all(not m.startswith("_") for m in component.business_methods())

    def test_invoke_business_method(self):
        component = Component(ComponentDescriptor(name="Greeter"), Greeter())
        assert component.invoke_business_method("greet", ["world"]) == "hello world"

    def test_unknown_method_raises(self):
        component = Component(ComponentDescriptor(name="Greeter"), Greeter())
        with pytest.raises(DeploymentError):
            component.invoke_business_method("does_not_exist")


class RecordingInterceptor(Interceptor):
    def __init__(self, label, log):
        self._label = label
        self._log = log

    def invoke(self, invocation, next_interceptor):
        self._log.append(f"{self._label}:before")
        result = next_interceptor(invocation)
        self._log.append(f"{self._label}:after")
        return result


class ShortCircuitInterceptor(Interceptor):
    def invoke(self, invocation, next_interceptor):
        return InvocationResult(value="short-circuited")


class TestInterceptorChain:
    def test_order_is_preserved(self):
        log = []
        chain = InterceptorChain(
            interceptors=[RecordingInterceptor("a", log), RecordingInterceptor("b", log)],
            final_handler=lambda inv: InvocationResult(value="done"),
        )
        result = chain.invoke(Invocation(component="X", method="m"))
        assert result.value == "done"
        assert log == ["a:before", "b:before", "b:after", "a:after"]

    def test_add_first_prepends(self):
        log = []
        chain = InterceptorChain(
            interceptors=[RecordingInterceptor("late", log)],
            final_handler=lambda inv: InvocationResult(value=None),
        )
        chain.add_first(RecordingInterceptor("first", log))
        chain.invoke(Invocation(component="X", method="m"))
        assert log[0] == "first:before"

    def test_short_circuit_skips_rest(self):
        log = []
        chain = InterceptorChain(
            interceptors=[ShortCircuitInterceptor(), RecordingInterceptor("never", log)],
            final_handler=lambda inv: InvocationResult(value="done"),
        )
        result = chain.invoke(Invocation(component="X", method="m"))
        assert result.value == "short-circuited"
        assert log == []

    def test_missing_final_handler_raises(self):
        chain = InterceptorChain()
        with pytest.raises(InterceptorError):
            chain.invoke(Invocation(component="X", method="m"))

    def test_business_method_handler_captures_exceptions(self):
        component = Component(ComponentDescriptor(name="Greeter"), Greeter())
        handler = business_method_handler(component)
        result = handler(Invocation(component="Greeter", method="fail"))
        assert not result.succeeded
        assert result.exception_type == "RuntimeError"
        with pytest.raises(InterceptorError):
            result.unwrap()

    def test_invocation_copy_is_independent(self):
        invocation = Invocation(component="X", method="m", args=[1], context={"a": 1})
        clone = invocation.copy()
        clone.args.append(2)
        clone.context["b"] = 2
        assert invocation.args == [1]
        assert invocation.context == {"a": 1}


class TestNamingContext:
    def test_bind_lookup_unbind(self):
        naming = NamingContext()
        naming.bind("services/quotes", "object")
        assert naming.lookup("services/quotes") == "object"
        naming.unbind("services/quotes")
        assert naming.lookup_optional("services/quotes") is None

    def test_duplicate_bind_rejected(self):
        naming = NamingContext()
        naming.bind("a", 1)
        with pytest.raises(ValueError):
            naming.bind("a", 2)
        naming.rebind("a", 2)
        assert naming.lookup("a") == 2

    def test_missing_lookup_raises(self):
        with pytest.raises(NoSuchComponentError):
            NamingContext().lookup("missing")

    def test_subcontext_shares_bindings(self):
        naming = NamingContext()
        sub = naming.subcontext("components")
        sub.bind("svc", "x")
        assert naming.lookup("components/svc") == "x"
        assert naming.names("components") == ["components/svc"]

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            NamingContext().bind("", 1)


class TestContainer:
    def test_deploy_and_dispatch(self):
        container = Container("orgA")
        container.deploy(Greeter(), ComponentDescriptor(name="Greeter"))
        result = container.dispatch(Invocation(component="Greeter", method="greet", args=["x"]))
        assert result.value == "hello x"

    def test_duplicate_deployment_rejected(self):
        container = Container("orgA")
        container.deploy(Greeter(), ComponentDescriptor(name="Greeter"))
        with pytest.raises(DeploymentError):
            container.deploy(Greeter(), ComponentDescriptor(name="Greeter"))

    def test_dispatch_to_unknown_component_raises(self):
        with pytest.raises(NoSuchComponentError):
            Container("orgA").dispatch(Invocation(component="Nope", method="m"))

    def test_undeploy(self):
        container = Container("orgA")
        container.deploy(Greeter(), ComponentDescriptor(name="Greeter"))
        container.undeploy("Greeter")
        assert not container.has_component("Greeter")

    def test_named_interceptor_from_descriptor(self):
        log = []
        container = Container("orgA")
        container.register_interceptor("recorder", RecordingInterceptor("r", log))
        container.deploy(
            Greeter(), ComponentDescriptor(name="Greeter", interceptors=["recorder"])
        )
        container.dispatch(Invocation(component="Greeter", method="greet", args=["x"]))
        assert log == ["r:before", "r:after"]

    def test_unknown_named_interceptor_rejected(self):
        container = Container("orgA")
        with pytest.raises(DeploymentError):
            container.deploy(
                Greeter(), ComponentDescriptor(name="Greeter", interceptors=["nope"])
            )

    def test_default_interceptors_apply_to_later_deployments(self):
        log = []
        container = Container("orgA")
        container.add_default_interceptor(RecordingInterceptor("default", log))
        container.deploy(Greeter(), ComponentDescriptor(name="Greeter"))
        container.dispatch(Invocation(component="Greeter", method="greet", args=["x"]))
        assert log == ["default:before", "default:after"]

    def test_interceptor_provider_contributes_head_interceptor(self):
        log = []

        def provider(container, descriptor):
            if descriptor.metadata.get("record"):
                return RecordingInterceptor("provided", log)
            return None

        container = Container("orgA")
        container.add_default_interceptor(RecordingInterceptor("default", log))
        container.add_interceptor_provider(provider)
        container.deploy(
            Greeter(), ComponentDescriptor(name="Greeter", metadata={"record": True})
        )
        container.dispatch(Invocation(component="Greeter", method="greet", args=["x"]))
        # Provider-contributed interceptor runs before the defaults (head of chain).
        assert log[0] == "provided:before"

    def test_local_proxy_roundtrip(self):
        container = Container("orgA")
        container.deploy(Greeter(), ComponentDescriptor(name="Greeter"))
        proxy = container.create_local_proxy("Greeter", caller="urn:user")
        assert proxy.greet("local") == "hello local"

    def test_local_proxy_for_unknown_component_fails_fast(self):
        with pytest.raises(NoSuchComponentError):
            Container("orgA").create_local_proxy("Nope")

    def test_remote_proxy_roundtrip_over_network(self):
        network = SimulatedNetwork()
        server = Container("orgB", network=network, address="urn:org:b")
        server.deploy(Greeter(), ComponentDescriptor(name="Greeter"))
        client_invoker = RemoteInvoker(network, "urn:org:a")
        proxy = server.create_remote_proxy(client_invoker, "Greeter", caller="urn:org:a")
        assert proxy.greet("remote") == "hello remote"
        assert network.statistics.messages_sent == 1

    def test_remote_business_exception_propagates(self):
        network = SimulatedNetwork()
        server = Container("orgB", network=network, address="urn:org:b")
        server.deploy(Greeter(), ComponentDescriptor(name="Greeter"))
        client_invoker = RemoteInvoker(network, "urn:org:a")
        proxy = server.create_remote_proxy(client_invoker, "Greeter")
        with pytest.raises(InterceptorError, match="RuntimeError"):
            proxy.fail()

    def test_naming_records_deployments(self):
        container = Container("orgA")
        container.deploy(Greeter(), ComponentDescriptor(name="Greeter"))
        assert container.naming.lookup("components/Greeter").name == "Greeter"


class TestContainerServices:
    def test_logging_interceptor_writes_audit_records(self):
        audit = AuditLog("urn:org:a")
        container = Container("orgA")
        container.add_default_interceptor(LoggingInterceptor(audit))
        container.deploy(Greeter(), ComponentDescriptor(name="Greeter"))
        container.dispatch(Invocation(component="Greeter", method="greet", args=["x"]))
        records = audit.records(category="container.invocation")
        assert len(records) == 1
        assert records[0].details["method"] == "greet"
        assert records[0].details["succeeded"] is True

    def test_call_statistics_interceptor_counts(self):
        stats = CallStatisticsInterceptor()
        container = Container("orgA")
        container.add_default_interceptor(stats)
        container.deploy(Greeter(), ComponentDescriptor(name="Greeter"))
        container.dispatch(Invocation(component="Greeter", method="greet", args=["x"]))
        container.dispatch(Invocation(component="Greeter", method="fail"))
        recorded = stats.statistics_for("Greeter")
        assert recorded.calls == 2
        assert recorded.failures == 1
        assert recorded.per_method == {"greet": 1, "fail": 1}
        assert stats.total_calls() == 2

    def test_access_control_interceptor_denies_without_role(self):
        issuer = CredentialIssuer("urn:issuer")
        manager = RoleManager()
        manager.trust_issuer(issuer.name, issuer.public_key)
        manager.add_rule(RoleActivationRule(role="caller", required_attributes={"ok": True}))
        policy = AccessPolicy("urn:org:a")
        policy.permit("caller", "Greeter", "*")

        container = Container("orgA")
        container.add_default_interceptor(AccessControlInterceptor(policy, manager))
        container.deploy(Greeter(), ComponentDescriptor(name="Greeter"))

        denied = container.dispatch(
            Invocation(component="Greeter", method="greet", args=["x"], caller="urn:org:b")
        )
        assert not denied.succeeded
        assert denied.exception_type == "AccessDeniedError"

        manager.present_credential(issuer.issue("urn:org:b", {"ok": True}))
        allowed = container.dispatch(
            Invocation(component="Greeter", method="greet", args=["x"], caller="urn:org:b")
        )
        assert allowed.value == "hello x"


class TestClientProxy:
    def test_proxy_unwraps_failures(self):
        proxy = ClientProxy(
            "X",
            dispatcher=lambda inv: InvocationResult(exception="nope", exception_type="ValueError"),
        )
        with pytest.raises(InterceptorError):
            proxy.some_method()

    def test_proxy_passes_arguments(self):
        captured = {}

        def dispatcher(invocation):
            captured["invocation"] = invocation
            return InvocationResult(value="ok")

        proxy = ClientProxy("X", dispatcher=dispatcher, caller="urn:me")
        proxy.do_something(1, key="value")
        invocation = captured["invocation"]
        assert invocation.method == "do_something"
        assert invocation.args == [1]
        assert invocation.kwargs == {"key": "value"}
        assert invocation.caller == "urn:me"

    def test_underscore_attributes_raise(self):
        proxy = ClientProxy("X", dispatcher=lambda inv: InvocationResult(value=None))
        with pytest.raises(AttributeError):
            proxy._hidden  # noqa: B018
