"""Unit tests for certificate management and time-stamping."""

import pytest

from repro.clock import SimulatedClock
from repro.crypto.certificates import (
    Certificate,
    CertificateAuthority,
    CertificateStore,
    RevocationList,
)
from repro.crypto.signature import get_scheme
from repro.crypto.timestamp import TimestampAuthority, verify_timestamp
from repro.errors import CertificateError, TimestampError


@pytest.fixture(scope="module")
def ca():
    return CertificateAuthority("urn:ca:test", clock=SimulatedClock(start=1000.0))


@pytest.fixture(scope="module")
def subject_keypair():
    return get_scheme("rsa").generate_keypair(bits=512)


class TestCertificateAuthority:
    def test_root_certificate_is_self_signed(self, ca):
        assert ca.root_certificate.is_self_signed()
        assert ca.root_certificate.subject == "urn:ca:test"

    def test_issue_binds_subject_and_key(self, ca, subject_keypair):
        cert = ca.issue_certificate("urn:org:a", subject_keypair.public)
        assert cert.subject == "urn:org:a"
        assert cert.issuer == "urn:ca:test"
        assert cert.public_key.key_id == subject_keypair.public.key_id
        assert cert.signature is not None

    def test_issue_rejects_empty_subject(self, ca, subject_keypair):
        with pytest.raises(CertificateError):
            ca.issue_certificate("", subject_keypair.public)

    def test_revocation_appears_in_crl(self, ca, subject_keypair):
        cert = ca.issue_certificate("urn:org:revoked", subject_keypair.public)
        ca.revoke(cert.serial)
        assert ca.revocation_list().is_revoked(cert.serial)

    def test_revoking_unknown_serial_raises(self, ca):
        with pytest.raises(CertificateError):
            ca.revoke("cert-does-not-exist")

    def test_validity_window_uses_clock(self, subject_keypair):
        clock = SimulatedClock(start=500.0)
        authority = CertificateAuthority(
            "urn:ca:windowed", clock=clock, validity_seconds=100.0
        )
        cert = authority.issue_certificate("urn:org:a", subject_keypair.public)
        assert cert.not_before == 500.0
        assert cert.not_after == 600.0
        assert cert.is_valid_at(550.0)
        assert not cert.is_valid_at(601.0)


class TestCertificateStore:
    @pytest.fixture
    def store(self, ca):
        store = CertificateStore(clock=SimulatedClock(start=1000.0))
        store.add_trusted_root(ca.root_certificate)
        return store

    def test_verify_issued_certificate(self, ca, store, subject_keypair):
        cert = ca.issue_certificate("urn:org:a", subject_keypair.public)
        store.add_certificate(cert)
        assert store.verify_certificate(cert)

    def test_verification_requires_trusted_root(self, ca, subject_keypair):
        cert = ca.issue_certificate("urn:org:a", subject_keypair.public)
        lonely_store = CertificateStore(clock=SimulatedClock(start=1000.0))
        lonely_store.add_certificate(cert)
        assert not lonely_store.verify_certificate(cert)

    def test_revoked_certificate_fails_verification(self, ca, store, subject_keypair):
        cert = ca.issue_certificate("urn:org:victim", subject_keypair.public)
        store.add_certificate(cert)
        ca.revoke(cert.serial)
        store.add_revocation_list(ca.revocation_list())
        assert not store.verify_certificate(cert)

    def test_expired_certificate_fails_verification(self, subject_keypair):
        clock = SimulatedClock(start=0.0)
        authority = CertificateAuthority("urn:ca:short", clock=clock, validity_seconds=10.0)
        cert = authority.issue_certificate("urn:org:a", subject_keypair.public)
        store = CertificateStore(clock=clock)
        store.add_trusted_root(authority.root_certificate)
        store.add_certificate(cert)
        assert store.verify_certificate(cert)
        clock.advance(1000.0)
        assert not store.verify_certificate(cert)

    def test_tampered_certificate_fails_verification(self, ca, store, subject_keypair):
        cert = ca.issue_certificate("urn:org:a", subject_keypair.public)
        tampered = Certificate(
            serial=cert.serial,
            subject="urn:org:mallory",   # subject swapped after signing
            issuer=cert.issuer,
            public_key=cert.public_key,
            not_before=cert.not_before,
            not_after=cert.not_after,
            extensions=cert.extensions,
            signature=cert.signature,
        )
        store.add_certificate(tampered)
        assert not store.verify_certificate(tampered)

    def test_chain_through_subordinate_ca(self, ca, store, subject_keypair):
        subordinate = CertificateAuthority(
            "urn:ca:subordinate", clock=SimulatedClock(start=1000.0)
        )
        sub_ca_cert = ca.issue_ca_certificate(subordinate)
        leaf = subordinate.issue_certificate("urn:org:leaf", subject_keypair.public)
        assert store.verify_chain([leaf, sub_ca_cert, ca.root_certificate])

    def test_chain_with_wrong_order_rejected(self, ca, store, subject_keypair):
        subordinate = CertificateAuthority(
            "urn:ca:subordinate2", clock=SimulatedClock(start=1000.0)
        )
        sub_ca_cert = ca.issue_ca_certificate(subordinate)
        leaf = subordinate.issue_certificate("urn:org:leaf", subject_keypair.public)
        assert not store.verify_chain([sub_ca_cert, leaf])

    def test_lookup_by_subject_and_key(self, ca, store, subject_keypair):
        cert = ca.issue_certificate("urn:org:lookup", subject_keypair.public)
        store.add_certificate(cert)
        assert store.public_key_for_subject("urn:org:lookup").key_id == subject_keypair.public.key_id
        assert store.certificate_for_key(subject_keypair.public.key_id) is not None
        assert store.public_key_for_subject("urn:org:unknown") is None

    def test_unsigned_certificate_rejected_by_store(self, ca, subject_keypair):
        unsigned = Certificate(
            serial="cert-unsigned",
            subject="urn:org:a",
            issuer=ca.name,
            public_key=subject_keypair.public,
            not_before=0,
            not_after=1,
        )
        store = CertificateStore()
        with pytest.raises(CertificateError):
            store.add_certificate(unsigned)

    def test_trusted_root_must_be_self_signed(self, ca, store, subject_keypair):
        cert = ca.issue_certificate("urn:org:a", subject_keypair.public)
        with pytest.raises(CertificateError):
            store.add_trusted_root(cert)

    def test_certificate_dict_roundtrip(self, ca, subject_keypair):
        cert = ca.issue_certificate("urn:org:roundtrip", subject_keypair.public)
        restored = Certificate.from_dict(cert.to_dict())
        assert restored.serial == cert.serial
        assert restored.body_bytes() == cert.body_bytes()


class TestRevocationList:
    def test_unknown_serial_not_revoked(self):
        crl = RevocationList(issuer="urn:ca:x")
        assert not crl.is_revoked("anything")


class TestTimestampAuthority:
    @pytest.fixture(scope="class")
    def tsa(self):
        return TimestampAuthority("urn:tsa:test", clock=SimulatedClock(start=42.0))

    def test_issue_and_verify(self, tsa):
        token = tsa.issue(b"digest-bytes")
        assert tsa.verify(token)
        assert tsa.verify(token, digest=b"digest-bytes")
        assert token.timestamp == 42.0

    def test_verify_with_public_key_only(self, tsa):
        token = tsa.issue(b"digest-bytes")
        assert verify_timestamp(token, tsa.public_key)

    def test_wrong_digest_rejected(self, tsa):
        token = tsa.issue(b"digest-bytes")
        assert not tsa.verify(token, digest=b"other-digest")

    def test_empty_digest_rejected(self, tsa):
        with pytest.raises(TimestampError):
            tsa.issue(b"")

    def test_token_dict_roundtrip(self, tsa):
        token = tsa.issue(b"digest-bytes")
        from repro.crypto.timestamp import TimestampToken

        restored = TimestampToken.from_dict(token.to_dict())
        assert restored.token_id == token.token_id
        assert verify_timestamp(restored, tsa.public_key)

    def test_tampered_token_rejected(self, tsa):
        token = tsa.issue(b"digest-bytes")
        payload = token.to_dict()
        payload["timestamp"] = 99999.0
        from repro.crypto.timestamp import TimestampToken

        tampered = TimestampToken.from_dict(payload)
        assert not verify_timestamp(tampered, tsa.public_key)
