"""Unit tests for the Organisation facade."""

import pytest

from repro import ComponentDescriptor, ComponentType, TrustDomain
from repro.container.interceptor import Interceptor, Invocation, InvocationResult
from repro.core.organisation import Organisation
from repro.crypto.certificates import CertificateAuthority
from repro.errors import ProtocolError
from repro.transport.network import SimulatedNetwork
from tests.conftest import QuoteService, SpecificationDocument


@pytest.fixture(scope="module")
def domain():
    domain = TrustDomain.create(["urn:org:alpha", "urn:org:beta"])
    beta = domain.organisation("urn:org:beta")
    beta.deploy(QuoteService(), ComponentDescriptor(name="QuoteService", non_repudiation=True))
    return domain


class TestIdentityAndWiring:
    def test_organisation_without_ca_has_no_certificate(self):
        network = SimulatedNetwork()
        organisation = Organisation("urn:org:solo", network=network)
        assert organisation.certificate is None
        # It can still build evidence verified against pinned keys.
        assert organisation.evidence_verifier.key_for("urn:org:solo") is not None

    def test_organisation_with_ca_gets_verifiable_certificate(self):
        network = SimulatedNetwork()
        ca = CertificateAuthority("urn:ca:test")
        organisation = Organisation("urn:org:certified", network=network, ca=ca)
        assert organisation.certificate.subject == "urn:org:certified"
        assert organisation.certificate_store.verify_certificate(organisation.certificate)

    def test_trust_records_key_certificate_and_route(self):
        network = SimulatedNetwork()
        ca = CertificateAuthority("urn:ca:test2")
        first = Organisation("urn:org:one", network=network, ca=ca)
        second = Organisation("urn:org:two", network=network, ca=ca)
        first.trust(second)
        assert first.evidence_verifier.key_for("urn:org:two") is second.public_key
        assert first.coordinator.route_for("urn:org:two") == second.coordinator.address
        assert first.certificate_store.public_key_for_subject("urn:org:two") is not None

    def test_trust_key_for_party_without_organisation_object(self):
        network = SimulatedNetwork()
        organisation = Organisation("urn:org:solo2", network=network)
        other = Organisation("urn:org:other", network=network)
        organisation.trust_key("urn:org:other", other.public_key, other.coordinator.address)
        assert organisation.coordinator.route_for("urn:org:other") == other.coordinator.address

    def test_coordinator_and_container_share_the_address(self, domain):
        alpha = domain.organisation("urn:org:alpha")
        assert alpha.coordinator.address == alpha.container.address == alpha.uri

    def test_repr_names_the_uri(self, domain):
        assert "urn:org:alpha" in repr(domain.organisation("urn:org:alpha"))


class TestDeploymentHelpers:
    def test_deploy_service_builds_descriptor(self, domain):
        beta = domain.organisation("urn:org:beta")
        component = beta.deploy_service(QuoteService(), "HelperService", non_repudiation=False)
        assert component.descriptor.name == "HelperService"
        assert not component.descriptor.non_repudiation

    def test_deploying_b2b_object_binds_it_to_the_controller(self):
        domain = TrustDomain.create(["urn:org:x", "urn:org:y"])
        x = domain.organisation("urn:org:x")
        y = domain.organisation("urn:org:y")
        domain.share_object("doc", SpecificationDocument().get_state())
        document = SpecificationDocument()
        x.deploy(
            document,
            ComponentDescriptor(
                name="doc", component_type=ComponentType.ENTITY, b2b_object=True
            ),
        )
        # The bound component mirrors the registered replica state.
        assert document.get_state() == x.shared_state("doc")

    def test_nr_proxy_supports_extra_client_interceptors(self, domain):
        alpha = domain.organisation("urn:org:alpha")
        beta = domain.organisation("urn:org:beta")
        seen = []

        class ContextInterceptor(Interceptor):
            def invoke(self, invocation, next_interceptor):
                seen.append(invocation.method)
                return next_interceptor(invocation)

        # Extra interceptors sit *after* the NR interceptor (which is first on
        # the outgoing path), so they only see the call if it is not taken
        # over -- here the NR interceptor short-circuits, so they see nothing:
        # exactly the paper's required ordering.
        proxy = alpha.nr_proxy(beta, "QuoteService", client_interceptors=[ContextInterceptor()])
        assert proxy.quote("axle")["price"] == 100
        assert seen == []

    def test_unreachable_dispatcher_guard(self, domain):
        alpha = domain.organisation("urn:org:alpha")
        from repro.core.organisation import _unreachable_dispatcher

        with pytest.raises(ProtocolError):
            _unreachable_dispatcher(Invocation(component="X", method="m"))


class TestConvenienceQueries:
    def test_evidence_and_audit_accessors(self, domain):
        alpha = domain.organisation("urn:org:alpha")
        beta = domain.organisation("urn:org:beta")
        outcome = alpha.invoke_non_repudiably(beta.uri, "QuoteService", "quote", ["part"])
        assert len(alpha.evidence_for_run(outcome.run_id)) == 4
        assert alpha.audit_records(subject=outcome.run_id)
        assert alpha.audit_records(category="nr.invocation.client", subject=outcome.run_id)

    def test_shared_state_accessors(self):
        domain = TrustDomain.create(["urn:org:p", "urn:org:q"])
        domain.share_object("notes", {"text": ""})
        p = domain.organisation("urn:org:p")
        q = domain.organisation("urn:org:q")
        outcome = p.propose_update("notes", {"text": "hello"})
        assert outcome.agreed
        assert p.shared_state("notes") == q.shared_state("notes") == {"text": "hello"}
        assert p.shared_version("notes") == q.shared_version("notes") == 1
