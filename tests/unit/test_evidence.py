"""Unit tests for evidence tokens, builders and verifiers."""

import pytest

from repro.clock import SimulatedClock
from repro.core.evidence import (
    EvidenceBuilder,
    EvidenceToken,
    EvidenceVerifier,
    TokenType,
    payload_digest,
)
from repro.crypto.signature import Signer, get_scheme
from repro.crypto.timestamp import TimestampAuthority
from repro.errors import EvidenceError, EvidenceVerificationError


@pytest.fixture(scope="module")
def alice_keypair():
    return get_scheme("rsa").generate_keypair(bits=512)


@pytest.fixture(scope="module")
def bob_keypair():
    return get_scheme("rsa").generate_keypair(bits=512)


@pytest.fixture
def alice_builder(alice_keypair):
    return EvidenceBuilder(
        party="urn:org:alice",
        signer=Signer(alice_keypair.private),
        clock=SimulatedClock(start=50.0),
    )


@pytest.fixture
def verifier(alice_keypair, bob_keypair):
    verifier = EvidenceVerifier()
    verifier.pin_key("urn:org:alice", alice_keypair.public)
    verifier.pin_key("urn:org:bob", bob_keypair.public)
    return verifier


class TestPayloadDigest:
    def test_digest_is_canonical(self):
        assert payload_digest({"a": 1, "b": 2}) == payload_digest({"b": 2, "a": 1})

    def test_digest_differs_for_different_payloads(self):
        assert payload_digest({"a": 1}) != payload_digest({"a": 2})


class TestEvidenceBuilder:
    def test_build_produces_verifiable_token(self, alice_builder, verifier):
        token = alice_builder.build(
            token_type=TokenType.NRO_REQUEST,
            run_id="run-1",
            step=1,
            recipient="urn:org:bob",
            payload={"request": "quote"},
        )
        assert token.issuer == "urn:org:alice"
        assert token.issued_at == 50.0
        assert verifier.verify(token)
        verifier.require_valid(
            token,
            expected_type=TokenType.NRO_REQUEST,
            expected_run_id="run-1",
            expected_payload={"request": "quote"},
            expected_issuer="urn:org:alice",
        )

    def test_empty_run_id_rejected(self, alice_builder):
        with pytest.raises(EvidenceError):
            alice_builder.build(
                token_type=TokenType.NRO_REQUEST,
                run_id="",
                step=1,
                recipient="urn:org:bob",
                payload={},
            )

    def test_precomputed_digest_accepted(self, alice_builder, verifier):
        digest = payload_digest({"request": "quote"})
        token = alice_builder.build(
            token_type=TokenType.NRO_REQUEST,
            run_id="run-1",
            step=1,
            recipient="urn:org:bob",
            payload=digest,
        )
        verifier.require_valid(token, expected_payload={"request": "quote"})

    def test_timestamped_token(self, alice_keypair):
        tsa = TimestampAuthority(clock=SimulatedClock(start=9.0))
        builder = EvidenceBuilder(
            party="urn:org:alice",
            signer=Signer(alice_keypair.private),
            clock=SimulatedClock(start=9.0),
            timestamp_authority=tsa,
        )
        verifier = EvidenceVerifier(
            pinned_keys={"urn:org:alice": alice_keypair.public},
            tsa_key=tsa.public_key,
        )
        token = builder.build(
            token_type=TokenType.NRO_REQUEST,
            run_id="run-1",
            step=1,
            recipient="urn:org:bob",
            payload={"x": 1},
        )
        assert token.timestamp_token is not None
        verifier.require_valid(token)


class TestEvidenceVerifier:
    def _token(self, builder, **overrides):
        defaults = dict(
            token_type=TokenType.NRO_REQUEST,
            run_id="run-1",
            step=1,
            recipient="urn:org:bob",
            payload={"request": "quote"},
        )
        defaults.update(overrides)
        return builder.build(**defaults)

    def test_unknown_issuer_fails(self, alice_builder):
        verifier = EvidenceVerifier()
        token = self._token(alice_builder)
        with pytest.raises(EvidenceVerificationError, match="no verification key"):
            verifier.require_valid(token)

    def test_wrong_type_fails(self, alice_builder, verifier):
        token = self._token(alice_builder)
        with pytest.raises(EvidenceVerificationError):
            verifier.require_valid(token, expected_type=TokenType.NRR_REQUEST)

    def test_wrong_run_id_fails(self, alice_builder, verifier):
        token = self._token(alice_builder)
        with pytest.raises(EvidenceVerificationError):
            verifier.require_valid(token, expected_run_id="another-run")

    def test_wrong_issuer_fails(self, alice_builder, verifier):
        token = self._token(alice_builder)
        with pytest.raises(EvidenceVerificationError):
            verifier.require_valid(token, expected_issuer="urn:org:bob")

    def test_wrong_payload_fails(self, alice_builder, verifier):
        token = self._token(alice_builder)
        with pytest.raises(EvidenceVerificationError):
            verifier.require_valid(token, expected_payload={"request": "forged"})

    def test_missing_signature_fails(self, alice_builder, verifier):
        token = self._token(alice_builder)
        unsigned = EvidenceToken(
            token_id=token.token_id,
            token_type=token.token_type,
            run_id=token.run_id,
            step=token.step,
            issuer=token.issuer,
            recipient=token.recipient,
            payload_digest=token.payload_digest,
            issued_at=token.issued_at,
            details=token.details,
            signature=None,
        )
        assert not verifier.verify(unsigned)

    def test_field_tampering_detected(self, alice_builder, verifier):
        token = self._token(alice_builder)
        tampered = EvidenceToken(
            token_id=token.token_id,
            token_type=token.token_type,
            run_id=token.run_id,
            step=token.step,
            issuer=token.issuer,
            recipient="urn:org:mallory",   # recipient changed after signing
            payload_digest=token.payload_digest,
            issued_at=token.issued_at,
            details=token.details,
            signature=token.signature,
        )
        assert not verifier.verify(tampered)

    def test_impersonation_detected(self, alice_builder, verifier, bob_keypair):
        # Alice signs a token but claims it was issued by Bob: the verifier
        # resolves Bob's key and the signature does not verify under it.
        token = self._token(alice_builder)
        forged = EvidenceToken(
            token_id=token.token_id,
            token_type=token.token_type,
            run_id=token.run_id,
            step=token.step,
            issuer="urn:org:bob",
            recipient=token.recipient,
            payload_digest=token.payload_digest,
            issued_at=token.issued_at,
            details=token.details,
            signature=token.signature,
        )
        assert not verifier.verify(forged, expected_issuer="urn:org:bob")

    def test_dict_roundtrip_preserves_verifiability(self, alice_builder, verifier):
        token = self._token(alice_builder)
        restored = EvidenceToken.from_dict(token.to_dict())
        assert verifier.verify(restored)
        assert restored.payload_digest == token.payload_digest

    def test_details_roundtrip_with_bytes(self, alice_builder, verifier):
        token = alice_builder.build(
            token_type=TokenType.NR_DECISION,
            run_id="run-1",
            step=2,
            recipient="urn:org:bob",
            payload={"x": 1},
            details={"digest": b"\x01\x02", "consumed": True},
        )
        restored = EvidenceToken.from_dict(token.to_dict())
        assert restored.details["digest"] == b"\x01\x02"
        assert verifier.verify(restored)

    def test_key_resolution_prefers_pinned_keys(self, alice_keypair):
        verifier = EvidenceVerifier(pinned_keys={"urn:org:alice": alice_keypair.public})
        assert verifier.key_for("urn:org:alice") is alice_keypair.public
        assert verifier.key_for("urn:org:unknown") is None

    def test_all_token_types_have_distinct_values(self):
        values = [token_type.value for token_type in TokenType]
        assert len(values) == len(set(values))
