"""Tests for the parallel protocol engine.

Covers the pluggable network dispatch strategies (sequential/parallel
equivalence, duplicate accounting, nested fan-outs), the DSA nonce pool and
the batched parallel evidence verification.
"""

import hashlib
import threading
import time

import pytest

from repro import FaultModel, TokenType, TrustDomain
from repro.core.evidence import EvidenceBuilder, EvidenceToken, EvidenceVerifier
from repro.crypto import dsa
from repro.crypto.signature import Signer, generate_keypair
from repro.transport.network import (
    ParallelDispatch,
    SequentialDispatch,
    SimulatedNetwork,
)


def statistics_dict(network):
    statistics = network.statistics.snapshot()
    return {
        "messages_sent": statistics.messages_sent,
        "messages_delivered": statistics.messages_delivered,
        "messages_dropped": statistics.messages_dropped,
        "messages_duplicated": statistics.messages_duplicated,
        "bytes_delivered": statistics.bytes_delivered,
        "per_operation": dict(statistics.per_operation),
    }


class TestDispatchStrategies:
    def test_parallel_batch_runs_handlers_concurrently(self):
        network = SimulatedNetwork(dispatch=ParallelDispatch())
        barrier = threading.Barrier(3, timeout=5.0)

        def handler(message):
            barrier.wait()  # only passes if all three run at once
            return message.payload

        for index in range(3):
            network.register(f"urn:dst{index}", handler)
        results = network.send_batch(
            "urn:src", [(f"urn:dst{index}", "op", index) for index in range(3)]
        )
        assert [outcome.result for outcome in results] == [0, 1, 2]

    def test_parallel_batch_isolates_handler_failures(self):
        network = SimulatedNetwork(dispatch=ParallelDispatch())
        network.register("urn:good", lambda message: "ok")

        def failing(message):
            raise RuntimeError("handler exploded")

        network.register("urn:bad", failing)
        results = network.send_batch(
            "urn:src", [("urn:good", "op", 1), ("urn:bad", "op", 2), ("urn:good", "op", 3)]
        )
        assert results[0].result == "ok"
        assert isinstance(results[1].error, RuntimeError)
        assert results[2].result == "ok"

    def test_nested_fanout_from_handler_does_not_deadlock(self):
        network = SimulatedNetwork(dispatch=ParallelDispatch())
        network.register("urn:leaf", lambda message: "leaf")

        def fanning_handler(message):
            inner = network.send_batch(
                message.destination, [("urn:leaf", "op", i) for i in range(4)]
            )
            return [outcome.result for outcome in inner]

        network.register("urn:mid", fanning_handler)
        results = network.send_batch(
            "urn:src", [("urn:mid", "op", i) for i in range(8)]
        )
        assert all(outcome.result == ["leaf"] * 4 for outcome in results)

    def test_nested_fanout_with_private_pool_does_not_deadlock(self):
        # A private pool small enough that every worker is busy with an
        # outer entry: nested fan-outs must run inline on the workers, not
        # queue behind them (which would deadlock permanently).
        dispatch = ParallelDispatch(max_workers=2)
        network = SimulatedNetwork(dispatch=dispatch)
        network.register("urn:leaf", lambda message: "leaf")

        def fanning_handler(message):
            inner = network.send_batch(
                message.destination, [("urn:leaf", "op", i) for i in range(3)]
            )
            return [outcome.result for outcome in inner]

        network.register("urn:mid", fanning_handler)
        outcomes = []
        worker = threading.Thread(
            target=lambda: outcomes.extend(
                network.send_batch("urn:src", [("urn:mid", "op", i) for i in range(4)])
            )
        )
        worker.start()
        worker.join(timeout=10.0)
        assert not worker.is_alive(), "nested fan-out deadlocked the private pool"
        assert all(outcome.result == ["leaf"] * 3 for outcome in outcomes)
        dispatch.close()

    def test_set_dispatch_switches_strategy(self):
        network = SimulatedNetwork()
        assert isinstance(network.dispatch, SequentialDispatch)
        network.set_dispatch(ParallelDispatch())
        assert network.dispatch.name == "parallel"


class TestDuplicateAccounting:
    def test_send_accounts_duplicate_before_dispatch(self):
        network = SimulatedNetwork(FaultModel(duplicate_probability=1.0, seed=b"dup"))
        observed = []

        def handler(message):
            observed.append(network.statistics.messages_duplicated)

        network.register("urn:dst", handler)
        network.send("urn:src", "urn:dst", "op", {})
        # The handler ran twice, and the duplicate was already accounted
        # before the *first* dispatch.
        assert observed == [1, 1]
        assert network.statistics.messages_duplicated == 1

    @pytest.mark.parametrize("dispatch", [SequentialDispatch(), ParallelDispatch()])
    def test_send_batch_accounts_duplicates_like_send(self, dispatch):
        def run(use_batch):
            network = SimulatedNetwork(
                FaultModel(duplicate_probability=1.0, seed=b"dup"), dispatch=dispatch
            )
            calls = []
            network.register("urn:dst", lambda message: calls.append(message.message_id))
            if use_batch:
                network.send_batch("urn:src", [("urn:dst", "op", {})] * 2)
            else:
                network.send("urn:src", "urn:dst", "op", {})
                network.send("urn:src", "urn:dst", "op", {})
            return len(calls), statistics_dict(network)

        batch_calls, batch_statistics = run(use_batch=True)
        send_calls, send_statistics = run(use_batch=False)
        assert batch_calls == send_calls == 4  # two messages, each duplicated
        assert batch_statistics == send_statistics
        assert batch_statistics["messages_duplicated"] == 2


class TestDispatchEquivalence:
    """Parallel dispatch must be observationally equivalent to sequential."""

    PARTIES = 4
    UPDATES = 3

    def run_sharing_scenario(self, dispatch, latency_seconds=0.0):
        fault_model = FaultModel(
            drop_probability=0.08,
            duplicate_probability=0.08,
            latency_seconds=latency_seconds,
            seed=b"equivalence",
        )
        uris = [f"urn:eq:party{i}" for i in range(self.PARTIES)]
        domain = TrustDomain.create(uris, fault_model=fault_model, dispatch=dispatch)
        domain.share_object("doc", {"revision": 0})
        organisations = [domain.organisation(uri) for uri in uris]
        for revision in range(1, self.UPDATES + 1):
            proposer = organisations[revision % self.PARTIES]
            outcome = proposer.propose_update("doc", {"revision": revision})
            assert outcome.agreed
        final_states = [org.shared_state("doc") for org in organisations]
        final_versions = [org.shared_version("doc") for org in organisations]
        statistics = statistics_dict(domain.network)
        statistics["total_latency"] = domain.network.statistics.total_latency
        return statistics, final_states, final_versions

    def test_statistics_and_state_identical_under_both_strategies(self):
        sequential = self.run_sharing_scenario(SequentialDispatch())
        parallel = self.run_sharing_scenario(ParallelDispatch())
        assert sequential[0] == parallel[0]  # full NetworkStatistics equality
        assert sequential[1] == parallel[1]  # every replica's final state
        assert sequential[2] == parallel[2]  # every replica's version

    def test_latency_accounting_identical_under_both_strategies(self):
        # With nonzero link latency, concurrent handlers observe the shared
        # virtual clock in nondeterministic order, so token timestamps (and
        # with them a few bytes of float repr inside token bodies) are not
        # reproducible run-to-run -- that is inherent to concurrent
        # timestamping, not a dispatch artefact.  Everything the network
        # itself accounts -- message counts, drops, duplicates, per-operation
        # tallies and the latency total drawn in admission order -- must
        # still match exactly; byte totals may differ only by timestamp
        # digits.
        sequential = self.run_sharing_scenario(
            SequentialDispatch(), latency_seconds=0.002
        )
        parallel = self.run_sharing_scenario(
            ParallelDispatch(), latency_seconds=0.002
        )
        sequential_bytes = sequential[0].pop("bytes_delivered")
        parallel_bytes = parallel[0].pop("bytes_delivered")
        assert sequential[0] == parallel[0]
        assert abs(sequential_bytes - parallel_bytes) < 500
        assert sequential[1] == parallel[1]
        assert sequential[2] == parallel[2]


class TestNoncePool:
    def setup_method(self):
        dsa.disable_nonce_pools()

    def teardown_method(self):
        dsa.disable_nonce_pools()

    def test_pooled_signatures_verify_and_are_unique(self):
        scheme = dsa.DSAScheme()
        keypair = scheme.generate_keypair(p_bits=512)
        digest = hashlib.sha256(b"pooled").digest()
        dsa.enable_nonce_pools(capacity=32, background=False)
        pool = dsa.nonce_pool_for(
            keypair.private.params["p"],
            keypair.private.params["q"],
            keypair.private.params["g"],
        )
        pool.precompute(8)
        signatures = [scheme.sign_digest(keypair.private, digest) for _ in range(8)]
        assert all(
            scheme.verify_digest(keypair.public, digest, signature)
            for signature in signatures
        )
        assert len(set(signatures)) == 8  # fresh nonce per signature
        assert pool.stats()["hits"] == 8

    def test_empty_pool_falls_back_synchronously(self):
        scheme = dsa.DSAScheme()
        keypair = scheme.generate_keypair(p_bits=512)
        digest = hashlib.sha256(b"fallback").digest()
        dsa.enable_nonce_pools(capacity=4, background=False)
        signature = scheme.sign_digest(keypair.private, digest)
        assert scheme.verify_digest(keypair.public, digest, signature)
        pool = dsa.nonce_pool_for(
            keypair.private.params["p"],
            keypair.private.params["q"],
            keypair.private.params["g"],
        )
        assert pool.stats()["misses"] == 1

    def test_background_refill_replenishes_pool(self):
        params = dsa.generate_domain_parameters(p_bits=512, q_bits=160)
        pool = dsa.NoncePool(*params, capacity=8, background=True)
        deadline = time.time() + 10.0
        while pool.size() < 8 and time.time() < deadline:
            time.sleep(0.01)
        assert pool.size() == 8
        for _ in range(6):
            pool.take()
        deadline = time.time() + 10.0
        while pool.size() < 8 and time.time() < deadline:
            time.sleep(0.01)
        assert pool.size() == 8
        assert pool.stats()["misses"] == 0
        pool.close()

    def test_disabled_pools_restore_deterministic_signing(self):
        scheme = dsa.DSAScheme()
        keypair = scheme.generate_keypair(p_bits=512)
        digest = hashlib.sha256(b"deterministic").digest()
        reference = scheme.sign_digest(keypair.private, digest)
        dsa.enable_nonce_pools(capacity=4, background=False)
        pooled = scheme.sign_digest(keypair.private, digest)
        dsa.disable_nonce_pools()
        assert scheme.sign_digest(keypair.private, digest) == reference
        assert scheme.verify_digest(keypair.public, digest, pooled)


def build_verifier_with_tokens(count):
    keypair = generate_keypair("rsa")
    builder = EvidenceBuilder("urn:org:issuer", Signer(keypair.private))
    verifier = EvidenceVerifier(pinned_keys={"urn:org:issuer": keypair.public})
    tokens = [
        builder.build(
            token_type=TokenType.NR_DECISION,
            run_id="run-1",
            step=2,
            recipient="urn:org:peer",
            payload={"decision": index},
        )
        for index in range(count)
    ]
    return verifier, tokens


class TestVerifyAll:
    @pytest.mark.parametrize("parallel_verification", [True, False])
    def test_all_valid_tokens_pass(self, parallel_verification):
        verifier, tokens = build_verifier_with_tokens(4)
        verdicts = verifier.verify_all(
            (
                (token, {"expected_type": TokenType.NR_DECISION, "expected_run_id": "run-1"})
                for token in tokens
            ),
            parallel_verification=parallel_verification,
        )
        assert verdicts == [None] * 4

    def test_invalid_token_reported_in_its_slot(self):
        verifier, tokens = build_verifier_with_tokens(3)
        tampered = EvidenceToken.from_dict(
            {**tokens[1].to_dict(), "run_id": "run-forged"}
        )
        verdicts = verifier.verify_all(
            (token, {"expected_run_id": "run-1"})
            for token in [tokens[0], tampered, tokens[2]]
        )
        assert verdicts[0] is None
        assert verdicts[1] is not None  # the forged run id fails verification
        assert verdicts[2] is None
