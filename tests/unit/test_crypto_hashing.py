"""Unit tests for hashing, hash chains and Merkle trees."""

import pytest

from repro.crypto.hashing import (
    HashChain,
    MerkleTree,
    combine_digests,
    secure_hash,
    secure_hash_hex,
)


class TestSecureHash:
    def test_hash_is_deterministic(self):
        assert secure_hash(b"payload") == secure_hash(b"payload")

    def test_hash_differs_for_different_input(self):
        assert secure_hash(b"payload-a") != secure_hash(b"payload-b")

    def test_hash_accepts_text(self):
        assert secure_hash("text") == secure_hash(b"text")

    def test_hash_length_is_32_bytes_for_sha256(self):
        assert len(secure_hash(b"x")) == 32

    def test_hex_digest_matches_binary_digest(self):
        assert secure_hash_hex(b"x") == secure_hash(b"x").hex()

    def test_alternative_algorithm(self):
        assert len(secure_hash(b"x", algorithm="sha512")) == 64


class TestCombineDigests:
    def test_combining_is_order_sensitive(self):
        assert combine_digests(b"a", b"b") != combine_digests(b"b", b"a")

    def test_length_prefixing_prevents_repartition_collisions(self):
        assert combine_digests(b"ab", b"c") != combine_digests(b"a", b"bc")

    def test_combining_is_deterministic(self):
        assert combine_digests(b"a", b"b") == combine_digests(b"a", b"b")


class TestHashChain:
    def test_empty_chain_head_is_genesis(self):
        chain = HashChain()
        assert chain.head == HashChain.GENESIS
        assert len(chain) == 0

    def test_append_returns_indexed_entries(self):
        chain = HashChain()
        first = chain.append(b"one")
        second = chain.append(b"two")
        assert first.index == 0
        assert second.index == 1
        assert len(chain) == 2

    def test_head_changes_with_every_append(self):
        chain = HashChain()
        heads = [chain.head]
        for i in range(5):
            chain.append(f"item-{i}".encode())
            heads.append(chain.head)
        assert len(set(heads)) == len(heads)

    def test_verify_accepts_original_items(self):
        chain = HashChain()
        items = [f"item-{i}".encode() for i in range(10)]
        for item in items:
            chain.append(item)
        assert chain.verify(items)

    def test_verify_detects_modified_item(self):
        chain = HashChain()
        items = [f"item-{i}".encode() for i in range(10)]
        for item in items:
            chain.append(item)
        tampered = list(items)
        tampered[4] = b"item-4-tampered"
        assert not chain.verify(tampered)

    def test_verify_detects_missing_item(self):
        chain = HashChain()
        items = [b"a", b"b", b"c"]
        for item in items:
            chain.append(item)
        assert not chain.verify(items[:-1])

    def test_verify_detects_extra_item(self):
        chain = HashChain()
        items = [b"a", b"b"]
        for item in items:
            chain.append(item)
        assert not chain.verify(items + [b"c"])

    def test_verify_detects_reordering(self):
        chain = HashChain()
        for item in (b"a", b"b", b"c"):
            chain.append(item)
        assert not chain.verify([b"a", b"c", b"b"])


class TestMerkleTree:
    def test_empty_tree_has_a_root(self):
        tree = MerkleTree()
        assert isinstance(tree.root, bytes)

    def test_root_depends_on_content(self):
        assert MerkleTree([b"a", b"b"]).root != MerkleTree([b"a", b"c"]).root

    def test_root_depends_on_order(self):
        assert MerkleTree([b"a", b"b"]).root != MerkleTree([b"b", b"a"]).root

    def test_single_leaf_root_is_leaf_hash(self):
        tree = MerkleTree([b"only"])
        assert tree.root == secure_hash(b"only")

    @pytest.mark.parametrize("count", [1, 2, 3, 5, 8, 13])
    def test_every_leaf_has_a_valid_proof(self, count):
        items = [f"leaf-{i}".encode() for i in range(count)]
        tree = MerkleTree(items)
        for index in range(count):
            proof = tree.proof(index)
            assert proof.verify(tree.root)

    def test_proof_fails_against_wrong_root(self):
        tree = MerkleTree([b"a", b"b", b"c"])
        other = MerkleTree([b"a", b"b", b"d"])
        proof = tree.proof(0)
        assert not proof.verify(other.root)

    def test_proof_for_missing_index_raises(self):
        tree = MerkleTree([b"a"])
        with pytest.raises(IndexError):
            tree.proof(5)

    def test_adding_leaf_changes_root(self):
        tree = MerkleTree([b"a", b"b"])
        before = tree.root
        tree.add(b"c")
        assert tree.root != before

    def test_len_counts_leaves(self):
        tree = MerkleTree([b"a", b"b", b"c"])
        assert len(tree) == 3
