"""Unit tests for validation listeners."""

import pytest

from repro.core.validators import (
    AcceptAllValidator,
    CallableValidator,
    CompositeValidator,
    RejectAllValidator,
    StateValidator,
    ValidationContext,
    ValidationDecision,
)


@pytest.fixture
def context():
    return ValidationContext(
        object_id="spec",
        proposer="urn:org:a",
        current_state={"revision": 0},
        proposed_state={"revision": 1},
        base_version=0,
    )


class TestBasicValidators:
    def test_accept_all(self, context):
        decision = AcceptAllValidator().validate(context)
        assert decision.accepted
        assert decision.validator == "accept-all"

    def test_reject_all_with_reason(self, context):
        decision = RejectAllValidator(reason="frozen").validate(context)
        assert not decision.accepted
        assert decision.reason == "frozen"

    def test_base_class_is_abstract(self, context):
        with pytest.raises(NotImplementedError):
            StateValidator().validate(context)

    def test_decision_to_dict(self):
        decision = ValidationDecision(accepted=True, reason="ok", validator="v")
        assert decision.to_dict() == {"accepted": True, "reason": "ok", "validator": "v"}


class TestCallableValidator:
    def test_boolean_return(self, context):
        assert CallableValidator(lambda ctx: True).validate(context).accepted
        assert not CallableValidator(lambda ctx: False).validate(context).accepted

    def test_decision_return_is_passed_through(self, context):
        validator = CallableValidator(
            lambda ctx: ValidationDecision(accepted=False, reason="nope", validator="custom")
        )
        decision = validator.validate(context)
        assert decision.reason == "nope"
        assert decision.validator == "custom"

    def test_name_defaults_to_function_name(self, context):
        def budget_check(ctx):
            return True

        assert CallableValidator(budget_check).validate(context).validator == "budget_check"

    def test_explicit_name_overrides(self, context):
        validator = CallableValidator(lambda ctx: True, name="named")
        assert validator.validate(context).validator == "named"

    def test_context_fields_available(self):
        captured = {}

        def inspect(ctx):
            captured.update(
                object_id=ctx.object_id,
                proposer=ctx.proposer,
                base_version=ctx.base_version,
            )
            return True

        context = ValidationContext("doc", "urn:org:z", {}, {}, 4)
        CallableValidator(inspect).validate(context)
        assert captured == {"object_id": "doc", "proposer": "urn:org:z", "base_version": 4}


class TestCompositeValidator:
    def test_empty_composite_accepts(self, context):
        assert CompositeValidator().validate(context).accepted

    def test_all_must_accept(self, context):
        composite = CompositeValidator([AcceptAllValidator(), AcceptAllValidator()])
        assert composite.validate(context).accepted

    def test_single_rejection_vetoes(self, context):
        composite = CompositeValidator(
            [AcceptAllValidator(), RejectAllValidator(reason="no"), AcceptAllValidator()]
        )
        decision = composite.validate(context)
        assert not decision.accepted
        assert decision.validator == "reject-all"
        assert decision.reason == "no"

    def test_add_appends_validator(self, context):
        composite = CompositeValidator()
        composite.add(RejectAllValidator())
        assert len(composite.validators) == 1
        assert not composite.validate(context).accepted

    def test_reasons_from_accepting_validators_are_collected(self, context):
        composite = CompositeValidator(
            [
                CallableValidator(
                    lambda ctx: ValidationDecision(accepted=True, reason="checked budget"),
                    name="budget",
                ),
                CallableValidator(
                    lambda ctx: ValidationDecision(accepted=True, reason="checked schedule"),
                    name="schedule",
                ),
            ]
        )
        decision = composite.validate(context)
        assert decision.accepted
        assert "checked budget" in decision.reason
        assert "checked schedule" in decision.reason
