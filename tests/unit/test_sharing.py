"""Unit tests for non-repudiable information sharing (NR-Sharing / B2BObjects)."""

import pytest

from repro import (
    CallableValidator,
    ComponentDescriptor,
    ComponentType,
    TokenType,
)
from repro.container.interceptor import Invocation
from repro.core.sharing import NR_SHARING_PROTOCOL
from repro.core.validators import ValidationDecision
from repro.errors import CoordinationError, MembershipError
from tests.conftest import SpecificationDocument, make_domain


@pytest.fixture
def sharing_domain():
    """Fresh three-party domain sharing one document per test."""
    domain = make_domain(3)
    domain.share_object("spec", {"sections": {}, "revision": 0})
    return domain


def orgs(domain):
    return [domain.organisation(uri) for uri in domain.party_uris()]


class TestAgreedUpdates:
    def test_unanimous_update_is_applied_everywhere(self, sharing_domain):
        a, b, c = orgs(sharing_domain)
        outcome = a.propose_update("spec", {"sections": {"intro": "v1"}, "revision": 1})
        assert outcome.agreed
        assert outcome.new_version == 1
        for org in (a, b, c):
            assert org.shared_state("spec") == {"sections": {"intro": "v1"}, "revision": 1}
            assert org.shared_version("spec") == 1

    def test_all_parties_share_the_same_state_digest(self, sharing_domain):
        a, b, c = orgs(sharing_domain)
        a.propose_update("spec", {"sections": {"x": "1"}, "revision": 1})
        digests = {org.controller.state_digest("spec") for org in (a, b, c)}
        assert len(digests) == 1

    def test_sequential_updates_from_different_proposers(self, sharing_domain):
        a, b, c = orgs(sharing_domain)
        a.propose_update("spec", {"sections": {"a": "1"}, "revision": 1})
        b.propose_update("spec", {"sections": {"a": "1", "b": "2"}, "revision": 2})
        c.propose_update("spec", {"sections": {"a": "1", "b": "2", "c": "3"}, "revision": 3})
        assert a.shared_version("spec") == 3
        assert a.shared_state("spec") == b.shared_state("spec") == c.shared_state("spec")

    def test_decisions_recorded_for_every_peer(self, sharing_domain):
        a, b, c = orgs(sharing_domain)
        outcome = a.propose_update("spec", {"sections": {"k": "v"}, "revision": 1})
        assert set(outcome.decisions) == {b.uri, c.uri}
        assert all(decision.accepted for decision in outcome.decisions.values())

    def test_evidence_held_by_proposer_and_peers(self, sharing_domain):
        a, b, c = orgs(sharing_domain)
        outcome = a.propose_update("spec", {"sections": {"k": "v"}, "revision": 1})
        proposer_types = {r.token_type for r in a.evidence_for_run(outcome.run_id)}
        assert TokenType.NRO_UPDATE.value in proposer_types
        assert TokenType.NR_DECISION.value in proposer_types
        assert TokenType.NR_OUTCOME.value in proposer_types
        for peer in (b, c):
            peer_types = {r.token_type for r in peer.evidence_for_run(outcome.run_id)}
            assert TokenType.NRO_UPDATE.value in peer_types
            assert TokenType.NR_OUTCOME.value in peer_types

    def test_state_store_records_agreed_versions(self, sharing_domain):
        a, b, _ = orgs(sharing_domain)
        new_state = {"sections": {"k": "v"}, "revision": 1}
        a.propose_update("spec", new_state)
        assert a.state_store.is_agreed_state("spec", new_state)
        assert b.state_store.is_agreed_state("spec", new_state)

    def test_apply_change_mutator_helper(self, sharing_domain):
        a, b, _ = orgs(sharing_domain)

        def add_section(state):
            state["sections"]["materials"] = "steel"
            state["revision"] += 1
            return state

        outcome = a.controller.apply_change("spec", add_section)
        assert outcome.agreed
        assert b.shared_state("spec")["sections"]["materials"] == "steel"


class TestVetoedUpdates:
    def test_veto_leaves_state_unchanged_everywhere(self, sharing_domain):
        a, b, c = orgs(sharing_domain)
        b.controller.add_validator(
            "spec", CallableValidator(lambda ctx: False, name="always-no")
        )
        before = a.shared_state("spec")
        outcome = a.propose_update("spec", {"sections": {"bad": "x"}, "revision": 1})
        assert not outcome.agreed
        assert outcome.new_version is None
        for org in (a, b, c):
            assert org.shared_state("spec") == before
            assert org.shared_version("spec") == 0
        with pytest.raises(CoordinationError):
            outcome.require_agreed()

    def test_veto_reason_is_reported(self, sharing_domain):
        a, b, _ = orgs(sharing_domain)
        b.controller.add_validator(
            "spec",
            CallableValidator(
                lambda ctx: ValidationDecision(accepted=False, reason="budget exceeded"),
                name="budget",
            ),
        )
        outcome = a.propose_update("spec", {"sections": {}, "revision": 1})
        assert not outcome.agreed
        assert outcome.decisions[b.uri].reason == "budget exceeded"

    def test_validator_sees_current_and_proposed_state(self, sharing_domain):
        a, b, _ = orgs(sharing_domain)
        observed = {}

        def record(context):
            observed["current"] = context.current_state
            observed["proposed"] = context.proposed_state
            observed["proposer"] = context.proposer
            return True

        b.controller.add_validator("spec", CallableValidator(record, name="recorder"))
        a.propose_update("spec", {"sections": {"new": "yes"}, "revision": 1})
        assert observed["current"]["revision"] == 0
        assert observed["proposed"]["sections"] == {"new": "yes"}
        assert observed["proposer"] == a.uri

    def test_stale_base_version_rejected(self, sharing_domain):
        a, b, _ = orgs(sharing_domain)
        a.propose_update("spec", {"sections": {"x": "1"}, "revision": 1})
        # Manually craft a proposal based on the stale version 0.
        decision = b.controller._validate_proposal(  # noqa: SLF001
            a.uri,
            {"object_id": "spec", "base_version": 0, "proposed_state": {}, "proposer": a.uri},
        )
        assert not decision.accepted
        assert "stale" in decision.reason

    def test_non_member_proposals_rejected(self, sharing_domain):
        a, b, _ = orgs(sharing_domain)
        decision = b.controller._validate_proposal(  # noqa: SLF001
            "urn:org:stranger",
            {"object_id": "spec", "base_version": 0, "proposed_state": {}, "proposer": "urn:org:stranger"},
        )
        assert not decision.accepted

    def test_unknown_object_proposals_rejected(self, sharing_domain):
        a, b, _ = orgs(sharing_domain)
        decision = b.controller._validate_proposal(  # noqa: SLF001
            a.uri,
            {"object_id": "not-shared", "base_version": 0, "proposed_state": {}, "proposer": a.uri},
        )
        assert not decision.accepted


class TestControllerConfiguration:
    def test_duplicate_registration_rejected(self, sharing_domain):
        a = orgs(sharing_domain)[0]
        with pytest.raises(CoordinationError):
            a.share_object("spec", {}, sharing_domain.party_uris())

    def test_registration_must_include_self(self, sharing_domain):
        a = orgs(sharing_domain)[0]
        with pytest.raises(MembershipError):
            a.share_object("other-doc", {}, ["urn:org:party1", "urn:org:party2"])

    def test_unknown_object_access_raises(self, sharing_domain):
        a = orgs(sharing_domain)[0]
        with pytest.raises(CoordinationError):
            a.shared_state("does-not-exist")

    def test_members_and_peers(self, sharing_domain):
        a = orgs(sharing_domain)[0]
        assert set(a.controller.members("spec")) == set(sharing_domain.party_uris())
        assert a.uri not in a.controller.peers("spec")
        assert len(a.controller.peers("spec")) == 2

    def test_object_ids_listed(self, sharing_domain):
        a = orgs(sharing_domain)[0]
        assert a.controller.object_ids() == ["spec"]
        assert a.controller.is_shared("spec")

    def test_bound_component_must_expose_state_accessors(self, sharing_domain):
        a = orgs(sharing_domain)[0]

        class NotAnEntity:
            pass

        with pytest.raises(CoordinationError):
            a.controller.bind_component("spec", NotAnEntity())


class TestMembershipProtocols:
    def test_connect_admits_new_member_with_bootstrap(self, domain_factory):
        domain = domain_factory(3)
        a, b, c = orgs(domain)
        # Initially only a and b share the document.
        for org in (a, b):
            org.share_object("contract", {"terms": "draft"}, [a.uri, b.uri])
        a.propose_update("contract", {"terms": "v1"})
        outcome = a.controller.connect_member("contract", c.uri)
        assert outcome.agreed
        for org in (a, b, c):
            assert org.controller.is_shared("contract")
            assert set(org.controller.members("contract")) == {a.uri, b.uri, c.uri}
        # The newly admitted member received the current state and version.
        assert c.shared_state("contract") == {"terms": "v1"}
        assert c.shared_version("contract") == 1
        # And can immediately participate in coordination.
        update = c.propose_update("contract", {"terms": "v2"})
        assert update.agreed
        assert a.shared_state("contract") == {"terms": "v2"}

    def test_disconnect_removes_member_everywhere(self, domain_factory):
        domain = domain_factory(3)
        a, b, c = orgs(domain)
        domain.share_object("contract", {"terms": "draft"})
        outcome = a.controller.disconnect_member("contract", c.uri)
        assert outcome.agreed
        assert set(a.controller.members("contract")) == {a.uri, b.uri}
        assert set(b.controller.members("contract")) == {a.uri, b.uri}
        # The removed member no longer shares the object.
        assert not c.controller.is_shared("contract")
        # Updates continue among the remaining members.
        assert a.propose_update("contract", {"terms": "final"}).agreed

    def test_connect_of_existing_member_rejected(self, sharing_domain):
        a, b, _ = orgs(sharing_domain)
        with pytest.raises(MembershipError):
            a.controller.connect_member("spec", b.uri)

    def test_disconnect_of_non_member_rejected(self, sharing_domain):
        a = orgs(sharing_domain)[0]
        with pytest.raises(MembershipError):
            a.controller.disconnect_member("spec", "urn:org:stranger")


class TestRollup:
    def test_rollup_coordinates_once(self, sharing_domain):
        a, b, _ = orgs(sharing_domain)
        runs_before = len(a.evidence_store.run_ids())
        with a.controller.rollup("spec"):
            a.propose_update("spec", {"sections": {"s1": "a"}, "revision": 1})
            a.propose_update("spec", {"sections": {"s1": "a", "s2": "b"}, "revision": 2})
        # Exactly one coordination run happened for the whole rollup.
        assert len(a.evidence_store.run_ids()) == runs_before + 1
        assert b.shared_state("spec")["sections"] == {"s1": "a", "s2": "b"}
        assert b.shared_version("spec") == 1

    def test_rollup_reverts_on_exception(self, sharing_domain):
        a, b, _ = orgs(sharing_domain)
        before = a.shared_state("spec")
        with pytest.raises(RuntimeError):
            with a.controller.rollup("spec"):
                a.propose_update("spec", {"sections": {"tmp": "x"}, "revision": 1})
                raise RuntimeError("abandon changes")
        assert a.shared_state("spec") == before
        assert b.shared_state("spec") == before

    def test_rollup_veto_restores_component(self, sharing_domain):
        a, b, _ = orgs(sharing_domain)
        b.controller.add_validator("spec", CallableValidator(lambda ctx: False, name="no"))
        with pytest.raises(CoordinationError):
            with a.controller.rollup("spec"):
                a.propose_update("spec", {"sections": {"tmp": "x"}, "revision": 1})
        assert a.shared_state("spec")["sections"] == {}


class TestEntityComponentIntegration:
    def test_mutator_on_entity_bean_triggers_coordination(self, domain_factory):
        domain = domain_factory(2)
        a, b = orgs(domain)
        domain.share_object("spec-doc", SpecificationDocument().get_state())
        descriptor = ComponentDescriptor(
            name="spec-doc",
            component_type=ComponentType.ENTITY,
            b2b_object=True,
        )
        document_a = SpecificationDocument()
        a.deploy(document_a, descriptor)
        document_b = SpecificationDocument()
        b.deploy(document_b, ComponentDescriptor(
            name="spec-doc", component_type=ComponentType.ENTITY, b2b_object=True
        ))

        result = a.container.dispatch(
            Invocation(component="spec-doc", method="set_section", args=["intro", "hello"])
        )
        assert result.succeeded
        # Both replicas and both entity instances converge on the agreed state.
        assert a.shared_state("spec-doc")["sections"] == {"intro": "hello"}
        assert b.shared_state("spec-doc")["sections"] == {"intro": "hello"}
        assert document_b.read_section("intro") == "hello"

    def test_read_methods_do_not_coordinate(self, domain_factory):
        domain = domain_factory(2)
        a, b = orgs(domain)
        domain.share_object("spec-doc", SpecificationDocument().get_state())
        a.deploy(
            SpecificationDocument(),
            ComponentDescriptor(name="spec-doc", component_type=ComponentType.ENTITY, b2b_object=True),
        )
        runs_before = len(a.evidence_store.run_ids())
        result = a.container.dispatch(
            Invocation(component="spec-doc", method="read_section", args=["intro"])
        )
        assert result.succeeded
        assert len(a.evidence_store.run_ids()) == runs_before

    def test_vetoed_mutation_rolls_back_entity(self, domain_factory):
        domain = domain_factory(2)
        a, b = orgs(domain)
        domain.share_object("spec-doc", SpecificationDocument().get_state())
        document_a = SpecificationDocument()
        a.deploy(
            document_a,
            ComponentDescriptor(name="spec-doc", component_type=ComponentType.ENTITY, b2b_object=True),
        )
        b.controller.add_validator("spec-doc", CallableValidator(lambda ctx: False, name="no"))
        result = a.container.dispatch(
            Invocation(component="spec-doc", method="set_section", args=["intro", "rejected"])
        )
        assert not result.succeeded
        assert document_a.read_section("intro") is None
        assert a.shared_state("spec-doc")["sections"] == {}


class TestProtocolHandlerRobustness:
    def test_unknown_action_rejected(self, sharing_domain):
        from repro.core.messages import B2BProtocolMessage
        from repro.errors import ProtocolError

        a, b, _ = orgs(sharing_domain)
        message = B2BProtocolMessage(
            run_id="r",
            protocol=NR_SHARING_PROTOCOL,
            step=1,
            sender=a.uri,
            recipient=b.uri,
            attributes={"action": "nonsense"},
        )
        with pytest.raises(ProtocolError):
            b.controller.handler.process_request(message)
        one_way = B2BProtocolMessage(
            run_id="r2",
            protocol=NR_SHARING_PROTOCOL,
            step=3,
            sender=a.uri,
            recipient=b.uri,
            attributes={"action": "nonsense"},
        )
        with pytest.raises(ProtocolError):
            b.controller.handler.process(one_way)

    def test_duplicate_outcome_delivery_is_idempotent(self, sharing_domain):
        a, b, _ = orgs(sharing_domain)
        outcome = a.propose_update("spec", {"sections": {"k": "v"}, "revision": 1})
        assert b.shared_version("spec") == 1
        # Replaying the outcome (e.g. duplicated by the network) changes nothing.
        runs = b.controller.handler.runs
        assert runs.get(outcome.run_id) is not None
        assert b.shared_version("spec") == 1
