"""Unit tests for the run journal and the wire-type registry decorator."""

from dataclasses import dataclass

import pytest

from repro.errors import PersistenceError
from repro.persistence.run_journal import (
    PHASE_COMMITTED,
    PHASE_PROPOSED,
    PHASE_SETTLED,
    RunJournal,
)
from repro.persistence.storage import InMemoryBackend
from repro.transport.wire.wirecodec import decode_body, encode_body, wire_type


def _propose(journal, run_id, peers=("urn:org:b", "urn:org:c")):
    journal.record_proposed(
        run_id,
        kind="update",
        object_id="obj-1",
        proposer="urn:org:a",
        peers=list(peers),
        proposal={"proposed_state": {"v": 1}},
        deadline=12.5,
    )


def _commit(journal, run_id):
    journal.record_committed(
        run_id,
        payload={"object_id": "obj-1"},
        attributes={"action": "outcome"},
        recipients=["urn:org:b", "urn:org:c"],
        message_ids={"urn:org:b": "msg-1", "urn:org:c": "msg-2"},
        step=3,
        nr_outcome={"token_type": "nr-outcome"},
        apply={"agreed": True, "new_version": 1},
    )


class TestRunJournal:
    def test_proposed_record_round_trips(self):
        journal = RunJournal(owner="urn:org:a")
        _propose(journal, "run-1")
        run = journal.run("run-1")
        assert run.phase == PHASE_PROPOSED
        assert run.open
        assert run.proposed["kind"] == "update"
        assert run.proposed["proposer"] == "urn:org:a"
        assert run.proposed["peers"] == ["urn:org:b", "urn:org:c"]
        assert run.proposed["proposal"] == {"proposed_state": {"v": 1}}
        assert run.proposed["deadline"] == 12.5
        assert run.committed is None and run.settled is None

    def test_committed_record_round_trips_and_outranks_proposed(self):
        journal = RunJournal(owner="urn:org:a")
        _propose(journal, "run-1")
        _commit(journal, "run-1")
        run = journal.run("run-1")
        assert run.phase == PHASE_COMMITTED
        assert run.open
        assert run.committed["message_ids"] == {
            "urn:org:b": "msg-1",
            "urn:org:c": "msg-2",
        }
        assert run.committed["step"] == 3
        assert run.committed["apply"] == {"agreed": True, "new_version": 1}
        # The proposed record is still available alongside.
        assert run.proposed["object_id"] == "obj-1"

    def test_settled_record_closes_the_run(self):
        journal = RunJournal(owner="urn:org:a")
        _propose(journal, "run-1")
        _commit(journal, "run-1")
        journal.record_settled("run-1", agreed=True, reason="completed")
        run = journal.run("run-1")
        assert run.phase == PHASE_SETTLED
        assert not run.open
        assert run.settled == {
            "run_id": "run-1",
            "phase": PHASE_SETTLED,
            "agreed": True,
            "reason": "completed",
        }

    def test_open_runs_skips_settled_and_sorts_by_run_id(self):
        journal = RunJournal(owner="urn:org:a")
        _propose(journal, "run-c")
        _propose(journal, "run-a")
        _propose(journal, "run-b")
        journal.record_settled("run-b", agreed=False, reason="aborted")
        assert [run.run_id for run in journal.open_runs()] == ["run-a", "run-c"]

    def test_owner_prefix_isolates_journals_on_a_shared_backend(self):
        backend = InMemoryBackend()
        alpha = RunJournal(owner="urn:org:a", backend=backend)
        beta = RunJournal(owner="urn:org:b", backend=backend)
        _propose(alpha, "run-1")
        _propose(beta, "run-2")
        assert list(alpha.all_runs()) == ["run-1"]
        assert list(beta.all_runs()) == ["run-2"]

    def test_forget_drops_every_phase_record(self):
        backend = InMemoryBackend()
        journal = RunJournal(owner="urn:org:a", backend=backend)
        _propose(journal, "run-1")
        _commit(journal, "run-1")
        journal.record_settled("run-1", agreed=True)
        journal.forget("run-1")
        assert journal.run("run-1") is None
        assert backend.keys() == []

    def test_prune_settled_keeps_open_runs(self):
        journal = RunJournal(owner="urn:org:a")
        _propose(journal, "run-open")
        _propose(journal, "run-done")
        journal.record_settled("run-done", agreed=True)
        assert journal.prune_settled() == 1
        assert journal.run("run-done") is None
        assert journal.run("run-open").open

    def test_corrupt_record_raises_persistence_error(self):
        backend = InMemoryBackend()
        journal = RunJournal(owner="urn:org:a", backend=backend)
        backend.put("runjournal:urn:org:a:run-1:proposed", b"\xff not json")
        with pytest.raises(PersistenceError, match="corrupt run-journal"):
            journal.all_runs()

    def test_record_without_phase_or_run_id_raises(self):
        from repro import codec

        backend = InMemoryBackend()
        journal = RunJournal(owner="urn:org:a", backend=backend)
        backend.put(
            "runjournal:urn:org:a:run-1:proposed",
            codec.encode({"phase": "nonsense", "run_id": "run-1"}),
        )
        with pytest.raises(PersistenceError, match="valid phase"):
            journal.all_runs()

    def test_journal_survives_backend_reopen(self, tmp_path):
        from repro.persistence.storage import FileBackend

        directory = str(tmp_path / "journal")
        journal = RunJournal(owner="urn:org:a", backend=FileBackend(directory))
        _propose(journal, "run-1")
        _commit(journal, "run-1")
        reopened = RunJournal(owner="urn:org:a", backend=FileBackend(directory))
        run = reopened.run("run-1")
        assert run.phase == PHASE_COMMITTED
        assert run.committed["recipients"] == ["urn:org:b", "urn:org:c"]


class TestWireTypeDecorator:
    def test_bare_decorator_round_trips_through_the_wire_codec(self):
        @wire_type
        @dataclass(frozen=True)
        class _Parcel:
            weight: int
            label: str

            def to_dict(self):
                return {"weight": self.weight, "label": self.label}

            @classmethod
            def from_dict(cls, data):
                return cls(weight=data["weight"], label=data["label"])

        body = encode_body({"payload": _Parcel(weight=3, label="fragile")})
        revived = decode_body(body)["payload"]
        assert isinstance(revived, _Parcel)
        assert revived == _Parcel(weight=3, label="fragile")

    def test_name_override_registers_under_the_given_tag(self):
        @wire_type(name="_RenamedParcel")
        @dataclass(frozen=True)
        class _Inner:
            value: int

            def to_dict(self):
                return {"value": self.value}

            @classmethod
            def from_dict(cls, data):
                return cls(value=data["value"])

        from repro.transport.wire.wirecodec import _reviver_for

        assert _reviver_for("_RenamedParcel")({"value": 7}) == _Inner(value=7)

    def test_missing_from_dict_is_rejected(self):
        with pytest.raises(TypeError, match="from_dict"):

            @wire_type
            class _NoFromDict:
                def to_dict(self):
                    return {}

    def test_missing_to_dict_is_rejected(self):
        with pytest.raises(TypeError, match="to_dict"):

            @wire_type
            class _NoToDict:
                @classmethod
                def from_dict(cls, data):
                    return cls()

    def test_run_abort_notice_is_wire_revivable(self):
        from repro.core.sharing import RunAbortNotice

        notice = RunAbortNotice(
            run_id="run-1",
            object_id="obj-1",
            proposer="urn:org:a",
            reason="recovered after crash",
        )
        revived = decode_body(encode_body({"payload": notice}))["payload"]
        assert isinstance(revived, RunAbortNotice)
        assert revived == notice
