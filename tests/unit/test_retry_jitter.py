"""Unit tests for opt-in full-jitter retry backoff.

The default policy must keep its historical fixed schedule byte-for-byte;
``jitter="full"`` must stay within the exponential envelope, be a pure
deterministic function of ``(jitter_seed, attempt)``, and vary across
seeds and attempts.
"""

from __future__ import annotations

import pytest

from repro.transport.delivery import (
    JITTER_FULL,
    JITTER_NONE,
    ReliableChannel,
    RetryPolicy,
)
from repro.clock import SimulatedClock
from repro.errors import DeliveryError
from repro.transport.network import SimulatedNetwork


class TestJitterPolicy:
    def test_default_schedule_is_unchanged(self):
        policy = RetryPolicy(
            backoff_seconds=0.05, backoff_multiplier=2.0, max_backoff_seconds=2.0
        )
        assert policy.jitter == JITTER_NONE
        assert [policy.backoff_for_attempt(n) for n in range(8)] == [
            0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 2.0, 2.0,
        ]

    def test_full_jitter_stays_within_the_envelope(self):
        policy = RetryPolicy(jitter=JITTER_FULL, jitter_seed=b"envelope")
        base = RetryPolicy()
        for attempt in range(12):
            delay = policy.backoff_for_attempt(attempt)
            assert 0.0 <= delay <= base.backoff_for_attempt(attempt)

    def test_full_jitter_is_deterministic_per_seed_and_attempt(self):
        one = RetryPolicy(jitter=JITTER_FULL, jitter_seed=b"seed")
        two = RetryPolicy(jitter=JITTER_FULL, jitter_seed=b"seed")
        assert [one.backoff_for_attempt(n) for n in range(10)] == [
            two.backoff_for_attempt(n) for n in range(10)
        ]

    def test_different_seeds_and_attempts_spread(self):
        a = RetryPolicy(jitter=JITTER_FULL, jitter_seed=b"alpha")
        b = RetryPolicy(jitter=JITTER_FULL, jitter_seed=b"beta")
        assert a.backoff_for_attempt(3) != b.backoff_for_attempt(3)
        # Attempts draw independent fractions, not a single scaled curve.
        series = [a.backoff_for_attempt(n) for n in range(6)]
        unscaled = [RetryPolicy().backoff_for_attempt(n) for n in range(6)]
        ratios = {
            round(got / full, 12)
            for got, full in zip(series, unscaled)
        }
        assert len(ratios) > 1

    def test_zero_backoff_stays_zero(self):
        policy = RetryPolicy(
            jitter=JITTER_FULL, backoff_seconds=0.0, max_backoff_seconds=0.0
        )
        assert policy.backoff_for_attempt(5) == 0.0

    def test_jitter_validation(self):
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter="bogus")


class TestJitteredChannel:
    def test_blocking_retries_pay_the_jittered_schedule(self):
        clock = SimulatedClock()
        network = SimulatedNetwork(clock=clock)
        network.register("urn:dead", lambda message: "pong")
        network.set_online("urn:dead", False)
        policy = RetryPolicy(
            max_attempts=4, jitter=JITTER_FULL, jitter_seed=b"channel"
        )
        channel = ReliableChannel(network, "urn:src", policy=policy)
        start = clock.now()
        with pytest.raises(DeliveryError):
            channel.send("urn:dead", "ping", {})
        slept = clock.now() - start
        expected = sum(policy.backoff_for_attempt(n) for n in range(3))
        assert slept == pytest.approx(expected)
        assert 0.0 < slept < sum(
            RetryPolicy().backoff_for_attempt(n) for n in range(3)
        )
