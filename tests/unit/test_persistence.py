"""Unit tests for storage backends, audit log, evidence store and state store."""

import pytest

from repro.clock import SimulatedClock
from repro.errors import (
    AuditLogError,
    AuditLogTamperedError,
    PersistenceError,
    StateStoreError,
)
from repro.persistence.audit_log import AuditLog, AuditRecord
from repro.persistence.evidence_store import EvidenceStore
from repro.persistence.state_store import StateStore
from repro.persistence.storage import FileBackend, InMemoryBackend


class TestInMemoryBackend:
    def test_put_get_delete(self):
        backend = InMemoryBackend()
        backend.put("key", b"value")
        assert backend.get("key") == b"value"
        assert "key" in backend
        backend.delete("key")
        assert backend.get("key") is None

    def test_keys_preserve_insertion_order(self):
        backend = InMemoryBackend()
        for name in ("c", "a", "b"):
            backend.put(name, b"x")
        assert backend.keys() == ["c", "a", "b"]

    def test_values_must_be_bytes(self):
        with pytest.raises(PersistenceError):
            InMemoryBackend().put("key", "not bytes")

    def test_items_iterates_pairs(self):
        backend = InMemoryBackend()
        backend.put("a", b"1")
        backend.put("b", b"2")
        assert dict(backend.items()) == {"a": b"1", "b": b"2"}


class TestFileBackend:
    def test_roundtrip_and_persistence(self, tmp_path):
        directory = str(tmp_path / "store")
        backend = FileBackend(directory)
        backend.put("record:1", b"payload-1")
        backend.put("record:2", b"payload-2")
        # A new backend over the same directory sees the same data and order.
        reopened = FileBackend(directory)
        assert reopened.get("record:1") == b"payload-1"
        assert reopened.keys() == ["record:1", "record:2"]

    def test_overwrite_does_not_duplicate_index(self, tmp_path):
        backend = FileBackend(str(tmp_path / "store"))
        backend.put("key", b"one")
        backend.put("key", b"two")
        assert backend.keys() == ["key"]
        assert backend.get("key") == b"two"

    def test_delete_removes_record_and_index_entry(self, tmp_path):
        backend = FileBackend(str(tmp_path / "store"))
        backend.put("a", b"1")
        backend.put("b", b"2")
        backend.delete("a")
        assert backend.keys() == ["b"]
        assert backend.get("a") is None

    def test_unusual_key_characters(self, tmp_path):
        backend = FileBackend(str(tmp_path / "store"))
        key = "evidence:urn:org/a:run 1?*"
        backend.put(key, b"v")
        assert backend.get(key) == b"v"
        assert backend.keys() == [key]


class TestFileBackendCrashAtomicity:
    """A process killed mid-write must never corrupt or resurrect records."""

    def test_leftover_temp_files_are_swept_and_never_served(self, tmp_path):
        directory = str(tmp_path / "store")
        backend = FileBackend(directory)
        backend.put("key", b"committed")
        # Simulate a writer killed between temp-write and rename.
        temp = tmp_path / "store" / (bytes("key", "utf-8").hex() + ".rec.tmp")
        temp.write_bytes(b"torn half-write")
        orphan = tmp_path / "store" / "deadbeef.rec.tmp"
        orphan.write_bytes(b"unrelated torn write")
        reopened = FileBackend(directory)
        assert reopened.get("key") == b"committed"
        assert reopened.keys() == ["key"]
        assert not temp.exists()
        assert not orphan.exists()

    def test_torn_trailing_index_line_is_ignored_not_fatal(self, tmp_path):
        directory = str(tmp_path / "store")
        backend = FileBackend(directory)
        backend.put("a", b"1")
        backend.put("b", b"2")
        # Simulate a crash that tore the last index append mid-line: the
        # trailing entry is not valid hex and has no newline.
        with open(tmp_path / "store" / "_index", "ab") as index_file:
            index_file.write(b"6q")  # not hex -> torn
        reopened = FileBackend(directory)
        assert reopened.keys() == ["a", "b"]
        assert reopened.get("a") == b"1"
        # The reopened backend keeps working past the torn line.
        reopened.put("c", b"3")
        assert FileBackend(directory).keys() == ["a", "b", "c"]

    def test_record_file_without_index_entry_reads_as_never_written(
        self, tmp_path
    ):
        directory = str(tmp_path / "store")
        backend = FileBackend(directory)
        backend.put("kept", b"v")
        # Simulate a crash after the record rename but before the index
        # append committed the put.
        ghost = tmp_path / "store" / (bytes("ghost", "utf-8").hex() + ".rec")
        ghost.write_bytes(b"uncommitted")
        reopened = FileBackend(directory)
        assert reopened.get("ghost") is None
        assert reopened.keys() == ["kept"]

    def test_index_entry_without_record_file_is_skipped(self, tmp_path):
        directory = str(tmp_path / "store")
        backend = FileBackend(directory)
        backend.put("real", b"v")
        # An entry whose record file vanished (e.g. a crash mid-delete after
        # the old index was replaced by an older snapshot) must not be served.
        with open(tmp_path / "store" / "_index", "ab") as index_file:
            index_file.write(bytes("gone", "utf-8").hex().encode() + b"\n")
        reopened = FileBackend(directory)
        assert reopened.keys() == ["real"]
        assert reopened.get("gone") is None

    def test_delete_survives_reopen(self, tmp_path):
        directory = str(tmp_path / "store")
        backend = FileBackend(directory)
        backend.put("a", b"1")
        backend.put("b", b"2")
        backend.delete("a")
        reopened = FileBackend(directory)
        assert reopened.keys() == ["b"]
        assert reopened.get("a") is None


class TestAuditLog:
    def test_append_and_read_back(self):
        log = AuditLog("urn:org:a", clock=SimulatedClock(start=7.0))
        record = log.append("category", "subject-1", {"detail": 1})
        assert record.index == 0
        assert record.timestamp == 7.0
        assert log.record(0).details == {"detail": 1}
        assert len(log) == 1

    def test_filtering_by_category_and_subject(self):
        log = AuditLog("urn:org:a")
        log.append("cat.a", "run-1", {})
        log.append("cat.b", "run-1", {})
        log.append("cat.a", "run-2", {})
        assert len(log.records(category="cat.a")) == 2
        assert len(log.records(subject="run-1")) == 2
        assert len(log.records(category="cat.a", subject="run-2")) == 1

    def test_empty_category_rejected(self):
        with pytest.raises(AuditLogError):
            AuditLog("urn:org:a").append("", "subject")

    def test_missing_record_raises(self):
        with pytest.raises(AuditLogError):
            AuditLog("urn:org:a").record(3)

    def test_integrity_verification_passes_for_untouched_log(self):
        log = AuditLog("urn:org:a")
        for i in range(10):
            log.append("cat", f"run-{i}", {"i": i})
        assert log.verify_integrity()
        log.require_integrity()

    def test_tampering_with_backend_is_detected(self):
        backend = InMemoryBackend()
        log = AuditLog("urn:org:a", backend=backend)
        log.append("cat", "run-1", {"amount": 100})
        log.append("cat", "run-2", {"amount": 200})
        key = backend.keys()[0]
        tampered = backend.get(key).replace(b"100", b"999")
        backend.put(key, tampered)
        assert not log.verify_integrity()
        with pytest.raises(AuditLogTamperedError):
            log.require_integrity()

    def test_deleting_backend_record_is_detected(self):
        backend = InMemoryBackend()
        log = AuditLog("urn:org:a", backend=backend)
        log.append("cat", "run-1")
        log.append("cat", "run-2")
        backend.delete(backend.keys()[0])
        assert not log.verify_integrity()

    def test_replay_from_existing_backend(self):
        backend = InMemoryBackend()
        original = AuditLog("urn:org:a", backend=backend)
        original.append("cat", "run-1")
        original.append("cat", "run-2")
        reopened = AuditLog("urn:org:a", backend=backend)
        assert len(reopened) == 2
        assert reopened.verify_integrity()
        assert reopened.head_digest == original.head_digest

    def test_head_digest_changes_with_appends(self):
        log = AuditLog("urn:org:a")
        first = log.head_digest
        log.append("cat", "run")
        assert log.head_digest != first

    def test_audit_record_roundtrip(self):
        record = AuditRecord(index=3, category="c", subject="s", timestamp=1.0, details={"k": 1})
        assert AuditRecord.from_dict(record.to_dict()) == record


class TestEvidenceStore:
    def test_store_and_retrieve_by_run(self):
        store = EvidenceStore("urn:org:a", clock=SimulatedClock(start=1.0))
        store.store("run-1", "nro-request", {"token_id": "t1"}, role=store.ROLE_GENERATED)
        store.store("run-1", "nrr-request", {"token_id": "t2"}, role=store.ROLE_RECEIVED)
        store.store("run-2", "nro-request", {"token_id": "t3"})
        records = store.evidence_for_run("run-1")
        assert [r.token_type for r in records] == ["nro-request", "nrr-request"]
        assert store.run_ids() == ["run-1", "run-2"]
        assert store.total_records() == 3

    def test_tokens_of_type_filters(self):
        store = EvidenceStore("urn:org:a")
        store.store("run-1", "nro-request", {"token_id": "t1"})
        store.store("run-1", "nrr-request", {"token_id": "t2"})
        only = store.tokens_of_type("run-1", "nrr-request")
        assert len(only) == 1
        assert only[0].token["token_id"] == "t2"

    def test_invalid_role_rejected(self):
        with pytest.raises(PersistenceError):
            EvidenceStore("urn:org:a").store("run", "type", {}, role="bystander")

    def test_storage_bytes_grow_with_records(self):
        store = EvidenceStore("urn:org:a")
        store.store("run-1", "nro-request", {"payload": "x" * 10})
        small = store.storage_bytes()
        store.store("run-1", "nro-response", {"payload": "x" * 1000})
        assert store.storage_bytes() > small

    def test_rebuild_index_from_backend(self):
        backend = InMemoryBackend()
        store = EvidenceStore("urn:org:a", backend=backend)
        store.store("run-1", "nro-request", {"token_id": "t1"})
        reopened = EvidenceStore("urn:org:a", backend=backend)
        assert reopened.run_ids() == ["run-1"]
        assert len(reopened.evidence_for_run("run-1")) == 1

    def test_rebuild_index_restores_storage_order(self):
        # Backend keys() order is insertion order of that backend instance,
        # not necessarily the original storage order: a rebuilt index must
        # order records by the sequence suffix baked into each key.
        backend = InMemoryBackend()
        store = EvidenceStore("urn:org:a", backend=backend)
        types = ["nro-request", "nrr-request", "nro-response", "nrr-response"]
        for token_type in types:
            store.store("run-1", token_type, {"token_id": token_type})
        shuffled = InMemoryBackend()
        for key in reversed(backend.keys()):
            shuffled.put(key, backend.get(key))
        reopened = EvidenceStore("urn:org:a", backend=shuffled)
        assert [r.token_type for r in reopened.evidence_for_run("run-1")] == types
        # New records continue the per-run sequence after a rebuild.
        reopened.store("run-1", "nr-outcome", {"token_id": "t5"})
        assert [r.token_type for r in reopened.evidence_for_run("run-1")][-1] == (
            "nr-outcome"
        )

    def test_storage_bytes_matches_backend_contents(self):
        # storage_bytes is O(1) (a running total); it must stay equal to the
        # actual backend byte count, including after an index rebuild.
        backend = InMemoryBackend()
        store = EvidenceStore("urn:org:a", backend=backend)
        for index in range(4):
            store.store("run-1", "nro-request", {"payload": "x" * (10 * index)})
        expected = sum(len(backend.get(key)) for key in backend.keys())
        assert store.storage_bytes() == expected
        reopened = EvidenceStore("urn:org:a", backend=backend)
        assert reopened.storage_bytes() == expected

    def test_tokens_of_type_uses_type_index(self):
        store = EvidenceStore("urn:org:a")
        for index in range(3):
            store.store("run-1", "nro-request", {"token_id": f"req-{index}"})
            store.store("run-1", "nr-decision", {"token_id": f"dec-{index}"})
        decisions = store.tokens_of_type("run-1", "nr-decision")
        assert [r.token["token_id"] for r in decisions] == ["dec-0", "dec-1", "dec-2"]
        assert store.tokens_of_type("run-1", "nr-outcome") == []

    def test_decoded_records_are_memoised(self):
        store = EvidenceStore("urn:org:a")
        store.store("run-1", "nro-request", {"token_id": "t1"})
        first = store.evidence_for_run("run-1")
        second = store.evidence_for_run("run-1")
        assert first[0] is second[0]  # decoded once, served from the memo

    def test_unknown_run_returns_empty(self):
        assert EvidenceStore("urn:org:a").evidence_for_run("missing") == []


class TestStateStore:
    def test_store_and_resolve_digest(self):
        store = StateStore("urn:org:a")
        digest = store.store_state({"doc": "v1", "amount": 3})
        assert store.resolve_digest(digest) == {"doc": "v1", "amount": 3}
        assert store.has_digest(digest)

    def test_equal_states_share_digest(self):
        store = StateStore("urn:org:a")
        assert store.store_state({"a": 1, "b": 2}) == store.store_state({"b": 2, "a": 1})

    def test_missing_digest_raises(self):
        with pytest.raises(StateStoreError):
            StateStore("urn:org:a").resolve_digest(b"\x00" * 32)

    def test_version_history(self):
        store = StateStore("urn:org:a")
        v0, d0 = store.record_version("doc", {"rev": 0})
        v1, d1 = store.record_version("doc", {"rev": 1})
        assert (v0, v1) == (0, 1)
        assert store.version_count("doc") == 2
        assert store.state_at_version("doc", 0) == {"rev": 0}
        assert store.state_at_version("doc", 1) == {"rev": 1}
        assert store.latest_digest("doc") == d1
        assert store.version_digest("doc", 0) == d0

    def test_is_agreed_state(self):
        store = StateStore("urn:org:a")
        store.record_version("doc", {"rev": 0})
        assert store.is_agreed_state("doc", {"rev": 0})
        assert not store.is_agreed_state("doc", {"rev": 99})

    def test_unknown_version_raises(self):
        store = StateStore("urn:org:a")
        store.record_version("doc", {"rev": 0})
        with pytest.raises(StateStoreError):
            store.version_digest("doc", 5)

    def test_latest_digest_none_for_unknown_object(self):
        assert StateStore("urn:org:a").latest_digest("missing") is None

    def test_object_ids_listed(self):
        store = StateStore("urn:org:a")
        store.record_version("b-doc", {})
        store.record_version("a-doc", {})
        assert store.object_ids() == ["a-doc", "b-doc"]

    def test_digest_of_matches_store_state(self):
        store = StateStore("urn:org:a")
        state = {"x": [1, 2, 3]}
        assert store.store_state(state) == StateStore.digest_of(state)
