"""Unit tests for the event-driven retry engine (scheduler + channel modes)."""

import threading

import pytest

from repro.clock import SimulatedClock, SystemClock
from repro.errors import DeliveryError, UnknownEndpointError
from repro.transport.delivery import ReliableChannel, RetryPolicy
from repro.transport.network import FaultModel, SimulatedNetwork
from repro.transport.scheduler import DeliveryFuture, RetryScheduler, wait_all


def scheduled_network(fault_model=None, clock=None):
    clock = clock or SimulatedClock()
    network = SimulatedNetwork(fault_model, clock=clock)
    network.set_retry_scheduler(RetryScheduler(clock))
    return network


class TestRetryScheduler:
    def test_timers_fire_in_deadline_order(self):
        clock = SimulatedClock()
        scheduler = RetryScheduler(clock)
        fired = []
        scheduler.schedule(0.3, lambda: fired.append("late"))
        scheduler.schedule(0.1, lambda: fired.append("early"))
        scheduler.schedule(0.2, lambda: fired.append("middle"))
        scheduler.drive_until(lambda: len(fired) == 3)
        assert fired == ["early", "middle", "late"]
        assert clock.now() == pytest.approx(0.3)
        assert scheduler.timers_fired == 3
        assert scheduler.pending_timers() == 0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            RetryScheduler(SimulatedClock()).schedule(-0.1, lambda: None)

    def test_cancelled_timer_never_fires(self):
        clock = SimulatedClock()
        scheduler = RetryScheduler(clock)
        fired = []
        handle = scheduler.schedule(0.1, lambda: fired.append("cancelled"))
        scheduler.schedule(0.2, lambda: fired.append("kept"))
        assert handle.cancel() is True
        assert handle.cancelled
        scheduler.drive_until(lambda: len(fired) == 1)
        assert fired == ["kept"]
        assert scheduler.timers_cancelled == 1
        assert scheduler.pending_timers() == 0

    def test_cancel_after_fire_reports_false(self):
        scheduler = RetryScheduler(SimulatedClock())
        handle = scheduler.schedule(0.0, lambda: None)
        assert scheduler.fire_due() == 1
        assert handle.fired
        assert handle.cancel() is False

    def test_callback_can_schedule_follow_up(self):
        clock = SimulatedClock()
        scheduler = RetryScheduler(clock)
        fired = []

        def first():
            fired.append("first")
            scheduler.schedule(0.5, lambda: fired.append("second"))

        scheduler.schedule(0.25, first)
        scheduler.drive_until(lambda: len(fired) == 2)
        assert fired == ["first", "second"]
        assert clock.now() == pytest.approx(0.75)

    def test_waiting_thread_drives_other_runs_timers(self):
        # The thread waiting on its own future fires whatever is due,
        # including timers belonging to other deliveries.
        clock = SimulatedClock()
        scheduler = RetryScheduler(clock)
        future = DeliveryFuture(scheduler)
        scheduler.schedule(0.2, lambda: future.complete("done"))
        assert future.result() == "done"
        assert clock.now() == pytest.approx(0.2)

    def test_wall_clock_timers_fire_without_dedicated_thread(self):
        scheduler = RetryScheduler(SystemClock())
        future = DeliveryFuture(scheduler)
        scheduler.schedule(0.02, lambda: future.complete("ticked"))
        assert future.result(timeout=5.0) == "ticked"

    def test_cancel_all(self):
        scheduler = RetryScheduler(SimulatedClock())
        scheduler.schedule(0.1, lambda: None)
        scheduler.schedule(0.2, lambda: None)
        assert scheduler.cancel_all() == 2
        assert scheduler.pending_timers() == 0

    def test_on_cancel_hook_fires_exactly_once_outside_cancel(self):
        scheduler = RetryScheduler(SimulatedClock())
        cancelled = []
        handle = scheduler.schedule(0.1, lambda: None, on_cancel=lambda: cancelled.append(1))
        assert handle.cancel() is True
        assert handle.cancel() is False
        assert cancelled == [1]

    def test_on_cancel_hook_not_fired_when_timer_fires(self):
        scheduler = RetryScheduler(SimulatedClock())
        events = []
        scheduler.schedule(0.0, lambda: events.append("fired"), on_cancel=lambda: events.append("cancelled"))
        assert scheduler.fire_due() == 1
        assert events == ["fired"]

    def test_cancel_run_withdraws_only_that_runs_timers(self):
        clock = SimulatedClock()
        scheduler = RetryScheduler(clock)
        fired, cancelled = [], []
        scheduler.schedule(0.1, lambda: fired.append("a1"), run_id="run-a",
                           on_cancel=lambda: cancelled.append("a1"))
        scheduler.schedule(0.3, lambda: fired.append("a2"), run_id="run-a",
                           on_cancel=lambda: cancelled.append("a2"))
        scheduler.schedule(0.2, lambda: fired.append("b"), run_id="run-b")
        untagged = scheduler.schedule(0.2, lambda: fired.append("plain"))
        assert scheduler.pending_timers_for_run("run-a") == 2
        assert scheduler.cancel_run("run-a") == 2
        assert sorted(cancelled) == ["a1", "a2"]
        assert scheduler.pending_timers_for_run("run-a") == 0
        assert scheduler.pending_timers() == 2  # run-b and the untagged timer
        scheduler.drive_until(lambda: len(fired) == 2)
        assert sorted(fired) == ["b", "plain"]
        assert not untagged.cancelled

    def test_cancel_run_with_no_matching_timers_is_a_no_op(self):
        scheduler = RetryScheduler(SimulatedClock())
        scheduler.schedule(0.1, lambda: None, run_id="other")
        assert scheduler.cancel_run("missing") == 0
        assert scheduler.pending_timers() == 1


class TestScheduledSend:
    def test_healthy_link_completes_inline(self):
        network = scheduled_network()
        network.register("urn:dst", lambda message: "ok")
        channel = ReliableChannel(network, "urn:src")
        future = channel.send_scheduled("urn:dst", "op", {})
        assert future.done()  # first attempt ran on the calling thread
        assert future.result() == "ok"
        assert network.retry_scheduler.timers_scheduled == 0

    def test_permanent_failure_completes_immediately_without_timer(self):
        network = scheduled_network()
        channel = ReliableChannel(network, "urn:src", RetryPolicy(max_attempts=5))
        future = channel.send_scheduled("urn:nowhere", "op", {})
        assert future.done()
        with pytest.raises(UnknownEndpointError):
            future.result()
        # Permanent failures must not schedule a reattempt.
        assert network.retry_scheduler.timers_scheduled == 0
        assert channel.attempts_made == 1

    def test_handler_exception_completes_without_retry(self):
        network = scheduled_network()

        def failing(message):
            raise RuntimeError("handler blew up")

        network.register("urn:dst", failing)
        channel = ReliableChannel(network, "urn:src")
        future = channel.send_scheduled("urn:dst", "op", {})
        with pytest.raises(RuntimeError, match="handler blew up"):
            future.result()
        assert network.retry_scheduler.timers_scheduled == 0

    def test_budget_exhaustion_matches_policy_and_backoff_schedule(self):
        clock = SimulatedClock()
        network = scheduled_network(clock=clock)
        network.register("urn:dst", lambda message: "ok")
        network.set_online("urn:dst", False)
        policy = RetryPolicy(
            max_attempts=4,
            backoff_seconds=0.1,
            backoff_multiplier=2.0,
            max_backoff_seconds=0.25,
        )
        channel = ReliableChannel(network, "urn:src", policy)
        future = channel.send_scheduled("urn:dst", "op", {})
        with pytest.raises(DeliveryError, match="failed after 4 attempts"):
            future.result()
        assert channel.attempts_made == 4
        assert channel.retries_made == 3
        # The scheduler must honour backoff_for_attempt exactly: waits are
        # 0.1, 0.2, then capped at 0.25 -- never the uncapped 0.4.
        expected = sum(policy.backoff_for_attempt(n) for n in range(3))
        assert clock.now() == pytest.approx(expected)
        assert network.retry_scheduler.pending_timers() == 0

    def test_eventual_success_on_lossy_link(self):
        network = scheduled_network(
            FaultModel(drop_probability=0.8, max_consecutive_drops=4, seed=b"lossy")
        )
        network.register("urn:dst", lambda message: "delivered")
        channel = ReliableChannel(network, "urn:src", RetryPolicy(max_attempts=20))
        assert channel.send_scheduled("urn:dst", "op", {}).result() == "delivered"

    def test_blocking_entry_point_delegates_to_scheduler(self):
        clock = SimulatedClock()
        network = scheduled_network(clock=clock)
        network.register("urn:dst", lambda message: "ok")
        network.partition.sever("urn:src", "urn:dst")
        channel = ReliableChannel(
            network, "urn:src", RetryPolicy(max_attempts=3, backoff_seconds=0.5)
        )
        with pytest.raises(DeliveryError):
            channel.send("urn:dst", "op", {})
        # The wait went through scheduler timers, not clock.sleep loops.
        assert network.retry_scheduler.timers_fired == 2

    def test_concurrent_retry_waits_overlap_in_virtual_time(self):
        clock = SimulatedClock()
        network = scheduled_network(clock=clock)
        network.register("urn:a", lambda message: "a")
        network.register("urn:b", lambda message: "b")
        network.partition.sever("urn:src", "urn:a")
        network.partition.sever("urn:src", "urn:b")
        policy = RetryPolicy(max_attempts=5, backoff_seconds=1.0, backoff_multiplier=1.0)
        channel = ReliableChannel(network, "urn:src", policy)
        futures = [
            channel.send_scheduled("urn:a", "op", {}),
            channel.send_scheduled("urn:b", "op", {}),
        ]
        network.partition.heal_all()
        wait_all(futures)
        assert [future.result() for future in futures] == ["a", "b"]
        # Both backoffs were pending together, so virtual time advanced once.
        assert clock.now() == pytest.approx(1.0)


class TestScheduledBatch:
    def test_mixed_outcomes_resolve_per_entry(self):
        network = scheduled_network()
        network.register("urn:ok", lambda message: "fine")
        network.register("urn:flaky", lambda message: "eventually")
        network.partition.sever("urn:src", "urn:flaky")
        channel = ReliableChannel(
            network, "urn:src", RetryPolicy(max_attempts=4, backoff_seconds=0.1)
        )
        futures = channel.send_batch_scheduled(
            [
                ("urn:ok", "op", {}),
                ("urn:missing", "op", {}),
                ("urn:flaky", "op", {}),
            ]
        )
        # Entries with an immediate outcome resolved on the first attempt.
        assert futures[0].done() and futures[0].outcome().result == "fine"
        assert futures[1].done()
        assert isinstance(futures[1].outcome().error, UnknownEndpointError)
        assert not futures[2].done()
        network.partition.heal_all()
        wait_all(futures)
        assert futures[2].outcome().result == "eventually"

    def test_batch_budget_exhaustion_message_matches_blocking_mode(self):
        def run(scheduled):
            network = SimulatedNetwork()
            if scheduled:
                network.set_retry_scheduler(RetryScheduler(network.clock))
            network.register("urn:dst", lambda message: "ok")
            network.set_online("urn:dst", False)
            channel = ReliableChannel(
                network, "urn:src", RetryPolicy(max_attempts=3, backoff_seconds=0.01)
            )
            results = channel.send_batch([("urn:dst", "op", {})])
            return str(results[0].error), channel.attempts_made, channel.retries_made

        assert run(scheduled=False) == run(scheduled=True)

    def test_channel_close_cancels_in_flight_retries_without_leaking_timers(self):
        network = scheduled_network()
        network.register("urn:dst", lambda message: "ok")
        network.partition.sever("urn:src", "urn:dst")
        channel = ReliableChannel(
            network, "urn:src", RetryPolicy(max_attempts=10, backoff_seconds=1.0)
        )
        futures = channel.send_batch_scheduled(
            [("urn:dst", "op", {}), ("urn:dst", "other-op", {})]
        )
        single = channel.send_scheduled("urn:dst", "op", {})
        scheduler = network.retry_scheduler
        assert channel.pending_retries() == 2  # one batch timer + one send timer
        assert scheduler.pending_timers() == 2
        channel.close()
        assert scheduler.pending_timers() == 0
        assert channel.pending_retries() == 0
        for future in futures:
            assert isinstance(future.outcome().error, DeliveryError)
            assert "closed" in str(future.outcome().error)
        with pytest.raises(DeliveryError, match="closed"):
            single.result()
        # Close is idempotent and new sends after close fail cleanly.
        channel.close()

    def test_cancel_run_resolves_channel_futures_without_leaking_timers(self):
        # The run-level sibling of close(): cancelling by run tag withdraws
        # the batch's pending reattempt and resolves its futures.
        network = scheduled_network()
        network.register("urn:dst", lambda message: "ok")
        network.partition.sever("urn:src", "urn:dst")
        channel = ReliableChannel(
            network, "urn:src", RetryPolicy(max_attempts=10, backoff_seconds=1.0),
            run_id="run-x",
        )
        futures = channel.send_batch_scheduled(
            [("urn:dst", "op", {}), ("urn:dst", "other-op", {})]
        )
        scheduler = network.retry_scheduler
        assert scheduler.pending_timers_for_run("run-x") == 1
        assert scheduler.cancel_run("run-x") == 1
        assert scheduler.pending_timers() == 0
        assert channel.pending_retries() == 0
        for future in futures:
            assert isinstance(future.outcome().error, DeliveryError)

    def test_close_without_scheduler_is_a_no_op(self):
        network = SimulatedNetwork()
        channel = ReliableChannel(network, "urn:src")
        channel.close()
        assert channel.pending_retries() == 0


class TestRetryStatistics:
    def test_attempts_vs_deliveries_per_destination(self):
        network = SimulatedNetwork()
        network.register("urn:dst", lambda message: "ok")
        network.partition.sever("urn:src", "urn:dst")
        channel = ReliableChannel(
            network, "urn:src", RetryPolicy(max_attempts=3, backoff_seconds=0.0)
        )
        with pytest.raises(DeliveryError):
            channel.send("urn:dst", "op", {})
        network.partition.heal_all()
        channel.send("urn:dst", "op", {})
        stats = network.statistics
        assert stats.attempts_per_destination == {"urn:dst": 4}
        assert stats.deliveries_per_destination == {"urn:dst": 1}
        assert stats.failed_attempts_per_destination() == {"urn:dst": 3}

    def test_retry_counters_survive_snapshot_and_delta(self):
        network = SimulatedNetwork()
        network.register("urn:dst", lambda message: "ok")
        network.send("urn:src", "urn:dst", "op", {})
        before = network.statistics.snapshot()
        network.send("urn:src", "urn:dst", "op", {})
        delta = network.statistics.delta(before)
        assert delta.attempts_per_destination == {"urn:dst": 1}
        assert delta.deliveries_per_destination == {"urn:dst": 1}
        assert delta.failed_attempts_per_destination() == {}


class TestSchedulerThreadSafety:
    def test_many_threads_waiting_on_shared_scheduler(self):
        clock = SimulatedClock()
        network = scheduled_network(clock=clock)
        for index in range(4):
            network.register(f"urn:dst{index}", lambda message: "ok")
            network.partition.sever("urn:src", f"urn:dst{index}")
        policy = RetryPolicy(max_attempts=8, backoff_seconds=0.2, backoff_multiplier=1.0)
        channel = ReliableChannel(network, "urn:src", policy)
        # Heal through a timer so recovery happens at a *virtual* instant the
        # retrying threads drive towards -- wall-clock healing would race the
        # (instant) virtual backoffs.
        network.retry_scheduler.schedule(0.5, network.partition.heal_all)
        results = []

        def send(index):
            results.append(channel.send(f"urn:dst{index}", "op", {}))

        threads = [threading.Thread(target=send, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert results == ["ok"] * 4
        assert network.retry_scheduler.pending_timers() == 0


class TestQuiescence:
    """The formal 'simulation reached time T' criterion for external drivers."""

    def test_reports_timers_within_the_horizon(self):
        clock = SimulatedClock()
        scheduler = RetryScheduler(clock)
        scheduler.schedule(1.0, lambda: None)
        scheduler.schedule(5.0, lambda: None)
        sample = scheduler.quiescence()
        assert sample.pending_timers == 2
        assert sample.due_timers == 2
        assert not sample.idle
        # Nothing falls before T=0.5, so the engine is quiescent up to there.
        assert scheduler.is_quiescent(until=0.5)
        assert not scheduler.is_quiescent(until=1.0)

    def test_wait_quiescent_fires_only_inside_the_horizon(self):
        clock = SimulatedClock()
        scheduler = RetryScheduler(clock)
        fired = []
        scheduler.schedule(1.0, lambda: fired.append("in"))
        scheduler.schedule(5.0, lambda: fired.append("beyond"))
        assert scheduler.wait_quiescent(until=2.0, timeout=10)
        assert fired == ["in"]
        assert clock.now() == 1.0  # never advanced past the horizon
        assert scheduler.pending_timers() == 1
        assert scheduler.wait_quiescent(timeout=10)
        assert fired == ["in", "beyond"]
        assert scheduler.pending_timers() == 0

    def test_advance_holds_block_quiescence(self):
        scheduler = RetryScheduler(SimulatedClock())
        hold = scheduler.hold_advance()
        assert scheduler.quiescence().advance_holds == 1
        assert not scheduler.is_quiescent()

        released = []

        def check_from_other_thread():
            released.append(scheduler.is_quiescent())

        worker = threading.Thread(target=check_from_other_thread)
        worker.start()
        worker.join()
        assert released == [False]
        hold.release()
        assert scheduler.is_quiescent()

    def test_executor_work_blocks_quiescence(self):
        from repro import parallel

        scheduler = RetryScheduler(SystemClock())
        gate = threading.Event()
        future = parallel.submit(gate.wait)
        try:
            assert scheduler.quiescence().executor_queue_depth >= 1
            assert not scheduler.is_quiescent()
        finally:
            gate.set()
            if future is not None:
                future.result(timeout=10)
        assert scheduler.wait_quiescent(timeout=10)

    def test_channel_teardown_leaves_a_quiescent_engine(self):
        clock = SimulatedClock()
        network = scheduled_network(clock=clock)
        network.register("urn:dst", lambda message: "ok")
        network.partition.sever("urn:src", "urn:dst")
        policy = RetryPolicy(max_attempts=5, backoff_seconds=0.5)
        channel = ReliableChannel(network, "urn:src", policy)
        future = channel.send_scheduled("urn:dst", "op", {})
        assert not network.retry_scheduler.is_quiescent()
        channel.close()
        with pytest.raises(DeliveryError):
            future.result(timeout=5)
        assert network.retry_scheduler.wait_quiescent(timeout=10)
