"""Unit tests for the per-peer circuit breaker and its channel integration.

The state machine itself (closed -> open -> half-open -> closed/open),
single-probe gating, event reporting, and the end-to-end property the
breaker exists for: a channel retrying against a dead peer stops burning
network attempts once the circuit opens, the refusals are counted in
``NetworkStatistics.circuit_open_refusals``, and the transitions land in
the attached audit log.
"""

from __future__ import annotations

import pytest

from repro.clock import SimulatedClock
from repro.errors import DeliveryError
from repro.faults import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
)
from repro.persistence.audit_log import AuditLog
from repro.transport.delivery import ReliableChannel, RetryPolicy
from repro.transport.network import AUDIT_CATEGORY_TRANSPORT, SimulatedNetwork

DEST = "urn:org:peer"


class _FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def now(self) -> float:
        return self.t


class TestCircuitStateMachine:
    def _breaker(self, **kwargs):
        clock = _FakeClock()
        events = []
        breaker = CircuitBreaker(
            failure_threshold=kwargs.pop("failure_threshold", 3),
            recovery_seconds=kwargs.pop("recovery_seconds", 10.0),
            clock=clock,
            on_event=lambda *event: events.append(event),
            **kwargs,
        )
        return breaker, clock, events

    def test_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError, match="recovery_seconds"):
            CircuitBreaker(recovery_seconds=-1)

    def test_threshold_failures_open_the_circuit(self):
        breaker, _clock, events = self._breaker()
        for _ in range(2):
            breaker.record_failure(DEST)
        assert breaker.state(DEST) == STATE_CLOSED
        assert breaker.allow(DEST)
        breaker.record_failure(DEST)
        assert breaker.state(DEST) == STATE_OPEN
        assert not breaker.allow(DEST)
        assert events == [
            (DEST, STATE_CLOSED, STATE_OPEN, "3 consecutive delivery failures")
        ]

    def test_success_resets_the_failure_count(self):
        breaker, _clock, _events = self._breaker()
        breaker.record_failure(DEST)
        breaker.record_failure(DEST)
        breaker.record_success(DEST)
        breaker.record_failure(DEST)
        breaker.record_failure(DEST)
        assert breaker.state(DEST) == STATE_CLOSED

    def test_half_open_admits_a_single_probe(self):
        breaker, clock, _events = self._breaker()
        for _ in range(3):
            breaker.record_failure(DEST)
        clock.t = 10.0
        assert breaker.state(DEST) == STATE_HALF_OPEN
        assert breaker.allow(DEST)  # the probe
        assert not breaker.allow(DEST)  # gated until the probe resolves

    def test_successful_probe_closes(self):
        breaker, clock, events = self._breaker()
        for _ in range(3):
            breaker.record_failure(DEST)
        clock.t = 10.0
        assert breaker.allow(DEST)
        breaker.record_success(DEST)
        assert breaker.state(DEST) == STATE_CLOSED
        assert breaker.allow(DEST)
        assert [e[2] for e in events] == [
            STATE_OPEN, STATE_HALF_OPEN, STATE_CLOSED,
        ]

    def test_failed_probe_reopens_and_restamps(self):
        breaker, clock, events = self._breaker()
        for _ in range(3):
            breaker.record_failure(DEST)
        clock.t = 10.0
        assert breaker.allow(DEST)
        breaker.record_failure(DEST)
        assert not breaker.allow(DEST)  # open again, freshly stamped
        clock.t = 19.0
        assert breaker.state(DEST) == STATE_OPEN
        clock.t = 20.0
        assert breaker.state(DEST) == STATE_HALF_OPEN
        assert [e[2] for e in events] == [
            STATE_OPEN, STATE_HALF_OPEN, STATE_OPEN, STATE_HALF_OPEN,
        ]

    def test_late_failures_while_open_are_ignored(self):
        breaker, _clock, events = self._breaker()
        for _ in range(4):
            breaker.record_failure(DEST)
        assert len(events) == 1  # no re-transition, no re-stamp

    def test_destinations_are_independent(self):
        breaker, _clock, _events = self._breaker()
        for _ in range(3):
            breaker.record_failure(DEST)
        assert not breaker.allow(DEST)
        assert breaker.allow("urn:org:other")


class TestChannelIntegration:
    def _network_with_dead_peer(self):
        clock = SimulatedClock()
        network = SimulatedNetwork(clock=clock)
        network.register(DEST, lambda message: "pong")
        network.set_online(DEST, False)
        return network

    def test_open_circuit_stops_burning_network_attempts(self):
        network = self._network_with_dead_peer()
        audit = AuditLog(owner="urn:org:sender", clock=network.clock)
        network.attach_audit_log(audit)
        network.attach_circuit_breaker(
            CircuitBreaker(failure_threshold=3, recovery_seconds=60.0)
        )
        channel = ReliableChannel(
            network,
            "urn:org:sender",
            policy=RetryPolicy(max_attempts=8, backoff_seconds=0.001),
        )
        with pytest.raises(DeliveryError, match="failed after 8 attempts"):
            channel.send(DEST, "ping", {})
        stats = network.statistics
        # 3 real attempts tripped the breaker; the remaining 5 were refused
        # locally without touching the network.
        assert stats.attempts_per_destination[DEST] == 3
        assert stats.circuit_open_refusals == 5
        assert network.circuit_breaker.state(DEST) == STATE_OPEN
        transitions = [
            record.details
            for record in audit.records(category=AUDIT_CATEGORY_TRANSPORT)
            if record.details.get("event") == "circuit-breaker-transition"
        ]
        assert transitions == [
            {
                "event": "circuit-breaker-transition",
                "from": STATE_CLOSED,
                "to": STATE_OPEN,
                "reason": "3 consecutive delivery failures",
            }
        ]

    def test_recovered_peer_closes_the_circuit_through_a_probe(self):
        network = self._network_with_dead_peer()
        network.attach_circuit_breaker(
            CircuitBreaker(failure_threshold=2, recovery_seconds=0.05)
        )
        channel = ReliableChannel(
            network,
            "urn:org:sender",
            policy=RetryPolicy(max_attempts=6, backoff_seconds=0.1),
        )
        with pytest.raises(DeliveryError):
            channel.send(DEST, "ping", {})
        assert network.circuit_breaker.state(DEST) == STATE_OPEN
        # The peer comes back; the backoff outlives recovery_seconds, so the
        # next send probes half-open, succeeds, and the circuit closes.
        network.set_online(DEST, True)
        network.clock.sleep(0.05)
        assert channel.send(DEST, "ping", {}) == "pong"
        assert network.circuit_breaker.state(DEST) == STATE_CLOSED

    def test_refusals_do_not_feed_back_into_the_breaker(self):
        # A refusal is not evidence about the link; only DeliveryError from
        # a real attempt may count. 8 refused attempts must not re-stamp or
        # deepen the open circuit.
        network = self._network_with_dead_peer()
        breaker = CircuitBreaker(failure_threshold=1, recovery_seconds=30.0)
        network.attach_circuit_breaker(breaker)
        channel = ReliableChannel(
            network,
            "urn:org:sender",
            policy=RetryPolicy(max_attempts=8, backoff_seconds=0.001),
        )
        with pytest.raises(DeliveryError):
            channel.send(DEST, "ping", {})
        assert network.statistics.attempts_per_destination[DEST] == 1
        assert network.statistics.circuit_open_refusals == 7
        network.set_online(DEST, True)
        network.clock.sleep(30.0)
        assert channel.send(DEST, "ping", {}) == "pong"

    def test_batch_entries_to_open_circuits_are_refused_locally(self):
        network = self._network_with_dead_peer()
        network.register("urn:org:alive", lambda message: "ok")
        network.attach_circuit_breaker(
            CircuitBreaker(failure_threshold=2, recovery_seconds=60.0)
        )
        channel = ReliableChannel(
            network,
            "urn:org:sender",
            policy=RetryPolicy(max_attempts=5, backoff_seconds=0.001),
        )
        results = channel.send_batch(
            [(DEST, "ping", {}), ("urn:org:alive", "ping", {})]
        )
        assert results[0].error is not None
        assert results[1].result == "ok"
        # The dead peer saw only the 2 attempts that tripped the breaker.
        assert network.statistics.attempts_per_destination[DEST] == 2
        assert network.statistics.circuit_open_refusals >= 1
        # The healthy peer was never refused.
        assert network.statistics.deliveries_per_destination["urn:org:alive"] == 1
