"""Unit tests for the socket-backed wire transport.

Covers the layers bottom-up -- framing, the revival codec, the address
book, pooled connections with reconnect -- and then the
:class:`~repro.transport.wire.WireNetwork` surface contract the retry and
dispatch engines rely on: failure taxonomy (retryable vs permanent vs
handler-raised), sender-side statistics, batch semantics and teardown.
"""

from __future__ import annotations

import socket
import threading

import pytest

from repro import codec
from repro.clock import SimulatedClock
from repro.core.evidence import TokenType
from repro.core.messages import B2BProtocolMessage
from repro.core.trust_domain import DeploymentStyle, TrustDomain
from repro.errors import (
    DeliveryError,
    ProtocolError,
    RemoteInvocationError,
    UnknownEndpointError,
)
from repro.faults import FaultPlan, FaultRule
from repro.transport.delivery import ReliableChannel, RetryPolicy
from repro.transport.network import FaultModel, SimulatedNetwork
from repro.transport.scheduler import RetryScheduler
from repro.transport.wire import (
    ConnectionClosed,
    FramingError,
    PeerAddressBook,
    WireNetwork,
    WireTransport,
    decode_body,
    encode_body,
    read_frame,
    revive_error,
    wirecodec,
    write_frame,
)


# -- framing -------------------------------------------------------------------


class TestFraming:
    def test_roundtrip_over_socketpair(self):
        left, right = socket.socketpair()
        try:
            for payload in (b"", b"x", b"a" * 70000):
                write_frame(left, payload)
                assert read_frame(right) == payload
        finally:
            left.close()
            right.close()

    def test_frames_keep_boundaries(self):
        left, right = socket.socketpair()
        try:
            write_frame(left, b"first")
            write_frame(left, b"second")
            assert read_frame(right) == b"first"
            assert read_frame(right) == b"second"
        finally:
            left.close()
            right.close()

    def test_oversized_write_rejected(self):
        left, right = socket.socketpair()
        try:
            with pytest.raises(FramingError):
                write_frame(left, b"x" * (16 * 1024 * 1024 + 1))
        finally:
            left.close()
            right.close()

    def test_oversized_announced_length_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall((17 * 1024 * 1024).to_bytes(4, "big"))
            with pytest.raises(FramingError):
                read_frame(right)
        finally:
            left.close()
            right.close()

    def test_eof_mid_frame_is_connection_closed(self):
        left, right = socket.socketpair()
        try:
            left.sendall((100).to_bytes(4, "big") + b"partial")
            left.close()
            with pytest.raises(ConnectionClosed):
                read_frame(right)
        finally:
            right.close()


# -- wire codec ----------------------------------------------------------------


class TestWireCodec:
    def test_protocol_message_revives_with_tokens(self, domain_factory):
        domain = domain_factory(2, scheme="hmac")
        org = domain.organisation("urn:org:party0")
        token = org.evidence_builder.build(
            token_type=TokenType.NRO_UPDATE,
            run_id="run-1",
            step=1,
            recipient="urn:org:party1",
            payload={"v": 1},
        )
        message = B2BProtocolMessage(
            run_id="run-1",
            protocol="nr-sharing",
            step=1,
            sender="urn:org:party0",
            recipient="urn:org:party1",
            payload={"proposed_state": {"v": 1}, "blob": b"\x00\x01"},
            tokens=[token],
        )
        body = encode_body({"kind": "call", "payload": {"args": [message]}})
        revived = decode_body(body)["payload"]["args"][0]
        assert isinstance(revived, B2BProtocolMessage)
        assert revived.run_id == "run-1"
        assert revived.payload["blob"] == b"\x00\x01"
        assert revived.tokens[0].token_id == token.token_id
        # The canonical encoding (and with it every signed digest) must
        # survive the hop byte-for-byte.
        assert revived.tokens[0].data_encoded().text == token.data_encoded().text
        assert revived.data_encoded().text == message.data_encoded().text

    def test_plain_containers_and_tagged_values_roundtrip(self):
        envelope = {
            "bytes": b"\xff\x00",
            "set": {3, 1, 2},
            "nested": [{"a": None, "b": 1.5}],
        }
        revived = decode_body(encode_body(envelope))
        assert revived["bytes"] == b"\xff\x00"
        assert revived["set"] == {1, 2, 3}
        assert revived["nested"] == [{"a": None, "b": 1.5}]

    def test_unregistered_object_decays_to_plain_data(self):
        class AppValue:
            def to_dict(self):
                return {"field": 7}

        revived = decode_body(encode_body({"value": AppValue()}))
        assert revived["value"] == {"field": 7}

    def test_unencodable_content_raises_wire_codec_error(self):
        with pytest.raises(wirecodec.WireCodecError):
            encode_body({"value": object()})

    def test_error_revival_keeps_retry_taxonomy(self):
        assert isinstance(revive_error("DeliveryError", "x"), DeliveryError)
        assert isinstance(
            revive_error("UnknownEndpointError", "x"), UnknownEndpointError
        )
        assert isinstance(revive_error("ValueError", "x"), ValueError)
        unknown = revive_error("SomethingOdd", "boom")
        assert isinstance(unknown, RemoteInvocationError)
        assert "SomethingOdd" in str(unknown)


# -- peer address book ---------------------------------------------------------


class TestPeerAddressBook:
    def test_resolve_and_replace(self):
        book = PeerAddressBook({"urn:a": ("127.0.0.1", 1234)})
        assert book.resolve("urn:a") == ("127.0.0.1", 1234)
        book.add("urn:a", "127.0.0.1", 4321)
        assert book.resolve("urn:a") == ("127.0.0.1", 4321)
        assert book.addresses() == ["urn:a"]

    def test_unknown_address_is_permanent_failure(self):
        with pytest.raises(UnknownEndpointError):
            PeerAddressBook().resolve("urn:nowhere")

    def test_rejects_bad_entries(self):
        book = PeerAddressBook()
        with pytest.raises(ValueError):
            book.add("", "127.0.0.1", 1234)
        with pytest.raises(ValueError):
            book.add("urn:a", "127.0.0.1", 0)


# -- wire network --------------------------------------------------------------


@pytest.fixture
def wire_pair():
    """Two connected wire nodes: ``a`` knows how to reach ``b``'s endpoints."""
    b = WireNetwork(clock=SimulatedClock())
    a = WireNetwork(clock=SimulatedClock())
    nodes = [a, b]
    yield a, b
    for node in nodes:
        node.close()


def _link(a: WireNetwork, b: WireNetwork, address: str) -> None:
    a.address_book.add(address, b.host, b.port)


class TestWireNetwork:
    def test_remote_send_returns_handler_reply(self, wire_pair):
        a, b = wire_pair
        b.register("urn:echo", lambda message: {"echo": message.payload})
        _link(a, b, "urn:echo")
        reply = a.send("urn:src", "urn:echo", "op", {"n": 1})
        assert reply == {"echo": {"n": 1}}
        assert a.statistics.messages_sent == 1
        assert a.statistics.messages_delivered == 1
        assert a.statistics.bytes_delivered > 0
        # Receiving is not accounted: statistics stay sender-side so that
        # summing nodes reproduces the simulator's global counters.
        assert b.statistics.messages_sent == 0

    def test_local_endpoints_bypass_the_socket(self, wire_pair):
        a, _b = wire_pair
        a.register("urn:local", lambda message: "here")
        assert a.send("urn:src", "urn:local", "op", None) == "here"
        assert a.pool.requests_sent == 0
        assert a.statistics.messages_delivered == 1

    def test_unknown_destination_is_permanent(self, wire_pair):
        a, _b = wire_pair
        with pytest.raises(UnknownEndpointError):
            a.send("urn:src", "urn:nowhere", "op", None)
        assert a.statistics.messages_dropped == 1

    def test_unregistered_remote_endpoint_is_permanent(self, wire_pair):
        a, b = wire_pair
        _link(a, b, "urn:ghost")
        with pytest.raises(UnknownEndpointError):
            a.send("urn:src", "urn:ghost", "op", None)
        assert a.statistics.messages_dropped == 1

    def test_offline_remote_endpoint_is_retryable_and_recovers(self, wire_pair):
        a, b = wire_pair
        b.register("urn:svc", lambda message: "ok")
        _link(a, b, "urn:svc")
        b.set_online("urn:svc", False)
        with pytest.raises(DeliveryError):
            a.send("urn:src", "urn:svc", "op", None)
        assert a.statistics.messages_dropped == 1
        b.set_online("urn:svc", True)
        assert a.send("urn:src", "urn:svc", "op", None) == "ok"

    def test_handler_exception_counts_delivered_and_revives(self, wire_pair):
        a, b = wire_pair

        def failing(message):
            raise ValueError("intentional")

        b.register("urn:svc", failing)
        _link(a, b, "urn:svc")
        with pytest.raises(ValueError, match="intentional"):
            a.send("urn:src", "urn:svc", "op", None)
        assert a.statistics.messages_delivered == 1
        assert a.statistics.messages_dropped == 0

    def test_send_batch_isolates_entries(self, wire_pair):
        a, b = wire_pair
        b.register("urn:good", lambda message: message.payload * 2)
        a.register("urn:near", lambda message: "local")
        _link(a, b, "urn:good")
        results = a.send_batch(
            "urn:src",
            [
                ("urn:good", "op", 21),
                ("urn:nowhere", "op", None),
                ("urn:near", "op", None),
            ],
        )
        assert results[0].result == 42
        assert isinstance(results[1].error, UnknownEndpointError)
        assert results[2].result == "local"
        assert a.statistics.messages_sent == 3
        assert a.statistics.messages_delivered == 2
        assert a.statistics.messages_dropped == 1

    def test_killed_connection_is_retryable_and_reconnects(self, wire_pair):
        a, b = wire_pair
        b.register("urn:svc", lambda message: "ok")
        _link(a, b, "urn:svc")
        assert a.send("urn:src", "urn:svc", "op", None) == "ok"
        assert a.pool.live_connections() == 1
        a.pool.kill()
        assert a.pool.live_connections() == 0
        # The reliable channel's retry machinery recovers transparently.
        channel = ReliableChannel(
            a, "urn:src", RetryPolicy(max_attempts=4, backoff_seconds=0.0)
        )
        assert channel.send("urn:svc", "op", None) == "ok"
        assert a.pool.live_connections() == 1

    def test_scheduled_retries_work_over_the_wire(self, wire_pair):
        a, b = wire_pair
        b.register("urn:svc", lambda message: "ok")
        _link(a, b, "urn:svc")
        a.set_retry_scheduler(RetryScheduler(a.clock))
        a.pool.kill()
        channel = ReliableChannel(
            a, "urn:src", RetryPolicy(max_attempts=4, backoff_seconds=0.01)
        )
        future = channel.send_scheduled("urn:svc", "op", None)
        assert future.result(timeout=30) == "ok"
        assert a.retry_scheduler.pending_timers() == 0

    def test_stopped_peer_exhausts_retry_budget(self, wire_pair):
        a, b = wire_pair
        b.register("urn:svc", lambda message: "ok")
        _link(a, b, "urn:svc")
        b.close()
        channel = ReliableChannel(
            a, "urn:src", RetryPolicy(max_attempts=3, backoff_seconds=0.0)
        )
        with pytest.raises(DeliveryError, match="after 3 attempts"):
            channel.send("urn:svc", "op", None)
        assert channel.attempts_made == 3
        assert a.statistics.messages_dropped == 3

    def test_concurrent_requests_share_the_pool(self, wire_pair):
        a, b = wire_pair
        barrier = threading.Barrier(4, timeout=10)

        def slowish(message):
            barrier.wait()  # all four requests must be in flight at once
            return message.payload

        b.register("urn:svc", slowish)
        _link(a, b, "urn:svc")
        results = []

        def call(n):
            results.append(a.send("urn:src", "urn:svc", "op", n))

        threads = [threading.Thread(target=call, args=(n,)) for n in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(results) == [0, 1, 2, 3]
        assert a.pool.live_connections() == 4

    def test_oversized_frame_is_permanent_not_retried(self, wire_pair):
        a, b = wire_pair
        b.register("urn:svc", lambda message: "ok")
        _link(a, b, "urn:svc")
        channel = ReliableChannel(
            a, "urn:src", RetryPolicy(max_attempts=5, backoff_seconds=0.0)
        )
        huge = "x" * (17 * 1024 * 1024)  # beyond the 16 MiB frame bound
        # Size violations are input-determined: one attempt, no retry burn.
        with pytest.raises(FramingError):
            channel.send("urn:svc", "op", huge)
        assert channel.attempts_made == 1
        assert a.statistics.messages_dropped == 1

    def test_oversized_reply_is_delivered_but_failed(self, wire_pair):
        a, b = wire_pair
        b.register("urn:svc", lambda message: "y" * (17 * 1024 * 1024))
        _link(a, b, "urn:svc")
        # The serving side reports the size violation instead of killing the
        # connection (which would re-invoke the handler on every retry).
        with pytest.raises(RemoteInvocationError, match="frame limit"):
            a.send("urn:src", "urn:svc", "op", None)
        assert a.statistics.messages_delivered == 1
        assert a.pool.live_connections() == 1  # connection survived

    def test_system_requests_are_not_accounted(self, wire_pair):
        a, b = wire_pair
        b.register_system_handler("ping", lambda payload: {"pong": payload})
        assert a.system_request((b.host, b.port), "ping", 7) == {"pong": 7}
        assert a.statistics.messages_sent == 0
        with pytest.raises(UnknownEndpointError):
            a.system_request((b.host, b.port), "no-such-op", None)

    def test_close_is_idempotent_and_stops_serving(self, wire_pair):
        a, b = wire_pair
        b.register("urn:svc", lambda message: "ok")
        _link(a, b, "urn:svc")
        assert a.send("urn:src", "urn:svc", "op", None) == "ok"
        b.close()
        b.close()
        with pytest.raises(DeliveryError):
            a.send("urn:src", "urn:svc", "op", None)


# -- wire transport / trust domain integration ---------------------------------


URIS = ["urn:org:wa", "urn:org:wb", "urn:org:wc"]


class TestWireTrustDomain:
    def test_introduction_order_is_irrelevant(self):
        # The hub learns its spoke *before* the spoke's organisations exist
        # and vice versa: buffered credentials apply when publication
        # happens, so create/introduce can interleave freely.
        with WireTransport(
            local_parties=[URIS[0]],
            await_remote_credentials=False,
            clock=SimulatedClock(),
        ) as hub, WireTransport(
            local_parties=URIS[1:],
            await_remote_credentials=False,
            clock=SimulatedClock(),
        ) as spoke:
            hub_domain = TrustDomain.create(URIS, transport=hub, scheme="hmac")
            # Introduce before the spoke has built anything: hub gets
            # nothing back yet, spoke buffers the hub's credentials.
            spoke.introduce_to(hub.host, hub.port)
            spoke_domain = TrustDomain.create(URIS, transport=spoke, scheme="hmac")
            # Second introduction completes the exchange in both directions.
            spoke.introduce_to(hub.host, hub.port)
            hub.wait_for_party(URIS[1], timeout=5)
            assert set(hub.known_parties()) == set(URIS)
            assert set(spoke.known_parties()) == set(URIS)

            hub_domain.share_object("doc", {"v": 0})
            spoke_domain.share_object("doc", {"v": 0})
            outcome = hub_domain.organisation(URIS[0]).propose_update(
                "doc", {"v": 1}
            )
            assert outcome.agreed, outcome.reason
            assert spoke_domain.organisation(URIS[1]).shared_state("doc") == {"v": 1}

    def test_exchange_blocks_until_peer_publishes(self):
        clock = SimulatedClock()
        with WireTransport(
            local_parties=[URIS[0]],
            await_remote_credentials=False,
            clock=clock,
        ) as hub:
            TrustDomain.create(URIS, transport=hub, scheme="hmac")

            failures = []

            def spoke_process():
                try:
                    with WireTransport(
                        local_parties=URIS[1:],
                        peers={URIS[0]: (hub.host, hub.port)},
                        clock=SimulatedClock(),
                    ) as spoke:
                        TrustDomain.create(URIS, transport=spoke, scheme="hmac")
                        assert set(spoke.known_parties()) == set(URIS)
                except Exception as error:  # noqa: BLE001 - surfaced below
                    failures.append(error)

            # exchange() runs inside create() and must converge while the
            # hub is concurrently serving.
            worker = threading.Thread(target=spoke_process)
            worker.start()
            worker.join(timeout=30)
            assert not worker.is_alive()
            assert not failures, failures
            hub.wait_for_party(URIS[2], timeout=5)

    def test_conflicting_reintroduction_is_refused(self):
        # Trust-on-FIRST-use: once a party's key is pinned, an introduction
        # claiming a different key for the same party (a substitution
        # attempt) must be rejected, not silently re-pinned.
        with WireTransport(
            local_parties=[URIS[0]],
            await_remote_credentials=False,
            clock=SimulatedClock(),
        ) as ta, WireTransport(
            local_parties=[URIS[1]],
            await_remote_credentials=False,
            clock=SimulatedClock(),
        ) as tb:
            da = TrustDomain.create(URIS[:2], transport=ta, scheme="hmac")
            TrustDomain.create(URIS[:2], transport=tb, scheme="hmac")
            tb.introduce_to(ta.host, ta.port)
            pinned = ta._known_remote[URIS[1]]

            from repro.crypto.signature import get_scheme

            impostor = {
                "party": URIS[1],
                "coordinator_address": URIS[1],
                "host": tb.host,
                "port": tb.port,
                "public_key": get_scheme("hmac").generate_keypair().public,
            }
            with pytest.raises(ProtocolError, match="conflicts"):
                ta._absorb([impostor])
            # The original pin and the organisations' trust are untouched.
            assert ta._known_remote[URIS[1]] is pinned
            org = da.organisation(URIS[0])
            assert (
                org.evidence_verifier.key_for(URIS[1]).material_fingerprint()
                == pinned.material_fingerprint()
            )
            # Re-introducing the same key stays benign.
            tb.introduce_to(ta.host, ta.port)

    def test_wire_domain_clock_must_come_from_the_transport(self):
        with WireTransport(
            local_parties=[URIS[0]], await_remote_credentials=False
        ) as transport:
            with pytest.raises(ProtocolError, match="transport's clock"):
                TrustDomain.create(
                    URIS, transport=transport, clock=SimulatedClock()
                )
            # The transport's own clock (or None) is fine.
            TrustDomain.create(
                URIS, transport=transport, clock=transport.network.clock
            )

    def test_wire_domain_guards(self):
        with WireTransport(
            local_parties=[URIS[0]], await_remote_credentials=False
        ) as transport:
            with pytest.raises(ProtocolError, match="DIRECT"):
                TrustDomain.create(
                    URIS, transport=transport, style=DeploymentStyle.INLINE_TTP
                )
            with pytest.raises(ProtocolError, match="in-process"):
                TrustDomain.create(URIS, transport=transport, with_arbitrator=True)
            with pytest.raises(ProtocolError, match="outside the domain"):
                TrustDomain.create(URIS[1:], transport=transport)
            with pytest.raises(ProtocolError, match="transport's own network"):
                TrustDomain.create(
                    URIS,
                    transport=transport,
                    network=SimulatedNetwork(clock=SimulatedClock()),
                )
            with pytest.raises(ProtocolError, match="not both"):
                TrustDomain.create(
                    URIS,
                    transport=transport,
                    fault_model=FaultModel(drop_probability=0.5),
                    fault_plan=FaultPlan(seed=b"x"),
                )

    def test_wire_domain_accepts_either_fault_surface(self):
        # fault_model= on a wire domain routes to the wire-side injector as
        # an equivalent FaultPlan instead of being rejected.
        with WireTransport(
            local_parties=[URIS[0]], await_remote_credentials=False
        ) as transport:
            domain = TrustDomain.create(
                URIS,
                transport=transport,
                scheme="hmac",
                fault_model=FaultModel(drop_probability=0.5, seed=b"guard"),
            )
            assert domain.network is transport.network
            assert domain.network.fault_plan is not None
            assert domain.network.fault_injector is not None
        with WireTransport(
            local_parties=[URIS[0]], await_remote_credentials=False
        ) as transport:
            plan = FaultPlan(
                rules=(FaultRule(fault="drop", probability=0.25),), seed=b"p"
            )
            domain = TrustDomain.create(
                URIS, transport=transport, scheme="hmac", fault_plan=plan
            )
            assert domain.network.fault_plan is plan

    def test_remote_parties_are_listed_but_not_instantiated(self):
        with WireTransport(
            local_parties=[URIS[0]], await_remote_credentials=False
        ) as transport:
            domain = TrustDomain.create(URIS, transport=transport, scheme="hmac")
            assert sorted(domain.organisations) == [URIS[0]]
            assert domain.remote_parties == sorted(URIS[1:])
            assert domain.party_uris() == sorted(URIS)
            with pytest.raises(ProtocolError):
                domain.organisation(URIS[1])
            # share_object registers locally and tolerates remote members,
            # but still rejects URIs that belong to no one.
            domain.share_object("doc", {"v": 0})
            with pytest.raises(ProtocolError):
                domain.share_object("doc2", {"v": 0}, member_uris=["urn:org:typo", URIS[0]])

    def test_payload_codec_violations_surface_loudly(self, wire_pair):
        a, b = wire_pair
        b.register("urn:svc", lambda message: "ok")
        _link(a, b, "urn:svc")
        with pytest.raises(wirecodec.WireCodecError):
            a.send("urn:src", "urn:svc", "op", object())

    def test_encode_once_payloads_are_spliced(self, wire_pair):
        a, b = wire_pair
        received = {}

        def capture(message):
            received["payload"] = message.payload
            return "ok"

        b.register("urn:svc", capture)
        _link(a, b, "urn:svc")
        pre_encoded = codec.canonicalize({"k": [1, 2, 3]})
        assert a.send("urn:src", "urn:svc", "op", pre_encoded) == "ok"
        assert received["payload"] == {"k": [1, 2, 3]}
