"""Unit tests for the HMAC-DRBG generator and identifier helpers."""

import pytest

from repro.crypto.rng import SecureRandom, new_nonce, new_unique_id


class TestSecureRandom:
    def test_seeded_generators_are_deterministic(self):
        a = SecureRandom(seed=b"seed")
        b = SecureRandom(seed=b"seed")
        assert a.random_bytes(64) == b.random_bytes(64)

    def test_different_seeds_diverge(self):
        a = SecureRandom(seed=b"seed-a")
        b = SecureRandom(seed=b"seed-b")
        assert a.random_bytes(64) != b.random_bytes(64)

    def test_successive_outputs_differ(self):
        rng = SecureRandom(seed=b"seed")
        assert rng.random_bytes(32) != rng.random_bytes(32)

    def test_requested_length_is_respected(self):
        rng = SecureRandom(seed=b"seed")
        for length in (0, 1, 31, 32, 33, 100):
            assert len(rng.random_bytes(length)) == length

    def test_negative_length_rejected(self):
        rng = SecureRandom(seed=b"seed")
        with pytest.raises(ValueError):
            rng.random_bytes(-1)

    def test_random_int_respects_bit_bound(self):
        rng = SecureRandom(seed=b"seed")
        for _ in range(50):
            assert rng.random_int(16) < 2 ** 16

    def test_random_int_rejects_non_positive_bits(self):
        rng = SecureRandom(seed=b"seed")
        with pytest.raises(ValueError):
            rng.random_int(0)

    def test_random_int_below_bound(self):
        rng = SecureRandom(seed=b"seed")
        for _ in range(100):
            assert 0 <= rng.random_int_below(13) < 13

    def test_random_int_below_rejects_non_positive(self):
        rng = SecureRandom(seed=b"seed")
        with pytest.raises(ValueError):
            rng.random_int_below(0)

    def test_random_int_range(self):
        rng = SecureRandom(seed=b"seed")
        for _ in range(100):
            assert 5 <= rng.random_int_range(5, 9) < 9

    def test_random_int_range_rejects_empty_range(self):
        rng = SecureRandom(seed=b"seed")
        with pytest.raises(ValueError):
            rng.random_int_range(5, 5)

    def test_random_odd_int_is_odd_with_top_bit_set(self):
        rng = SecureRandom(seed=b"seed")
        for _ in range(20):
            value = rng.random_odd_int(64)
            assert value % 2 == 1
            assert value.bit_length() == 64

    def test_random_hex_length(self):
        rng = SecureRandom(seed=b"seed")
        assert len(rng.random_hex(11)) == 11

    def test_reseed_changes_future_output(self):
        a = SecureRandom(seed=b"seed")
        b = SecureRandom(seed=b"seed")
        a.random_bytes(16)
        b.random_bytes(16)
        a.reseed(b"extra entropy")
        assert a.random_bytes(16) != b.random_bytes(16)

    def test_rough_uniformity_of_bytes(self):
        rng = SecureRandom(seed=b"seed")
        data = rng.random_bytes(4096)
        zero_bits = sum(bin(byte).count("0") - (8 - byte.bit_length()) for byte in data)
        ones = sum(bin(byte).count("1") for byte in data)
        total = len(data) * 8
        # Roughly half the bits should be ones (within 5%).
        assert abs(ones / total - 0.5) < 0.05


class TestIdentifiers:
    def test_unique_ids_are_unique(self):
        ids = {new_unique_id() for _ in range(500)}
        assert len(ids) == 500

    def test_unique_id_uses_prefix(self):
        assert new_unique_id("run").startswith("run-")

    def test_nonce_length(self):
        assert len(new_nonce(24)) == 24

    def test_nonces_are_unpredictable(self):
        assert new_nonce() != new_nonce()
