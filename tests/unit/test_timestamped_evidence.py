"""Unit tests for time-stamped evidence and forward-secure evidence signing.

Section 3.5 offers two routes to protecting evidence against later key
compromise: a third-party time-stamping authority, and forward-secure
signature schemes that "obviate the need for a third party signature on
time-stamps".  Both are exercised here at the evidence level.
"""

import pytest

from repro.clock import SimulatedClock
from repro.core.evidence import EvidenceBuilder, EvidenceToken, EvidenceVerifier, TokenType
from repro.crypto.forward_secure import evolve_key
from repro.crypto.signature import Signer, get_scheme
from repro.crypto.timestamp import TimestampAuthority
from repro.errors import EvidenceVerificationError, SignatureError


@pytest.fixture(scope="module")
def tsa():
    return TimestampAuthority("urn:tsa:evidence", clock=SimulatedClock(start=1000.0))


@pytest.fixture(scope="module")
def rsa_issuer():
    return get_scheme("rsa").generate_keypair(bits=512)


class TestTimestampedEvidence:
    def test_token_carries_a_timestamp_over_its_payload_digest(self, tsa, rsa_issuer):
        builder = EvidenceBuilder(
            party="urn:org:a",
            signer=Signer(rsa_issuer.private),
            clock=SimulatedClock(start=1000.0),
            timestamp_authority=tsa,
        )
        token = builder.build(TokenType.NRO_REQUEST, "run-1", 1, "urn:org:b", {"x": 1})
        assert token.timestamp_token is not None
        assert token.timestamp_token.digest == token.payload_digest
        assert token.timestamp_token.timestamp == 1000.0

    def test_verifier_checks_the_timestamp_when_it_knows_the_tsa_key(self, tsa, rsa_issuer):
        builder = EvidenceBuilder(
            party="urn:org:a",
            signer=Signer(rsa_issuer.private),
            clock=SimulatedClock(start=1000.0),
            timestamp_authority=tsa,
        )
        verifier = EvidenceVerifier(
            pinned_keys={"urn:org:a": rsa_issuer.public}, tsa_key=tsa.public_key
        )
        token = builder.build(TokenType.NRO_REQUEST, "run-1", 1, "urn:org:b", {"x": 1})
        verifier.require_valid(token)

        # Swap in a timestamp over a different digest: verification fails.
        forged_timestamp = tsa.issue(b"some other digest")
        tampered = EvidenceToken(
            token_id=token.token_id,
            token_type=token.token_type,
            run_id=token.run_id,
            step=token.step,
            issuer=token.issuer,
            recipient=token.recipient,
            payload_digest=token.payload_digest,
            issued_at=token.issued_at,
            details=token.details,
            signature=token.signature,
            timestamp_token=forged_timestamp,
        )
        # The token body signature does not cover the timestamp, but the
        # timestamp itself must verify under the TSA key and is checked here.
        verifier_unaware = EvidenceVerifier(pinned_keys={"urn:org:a": rsa_issuer.public})
        assert verifier_unaware.verify(tampered)  # without the TSA key it is ignored
        rogue_tsa = TimestampAuthority("urn:tsa:rogue")
        rogue_stamp = rogue_tsa.issue(token.payload_digest)
        rogue_token = EvidenceToken(
            token_id=token.token_id,
            token_type=token.token_type,
            run_id=token.run_id,
            step=token.step,
            issuer=token.issuer,
            recipient=token.recipient,
            payload_digest=token.payload_digest,
            issued_at=token.issued_at,
            details=token.details,
            signature=token.signature,
            timestamp_token=rogue_stamp,
        )
        with pytest.raises(EvidenceVerificationError):
            verifier.require_valid(rogue_token)

    def test_timestamped_token_roundtrips_through_dict(self, tsa, rsa_issuer):
        builder = EvidenceBuilder(
            party="urn:org:a",
            signer=Signer(rsa_issuer.private),
            clock=SimulatedClock(start=1000.0),
            timestamp_authority=tsa,
        )
        verifier = EvidenceVerifier(
            pinned_keys={"urn:org:a": rsa_issuer.public}, tsa_key=tsa.public_key
        )
        token = builder.build(TokenType.NRO_RESPONSE, "run-2", 2, "urn:org:b", {"y": 2})
        restored = EvidenceToken.from_dict(token.to_dict())
        verifier.require_valid(restored)
        assert restored.timestamp_token.token_id == token.timestamp_token.token_id


class TestForwardSecureEvidence:
    """Evidence signed with an evolving key stays verifiable across periods."""

    @pytest.fixture(scope="class")
    def fs_keypair(self):
        return get_scheme("forward-secure").generate_keypair(periods=4)

    def test_evidence_from_successive_periods_all_verifies(self, fs_keypair):
        verifier = EvidenceVerifier(pinned_keys={"urn:org:fs": fs_keypair.public})
        private = fs_keypair.private
        tokens = []
        for period in range(3):
            builder = EvidenceBuilder(
                party="urn:org:fs", signer=Signer(private), clock=SimulatedClock(start=period)
            )
            tokens.append(
                builder.build(
                    TokenType.NRO_REQUEST, f"run-{period}", 1, "urn:org:b", {"period": period}
                )
            )
            private = evolve_key(private)
        for token in tokens:
            verifier.require_valid(token, expected_issuer="urn:org:fs")

    def test_exhausted_key_cannot_produce_new_evidence(self, fs_keypair):
        private = fs_keypair.private
        for _ in range(4):
            private = evolve_key(private)
        builder = EvidenceBuilder(
            party="urn:org:fs", signer=Signer(private), clock=SimulatedClock()
        )
        with pytest.raises(SignatureError):
            builder.build(TokenType.NRO_REQUEST, "run-late", 1, "urn:org:b", {"too": "late"})

    def test_forward_secure_organisation_end_to_end(self):
        """A whole trust domain can run on the forward-secure scheme."""
        from repro import ComponentDescriptor, TrustDomain
        from tests.conftest import QuoteService

        domain = TrustDomain.create(
            ["urn:org:fs-a", "urn:org:fs-b"], scheme="forward-secure"
        )
        provider = domain.organisation("urn:org:fs-b")
        provider.deploy(
            QuoteService(), ComponentDescriptor(name="QuoteService", non_repudiation=True)
        )
        client = domain.organisation("urn:org:fs-a")
        outcome = client.invoke_non_repudiably(provider.uri, "QuoteService", "quote", ["x"])
        assert outcome.succeeded
        assert len(provider.evidence_for_run(outcome.run_id)) == 4
