"""Unit tests for the observability plane.

Covers the metrics registry (including histogram shard merges under real
thread concurrency), the zero-effect guarantee of disabled mode, Prometheus
rendering, audit-record trace correlation, the bounded message-trace
recorder shared by both transports, configuration validation and the span
CLI.
"""

from __future__ import annotations

import io
import json
import threading
from contextlib import redirect_stdout

import pytest

from repro import TrustDomain
from repro.clock import SimulatedClock
from repro.core.config import DomainConfig, ObservabilityConfig
from repro.observability import runtime, tracing
from repro.observability.exporters import (
    metrics_snapshot,
    render_json,
    render_prometheus,
)
from repro.observability.metrics import Histogram, MetricsRegistry
from repro.observability.trace import main as trace_main
from repro.persistence.audit_log import AuditLog
from repro.transport.network import Message, SimulatedNetwork
from repro.transport.recorder import MessageTraceRecorder

OBJECT_ID = "obs-doc"


@pytest.fixture(autouse=True)
def _observability_off():
    """Every test starts and ends with the plane disabled."""
    runtime.disable()
    yield
    runtime.disable()


def _uris(count):
    return [f"urn:org:obs{i}" for i in range(count)]


def _run_update(observability=None):
    uris = _uris(3)
    if observability is not None:
        from repro.core.config import TransportConfig

        domain = TrustDomain.create(
            uris,
            config=DomainConfig(
                scheme="hmac",
                transport=TransportConfig(clock=SimulatedClock()),
                observability=observability,
            ),
        )
    else:
        domain = TrustDomain.create(uris, scheme="hmac", clock=SimulatedClock())
    domain.share_object(OBJECT_ID, {"v": 0})
    outcome = domain.organisation(uris[0]).propose_update(OBJECT_ID, {"v": 1})
    assert outcome.agreed, outcome.reason
    return domain, outcome


class TestMetricsRegistry:
    def test_counter_gauge_histogram_roundtrip(self):
        registry = MetricsRegistry()
        registry.inc("a.count")
        registry.inc("a.count", 2)
        registry.set_gauge("a.level", 7)
        registry.observe("a.latency", 0.0002)
        snap = registry.snapshot()
        assert snap["counters"]["a.count"] == 3
        assert snap["gauges"]["a.level"] == 7
        histogram = snap["histograms"]["a.latency"]
        assert histogram["count"] == 1
        assert histogram["sum"] == pytest.approx(0.0002)
        # Cumulative buckets end with the +Inf bound covering everything.
        assert histogram["buckets"][-1][1] == 1

    def test_histogram_merges_shards_across_threads(self):
        histogram = Histogram("x", buckets=(0.5, 1.5))
        per_thread, threads = 500, 8

        def work():
            for _ in range(per_thread):
                histogram.observe(1.0)

        workers = [threading.Thread(target=work) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        snap = histogram.snapshot()
        expected = per_thread * threads
        assert snap["count"] == expected
        assert snap["sum"] == pytest.approx(float(expected))
        # All observations land in the second bucket (0.5 < 1.0 <= 1.5).
        assert dict(snap["buckets"])[0.5] == 0
        assert dict(snap["buckets"])[1.5] == expected

    def test_collectors_overwrite_by_name_and_survive_breakage(self):
        registry = MetricsRegistry()
        registry.register_collector("probe", lambda: {"x.v": 1})
        registry.register_collector("probe", lambda: {"x.v": 2})

        def broken():
            raise RuntimeError("probe died")

        registry.register_collector("broken", broken)
        snap = registry.snapshot()
        assert snap["gauges"]["x.v"] == 2  # same-name registration replaced
        registry.unregister_collector("probe")
        assert "x.v" not in registry.snapshot()["gauges"]


class TestDisabledModeIsZeroEffect:
    def test_messages_carry_no_trace_and_no_spans_exist(self):
        domain, _ = _run_update()
        network = domain.network
        network.trace_enabled = True
        domain.organisation(_uris(3)[0]).propose_update(OBJECT_ID, {"v": 2})
        assert network.trace, "recorder captured nothing"
        assert all(message.trace is None for message in network.trace)
        assert runtime.STATE.tracing is None
        assert runtime.STATE.metrics is None

    def test_gated_counters_identical_on_off(self):
        baseline, _ = _run_update()
        runtime.enable(ObservabilityConfig())
        observed, _ = _run_update()
        base, obs = baseline.network.statistics, observed.network.statistics
        assert obs.messages_sent == base.messages_sent
        assert obs.messages_delivered == base.messages_delivered
        assert obs.bytes_delivered == base.bytes_delivered
        assert obs.per_operation == base.per_operation
        # ...and the enabled run really did record a span tree.
        run_ids = runtime.STATE.tracing.trace_ids()
        assert len(run_ids) == 1

    def test_trace_key_not_charged_to_byte_accounting(self):
        message = Message(
            sender="a", destination="b", operation="op", payload={"k": 1}
        )
        bare = message.encoded_size()
        message.trace = ("trace-1", "span-1")
        assert message.encoded_size() == bare


class TestTracingIntegration:
    def test_one_update_is_one_connected_tree(self):
        runtime.enable(ObservabilityConfig())
        _, outcome = _run_update()
        collector = runtime.STATE.tracing
        spans = collector.spans(outcome.run_id)
        assert spans, "no spans collected for the run"
        roots = tracing.build_tree(spans, outcome.run_id)
        assert len(roots) == 1
        assert roots[0]["name"] == "run:update"
        assert roots[0]["status"] == "agreed"
        names = {span["name"] for span in spans}
        assert "commit" in names
        assert any(name.startswith("request:") for name in names)
        assert "handle:proposal" in names
        assert "handle:outcome" in names

    def test_run_duration_histogram_observed(self):
        runtime.enable(ObservabilityConfig())
        _run_update()
        snap = metrics_snapshot()
        assert snap["histograms"]["run.duration_seconds"]["count"] >= 1
        assert snap["histograms"]["crypto.sign_seconds"]["count"] >= 1
        assert snap["histograms"]["crypto.verify_seconds"]["count"] >= 1
        assert snap["histograms"]["codec.encode_seconds"]["count"] >= 1

    def test_domain_config_registers_pull_collectors(self):
        runtime.disable()
        domain, _ = _run_update(observability=ObservabilityConfig())
        snap = metrics_snapshot()
        assert snap["gauges"]["network.messages_sent"] > 0
        uri = _uris(3)[0]
        assert snap["gauges"][f"audit.records.{uri}"] > 0
        assert snap["gauges"][f"evidence.records.{uri}"] > 0

    def test_scheduler_restores_ctx_at_fire(self):
        from repro.transport.scheduler import RetryScheduler

        runtime.enable(ObservabilityConfig())
        clock = SimulatedClock()
        scheduler = RetryScheduler(clock)
        seen = []
        with tracing.activate(("trace-t", "span-s")):
            scheduler.schedule(1.0, lambda: seen.append(tracing.current_ctx()))
        assert tracing.current_ctx() is None
        clock.advance(1.5)
        scheduler.fire_due()
        assert seen == [("trace-t", "span-s")]


class TestAuditTraceCorrelation:
    def test_append_stamps_active_span_and_filter_joins(self):
        runtime.enable(ObservabilityConfig())
        log = AuditLog("urn:org:a")
        with tracing.activate(("trace-1", "span-1")):
            log.append(category="test", subject="run-1", details={"k": "v"})
        log.append(category="test", subject="run-2")
        stamped = log.records(trace_id="trace-1")
        assert len(stamped) == 1
        assert stamped[0].details["span_id"] == "span-1"
        assert stamped[0].details["k"] == "v"
        assert log.records(trace_id="other") == []

    def test_explicit_trace_details_win(self):
        runtime.enable(ObservabilityConfig())
        log = AuditLog("urn:org:a")
        with tracing.activate(("ambient", "span")):
            log.append(
                category="test",
                subject="run",
                details={"trace_id": "explicit"},
            )
        assert log.records()[0].details["trace_id"] == "explicit"

    def test_disabled_appends_are_unstamped(self):
        log = AuditLog("urn:org:a")
        with tracing.activate(("trace-1", "span-1")):
            log.append(category="test", subject="run-1")
        assert "trace_id" not in log.records()[0].details

    def test_run_audits_join_the_span_tree(self):
        runtime.enable(ObservabilityConfig())
        domain, outcome = _run_update()
        org = domain.organisation(_uris(3)[0])
        joined = org.audit_records(trace_id=outcome.run_id)
        assert joined, "no audit records were stamped with the run's trace"
        assert all(
            record.details["trace_id"] == outcome.run_id for record in joined
        )


class TestMessageTraceRecorder:
    def test_capacity_bounds_the_buffer(self):
        recorder = MessageTraceRecorder(cap=3)
        for index in range(10):
            recorder.record(index)
        assert recorder.messages() == [7, 8, 9]
        assert len(recorder) == 3
        recorder.set_cap(2)
        assert recorder.cap == 2

    def test_network_capture_is_bounded(self):
        network = SimulatedNetwork(clock=SimulatedClock())
        network.trace_enabled = True
        network.set_trace_capacity(5)
        network.register("urn:b", lambda message: None)
        for index in range(20):
            network.send("urn:a", "urn:b", "op", {"i": index})
        assert len(network.trace) == 5
        assert network.trace[-1].payload == {"i": 19}


class TestExporters:
    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.inc("network.messages_sent", 4)
        registry.set_gauge("scheduler.pending_timers", 2)
        registry.observe("crypto.sign_seconds", 0.00005)
        text = render_prometheus(registry.snapshot())
        assert "# TYPE repro_network_messages_sent_total counter" in text
        assert "repro_network_messages_sent_total 4.0" in text
        assert "repro_scheduler_pending_timers 2.0" in text
        assert 'repro_crypto_sign_seconds_bucket{le="0.0001"} 1' in text
        assert 'repro_crypto_sign_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_crypto_sign_seconds_count 1" in text

    def test_json_snapshot_roundtrips(self):
        registry = MetricsRegistry()
        registry.inc("a.b", 1)
        parsed = json.loads(render_json(registry.snapshot()))
        assert parsed["counters"]["a.b"] == 1


class TestConfigValidation:
    def test_http_port_requires_wire_transport(self):
        config = DomainConfig(
            observability=ObservabilityConfig(http_port=0)
        )
        with pytest.raises(Exception, match="http_port"):
            config.validate()

    def test_bad_capacities_rejected(self):
        with pytest.raises(Exception, match="span_capacity"):
            DomainConfig(
                observability=ObservabilityConfig(span_capacity=0)
            ).validate()
        with pytest.raises(Exception, match="message_trace_cap"):
            DomainConfig(
                observability=ObservabilityConfig(message_trace_cap=-1)
            ).validate()
        with pytest.raises(Exception, match="http_port"):
            DomainConfig(
                observability=ObservabilityConfig(http_port=70000)
            ).validate()


class TestSuspendResume:
    def test_suspend_pauses_without_dropping_state(self):
        runtime.enable(ObservabilityConfig())
        collector = runtime.STATE.tracing
        collector.start_span("kept", trace_id="t1").end()

        snapshot = runtime.suspend()
        assert not runtime.enabled()
        collector.start_span  # components survive detached
        runtime.resume(snapshot)
        assert runtime.enabled()
        assert runtime.STATE.tracing is collector
        assert collector.trace_ids() == ["t1"]

    def test_suspended_sites_record_nothing(self):
        runtime.enable(ObservabilityConfig())
        snapshot = runtime.suspend()
        _run_update()
        runtime.resume(snapshot)
        assert runtime.STATE.tracing.trace_ids() == []


class TestTraceCLI:
    def _export(self, tmp_path):
        runtime.enable(ObservabilityConfig())
        _, outcome = _run_update()
        path = tmp_path / "spans.json"
        path.write_text(runtime.STATE.tracing.export_json())
        return str(path), outcome.run_id

    def test_renders_tree(self, tmp_path):
        path, run_id = self._export(tmp_path)
        out = io.StringIO()
        with redirect_stdout(out):
            status = trace_main([path, "--trace", run_id])
        assert status == 0
        rendered = out.getvalue()
        assert f"trace {run_id}" in rendered
        assert "run:update" in rendered
        assert "commit" in rendered

    def test_lists_trace_ids(self, tmp_path):
        path, run_id = self._export(tmp_path)
        out = io.StringIO()
        with redirect_stdout(out):
            status = trace_main([path, "--list"])
        assert status == 0
        assert run_id in out.getvalue()

    def test_unknown_trace_fails(self, tmp_path):
        path, _ = self._export(tmp_path)
        assert trace_main([path, "--trace", "nope"]) == 1
