"""Unit tests for credentials, role activation, policies and membership."""

import pytest

from repro.access.credentials import Credential, CredentialIssuer, verify_credential
from repro.access.policy import AccessDecision, AccessPolicy, PolicyRule
from repro.access.roles import RoleActivationRule, RoleManager
from repro.clock import SimulatedClock
from repro.errors import AccessDeniedError, CredentialError, MembershipError
from repro.membership.service import Member, MembershipService


@pytest.fixture(scope="module")
def issuer():
    return CredentialIssuer("urn:ve:coordinator", clock=SimulatedClock(start=100.0))


class TestCredentials:
    def test_issue_and_verify(self, issuer):
        credential = issuer.issue("urn:org:a", {"role": "supplier"})
        assert verify_credential(credential, issuer.public_key)
        assert verify_credential(credential, issuer.public_key, at_time=150.0)

    def test_expired_credential_rejected(self, issuer):
        credential = issuer.issue("urn:org:a", {"role": "supplier"}, validity_seconds=10.0)
        assert not verify_credential(credential, issuer.public_key, at_time=10_000.0)

    def test_tampered_attributes_rejected(self, issuer):
        credential = issuer.issue("urn:org:a", {"role": "supplier"})
        forged = Credential(
            credential_id=credential.credential_id,
            subject=credential.subject,
            issuer=credential.issuer,
            attributes={"role": "administrator"},
            not_before=credential.not_before,
            not_after=credential.not_after,
            signature=credential.signature,
        )
        assert not verify_credential(forged, issuer.public_key)

    def test_unsigned_credential_rejected(self, issuer):
        credential = issuer.issue("urn:org:a", {"role": "supplier"})
        stripped = Credential(
            credential_id=credential.credential_id,
            subject=credential.subject,
            issuer=credential.issuer,
            attributes=credential.attributes,
            not_before=credential.not_before,
            not_after=credential.not_after,
            signature=None,
        )
        assert not verify_credential(stripped, issuer.public_key)

    def test_empty_subject_rejected(self, issuer):
        with pytest.raises(CredentialError):
            issuer.issue("", {})

    def test_dict_roundtrip(self, issuer):
        credential = issuer.issue("urn:org:a", {"role": "supplier"})
        restored = Credential.from_dict(credential.to_dict())
        assert verify_credential(restored, issuer.public_key)


class TestRoleManager:
    @pytest.fixture
    def manager(self, issuer):
        manager = RoleManager(clock=SimulatedClock(start=100.0))
        manager.trust_issuer(issuer.name, issuer.public_key)
        manager.add_rule(
            RoleActivationRule(
                role="ve-member",
                required_attributes={"member": True},
                deactivating_events={"ve.dissolved"},
            )
        )
        manager.add_rule(
            RoleActivationRule(
                role="supplier",
                predicate=lambda attributes: attributes.get("kind") == "supplier",
            )
        )
        return manager

    def test_presenting_credential_activates_matching_roles(self, manager, issuer):
        credential = issuer.issue("urn:org:a", {"member": True, "kind": "supplier"})
        activated = manager.present_credential(credential)
        assert set(activated) == {"ve-member", "supplier"}
        assert manager.has_role("urn:org:a", "ve-member")

    def test_non_matching_credential_activates_nothing(self, manager, issuer):
        credential = issuer.issue("urn:org:b", {"member": False})
        assert manager.present_credential(credential) == []
        assert manager.active_roles("urn:org:b") == set()

    def test_untrusted_issuer_rejected(self, manager):
        rogue = CredentialIssuer("urn:rogue:issuer")
        credential = rogue.issue("urn:org:a", {"member": True})
        with pytest.raises(CredentialError):
            manager.present_credential(credential)

    def test_event_deactivates_subscribed_roles(self, manager, issuer):
        credential = issuer.issue("urn:org:a", {"member": True, "kind": "supplier"})
        manager.present_credential(credential)
        revoked = manager.dispatch_event("ve.dissolved")
        assert [assignment.role for assignment in revoked] == ["ve-member"]
        assert manager.active_roles("urn:org:a") == {"supplier"}

    def test_explicit_revocation(self, manager, issuer):
        credential = issuer.issue("urn:org:a", {"member": True})
        manager.present_credential(credential)
        manager.revoke("urn:org:a", "ve-member")
        assert not manager.has_role("urn:org:a", "ve-member")

    def test_require_role_raises_when_missing(self, manager):
        with pytest.raises(AccessDeniedError):
            manager.require_role("urn:org:zzz", "ve-member")

    def test_rule_issuer_restriction(self, issuer):
        manager = RoleManager(clock=SimulatedClock(start=100.0))
        manager.trust_issuer(issuer.name, issuer.public_key)
        manager.add_rule(
            RoleActivationRule(role="audited", required_issuer="urn:someone:else")
        )
        credential = issuer.issue("urn:org:a", {})
        assert manager.present_credential(credential) == []


class TestAccessPolicy:
    def test_permit_rule_allows(self):
        policy = AccessPolicy("urn:org:a")
        policy.permit("supplier", "QuoteService", "quote")
        assert policy.evaluate({"supplier"}, "QuoteService", "quote") is AccessDecision.PERMIT

    def test_default_is_deny(self):
        policy = AccessPolicy("urn:org:a")
        assert policy.evaluate({"supplier"}, "QuoteService", "quote") is AccessDecision.DENY

    def test_deny_overrides_permit(self):
        policy = AccessPolicy("urn:org:a")
        policy.permit("*", "QuoteService", "*")
        policy.deny("blacklisted", "QuoteService", "*")
        assert policy.evaluate({"blacklisted"}, "QuoteService", "quote") is AccessDecision.DENY

    def test_wildcards_match(self):
        policy = AccessPolicy("urn:org:a")
        policy.permit("member", "b2bobject:*", "get_*")
        assert policy.evaluate({"member"}, "b2bobject:spec", "get_state") is AccessDecision.PERMIT
        assert policy.evaluate({"member"}, "b2bobject:spec", "set_state") is AccessDecision.DENY

    def test_check_with_role_manager(self, issuer):
        manager = RoleManager(clock=SimulatedClock(start=100.0))
        manager.trust_issuer(issuer.name, issuer.public_key)
        manager.add_rule(RoleActivationRule(role="member", required_attributes={"member": True}))
        manager.present_credential(issuer.issue("urn:org:a", {"member": True}))
        policy = AccessPolicy("urn:org:a")
        policy.permit("member", "Service", "operate")
        policy.check(manager, "urn:org:a", "Service", "operate")
        with pytest.raises(AccessDeniedError):
            policy.check(manager, "urn:org:b", "Service", "operate")

    def test_rule_listing(self):
        policy = AccessPolicy("urn:org:a", rules=[PolicyRule("r", "res", "op")])
        assert len(policy.rules) == 1


class TestMembershipService:
    def test_create_group_with_founders(self):
        service = MembershipService()
        service.create_group("doc", [Member("urn:org:a"), Member("urn:org:b")])
        assert service.member_uris("doc") == ["urn:org:a", "urn:org:b"]
        assert service.is_member("doc", "urn:org:a")
        assert len(service.group("doc")) == 2

    def test_duplicate_group_rejected(self):
        service = MembershipService()
        service.create_group("doc")
        with pytest.raises(MembershipError):
            service.create_group("doc")

    def test_connect_and_disconnect_record_events(self):
        service = MembershipService(clock=SimulatedClock(start=5.0))
        service.create_group("doc", [Member("urn:org:a")])
        service.connect("doc", Member("urn:org:b"))
        service.disconnect("doc", "urn:org:a")
        events = service.events("doc")
        assert [(e.member_uri, e.action) for e in events] == [
            ("urn:org:a", "connect"),
            ("urn:org:b", "connect"),
            ("urn:org:a", "disconnect"),
        ]
        assert service.member_uris("doc") == ["urn:org:b"]

    def test_duplicate_connect_rejected(self):
        service = MembershipService()
        service.create_group("doc", [Member("urn:org:a")])
        with pytest.raises(MembershipError):
            service.connect("doc", Member("urn:org:a"))

    def test_disconnect_of_non_member_rejected(self):
        service = MembershipService()
        service.create_group("doc", [Member("urn:org:a")])
        with pytest.raises(MembershipError):
            service.disconnect("doc", "urn:org:zzz")

    def test_unknown_group_raises(self):
        with pytest.raises(MembershipError):
            MembershipService().group("missing")

    def test_peers_of_excludes_self(self):
        service = MembershipService()
        service.create_group("doc", [Member("urn:org:a"), Member("urn:org:b"), Member("urn:org:c")])
        assert service.peers_of("doc", "urn:org:b") == {"urn:org:a", "urn:org:c"}

    def test_certificate_lookup(self):
        service = MembershipService()
        service.create_group("doc", [Member("urn:org:a")])
        assert service.certificate_for("doc", "urn:org:a") is None
        with pytest.raises(MembershipError):
            service.certificate_for("doc", "urn:org:x")

    def test_group_ids(self):
        service = MembershipService()
        service.create_group("b")
        service.create_group("a")
        assert service.group_ids() == ["a", "b"]
