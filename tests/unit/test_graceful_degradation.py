"""Partition-exhausted runs degrade gracefully instead of stranding waiters.

When phase 1 reaches *no* peer (a severed partition that outlives every
retry budget), the coordinator must resolve the run not-agreed with an
audited ``run-degraded`` reason and skip the pointless outcome fan-out --
the proposer's blocking call returns, nothing is applied anywhere, and
the degradation is part of the audit record.
"""

from __future__ import annotations

from repro import TrustDomain
from repro.clock import SimulatedClock
from repro.core.sharing import AUDIT_CATEGORY_SHARING

OBJECT_ID = "degraded-doc"
URIS = [f"urn:org:deg{i}" for i in range(3)]


def _severed_domain(**kwargs):
    domain = TrustDomain.create(
        URIS, scheme="hmac", clock=SimulatedClock(), **kwargs
    )
    domain.share_object(OBJECT_ID, {"v": 0})
    for peer in URIS[1:]:
        domain.network.partition.sever(URIS[0], peer)
    return domain


def _degraded_records(org, run_id):
    return [
        record.details
        for record in org.audit_records(
            category=AUDIT_CATEGORY_SHARING, subject=run_id
        )
        if record.details.get("event") == "run-degraded"
    ]


class TestDegradedUpdateRun:
    def test_partitioned_update_resolves_not_agreed_with_audited_reason(self):
        domain = _severed_domain()
        proposer = domain.organisation(URIS[0])
        outcome = proposer.propose_update(OBJECT_ID, {"v": 1})

        # The waiter settled (we are here) and the run did not agree.
        assert not outcome.agreed
        assert "unreachable" in outcome.reason
        degraded = _degraded_records(proposer, outcome.run_id)
        assert degraded == [
            {
                "event": "run-degraded",
                "object_id": OBJECT_ID,
                "reason": "all peers unreachable; suspected partition",
                "peers": URIS[1:],
                "outcome_wave_skipped": True,
            }
        ]
        # The coordinated record names every peer as undelivered.
        coordinated = [
            record.details
            for record in proposer.audit_records(
                category=AUDIT_CATEGORY_SHARING, subject=outcome.run_id
            )
            if record.details.get("event") == "update-coordinated"
        ]
        assert coordinated[0]["undelivered_outcomes"] == URIS[1:]
        # Nothing was applied anywhere; the peers never heard of the run.
        for uri in URIS:
            org = domain.organisation(uri)
            assert org.shared_state(OBJECT_ID) == {"v": 0}
            assert org.shared_version(OBJECT_ID) == 0
        for peer in URIS[1:]:
            assert (
                domain.organisation(peer).evidence_for_run(outcome.run_id)
                == []
            )

    def test_healed_partition_recovers_the_next_run(self):
        domain = _severed_domain()
        proposer = domain.organisation(URIS[0])
        assert not proposer.propose_update(OBJECT_ID, {"v": 1}).agreed
        domain.network.partition.heal_all()
        outcome = proposer.propose_update(OBJECT_ID, {"v": 2})
        assert outcome.agreed, outcome.reason
        for uri in URIS:
            assert domain.organisation(uri).shared_state(OBJECT_ID) == {"v": 2}

    def test_reachable_minority_still_gets_the_outcome_wave(self):
        # Only one peer severed: phase 1 fails for it, succeeds for the
        # other; the run is vetoed but NOT degraded -- the reachable peer
        # must still receive the not-agreed outcome.
        domain = TrustDomain.create(URIS, scheme="hmac", clock=SimulatedClock())
        domain.share_object(OBJECT_ID, {"v": 0})
        domain.network.partition.sever(URIS[0], URIS[1])
        proposer = domain.organisation(URIS[0])
        outcome = proposer.propose_update(OBJECT_ID, {"v": 1})
        assert not outcome.agreed
        assert _degraded_records(proposer, outcome.run_id) == []
        # The reachable peer holds the proposal and the outcome.
        reachable = domain.organisation(URIS[2]).evidence_for_run(
            outcome.run_id
        )
        assert len(reachable) > 0

    def test_degraded_async_run_settles_its_future(self):
        domain = _severed_domain(async_runs=True)
        proposer = domain.organisation(URIS[0])
        future = proposer.controller.propose_update_async(OBJECT_ID, {"v": 1})
        outcome = future.result(timeout=30)
        assert not outcome.agreed
        assert _degraded_records(proposer, outcome.run_id)


class TestDegradedMembershipRun:
    def test_partitioned_disconnect_degrades_not_strands(self):
        domain = _severed_domain()
        proposer = domain.organisation(URIS[0])
        outcome = proposer.controller.disconnect_member(OBJECT_ID, URIS[2])
        assert not outcome.agreed
        degraded = _degraded_records(proposer, outcome.run_id)
        assert len(degraded) == 1
        assert degraded[0]["peers"] == URIS[1:]
        # Membership unchanged everywhere.
        assert sorted(proposer.controller.members(OBJECT_ID)) == sorted(URIS)
