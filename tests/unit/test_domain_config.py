"""The consolidated DomainConfig surface of ``TrustDomain.create``.

Covers the two acceptance properties of the config redesign: the
``config=`` path and the legacy flat-kwarg path produce equivalent
domains (property-tested over the grouped knobs), and every invalid
field combination is raised from :meth:`DomainConfig.validate` -- with
the historical messages -- on *both* paths.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import (
    DeploymentStyle,
    DomainConfig,
    DurabilityConfig,
    FaultConfig,
    PeeringConfig,
    ReliabilityConfig,
    TransportConfig,
)
from repro.core.trust_domain import TrustDomain
from repro.errors import PersistenceError, ProtocolError
from repro.faults import FaultPlan
from repro.transport.network import FaultModel, SimulatedNetwork

PARTIES = ["urn:org:a", "urn:org:b"]

_SETTINGS = settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def _fingerprint(domain):
    """The observable deployment structure, for equivalence comparison."""
    return {
        "style": domain.style,
        "organisations": sorted(domain.organisations),
        "ttps": sorted(domain.ttps),
        "arbitrator": domain.arbitrator_uri,
        "timestamping": domain.timestamp_authority is not None,
        "scheduler": domain.retry_scheduler is not None,
        "relays": sorted(domain.relays),
    }


class TestEquivalence:
    @given(
        style=st.sampled_from(list(DeploymentStyle)),
        use_timestamping=st.booleans(),
        with_arbitrator=st.booleans(),
        scheduled_retries=st.booleans(),
        async_runs=st.booleans(),
        durable_runs=st.booleans(),
    )
    @_SETTINGS
    def test_config_and_legacy_kwargs_build_equivalent_domains(
        self,
        style,
        use_timestamping,
        with_arbitrator,
        scheduled_retries,
        async_runs,
        durable_runs,
    ):
        legacy = TrustDomain.create(
            PARTIES,
            style=style,
            use_timestamping=use_timestamping,
            with_arbitrator=with_arbitrator,
            scheduled_retries=scheduled_retries,
            async_runs=async_runs,
            durable_runs=durable_runs,
        )
        config = DomainConfig(
            style=style,
            use_timestamping=use_timestamping,
            with_arbitrator=with_arbitrator,
            reliability=ReliabilityConfig(
                scheduled_retries=scheduled_retries, async_runs=async_runs
            ),
            durability=DurabilityConfig(durable_runs=durable_runs),
        )
        configured = TrustDomain.create(PARTIES, config=config)
        assert _fingerprint(legacy) == _fingerprint(configured)

    def test_both_paths_coordinate_identically(self):
        outcomes = []
        for domain in (
            TrustDomain.create(PARTIES, style=DeploymentStyle.INLINE_TTP),
            TrustDomain.create(
                PARTIES, config=DomainConfig(style=DeploymentStyle.INLINE_TTP)
            ),
        ):
            domain.share_object("doc", {"v": 0})
            outcome = domain.organisation("urn:org:a").propose_update(
                "doc", {"v": 1}
            )
            outcomes.append((outcome.agreed, outcome.new_version))
        assert outcomes[0] == outcomes[1]
        assert outcomes[0][0] is True

    def test_fault_surfaces_reach_the_network_identically(self):
        plan = FaultPlan(seed=7)
        via_kwarg = TrustDomain.create(PARTIES, fault_plan=plan)
        via_config = TrustDomain.create(
            PARTIES, config=DomainConfig(faults=FaultConfig(plan=plan))
        )
        assert via_kwarg.network.fault_plan is plan
        assert via_config.network.fault_plan is plan
        model = FaultModel(drop_probability=0.5, seed=b"\x03")
        via_model = TrustDomain.create(
            PARTIES, config=DomainConfig(faults=FaultConfig(model=model))
        )
        assert via_model.network.fault_model is model


class TestMixingPaths:
    def test_config_with_non_default_kwarg_is_rejected(self):
        with pytest.raises(ProtocolError, match="not both.*scheduled_retries"):
            TrustDomain.create(
                PARTIES, config=DomainConfig(), scheduled_retries=True
            )

    def test_config_with_default_valued_kwargs_is_fine(self):
        domain = TrustDomain.create(
            PARTIES, config=DomainConfig(), style=DeploymentStyle.DIRECT
        )
        assert domain.style is DeploymentStyle.DIRECT


class TestValidation:
    def test_fault_model_and_plan_are_exclusive(self):
        config = DomainConfig(
            faults=FaultConfig(plan=FaultPlan(seed=1), model=FaultModel())
        )
        with pytest.raises(ProtocolError, match="not both"):
            config.validate()
        with pytest.raises(ProtocolError, match="not both"):
            TrustDomain.create(
                PARTIES, fault_plan=FaultPlan(seed=1), fault_model=FaultModel()
            )

    def test_storage_and_explicit_factories_are_exclusive(self):
        from repro.persistence.storage import InMemoryBackend

        config = DomainConfig(
            durability=DurabilityConfig(
                storage="memory",
                evidence_backend_factory=lambda uri: InMemoryBackend(),
            )
        )
        with pytest.raises(ProtocolError, match="storage= or explicit"):
            config.validate()

    def test_unknown_storage_profile_fails_validation(self):
        config = DomainConfig(durability=DurabilityConfig(storage="postgres:x"))
        with pytest.raises(PersistenceError, match="unknown storage profile"):
            config.validate()

    def test_peering_needs_a_wire_transport(self):
        config = DomainConfig(peering=PeeringConfig())
        with pytest.raises(ProtocolError, match="needs a wire transport"):
            config.validate()

    def test_peering_bounds_are_checked(self):
        config = DomainConfig(peering=PeeringConfig(max_live_channels=0))
        with pytest.raises(ProtocolError, match="cap must be >= 1"):
            config.validate()

    def test_wire_transport_type_is_checked(self):
        config = DomainConfig(transport=TransportConfig(wire=object()))
        with pytest.raises(ProtocolError, match="must be a WireTransport"):
            config.validate()

    def test_wire_rejects_relayed_styles_and_services(self):
        from repro.transport.wire import WireTransport

        with WireTransport(["urn:org:a"], port=0) as transport:
            ttp_style = DomainConfig(
                style=DeploymentStyle.INLINE_TTP,
                transport=TransportConfig(wire=transport),
            )
            with pytest.raises(ProtocolError, match="DIRECT deployment style"):
                ttp_style.validate()
            own_network = DomainConfig(
                transport=TransportConfig(wire=transport, network=SimulatedNetwork())
            )
            with pytest.raises(ProtocolError, match="transport's own network"):
                own_network.validate()
            services = DomainConfig(
                use_timestamping=True,
                transport=TransportConfig(wire=transport),
            )
            with pytest.raises(ProtocolError, match="in-process services"):
                services.validate()
            foreign_clock = DomainConfig(
                transport=TransportConfig(wire=transport, clock=object())
            )
            with pytest.raises(ProtocolError, match="transport's clock"):
                foreign_clock.validate()

    def test_party_list_rules_stay_on_create(self):
        with pytest.raises(ProtocolError, match="at least two"):
            TrustDomain.create(["urn:org:solo"], config=DomainConfig())
        with pytest.raises(ProtocolError, match="must be unique"):
            TrustDomain.create(
                ["urn:org:a", "urn:org:a"], config=DomainConfig()
            )


class TestStorageProvisioning:
    def test_memory_profile_matches_default_behaviour(self):
        domain = TrustDomain.create(PARTIES, storage="memory")
        org = domain.organisation("urn:org:a")
        domain.share_object("doc", {"v": 0})
        assert org.propose_update("doc", {"v": 1}).agreed
        assert org.evidence_store.total_records() > 0

    def test_sqlite_profile_persists_evidence_across_reopen(self, tmp_path):
        db = tmp_path / "domain.db"
        domain = TrustDomain.create(PARTIES, storage=f"sqlite:{db}")
        domain.share_object("doc", {"v": 0})
        outcome = domain.organisation("urn:org:a").propose_update("doc", {"v": 1})
        assert outcome.agreed
        run_id = outcome.run_id
        stored = domain.organisation("urn:org:a").evidence_store.evidence_for_run(
            run_id
        )
        assert stored
        # a later domain over the same file sees the prior run's evidence
        reopened = TrustDomain.create(PARTIES, storage=f"sqlite:{db}")
        store = reopened.organisation("urn:org:a").evidence_store
        assert run_id in store.run_ids()
        assert len(store.evidence_for_run(run_id)) == len(stored)

    def test_sqlite_profile_audit_log_survives_reopen(self, tmp_path):
        db = tmp_path / "domain.db"
        domain = TrustDomain.create(PARTIES, storage=f"sqlite:{db}")
        domain.share_object("doc", {"v": 0})
        domain.organisation("urn:org:a").propose_update("doc", {"v": 1})
        count = len(domain.organisation("urn:org:a").audit_log.records())
        assert count > 0
        reopened = TrustDomain.create(PARTIES, storage=f"sqlite:{db}")
        log = reopened.organisation("urn:org:a").audit_log
        assert len(log.records()) >= count
        assert log.verify_integrity()

    def test_file_profile_isolates_stores_on_disk(self, tmp_path):
        domain = TrustDomain.create(
            PARTIES, storage=f"file:{tmp_path}", durable_runs=True
        )
        domain.share_object("doc", {"v": 0})
        assert domain.organisation("urn:org:a").propose_update("doc", {"v": 1}).agreed
        owner_dir = tmp_path / "urn_org_a"
        assert (owner_dir / "evidence").is_dir()
        assert (owner_dir / "audit").is_dir()
        assert (owner_dir / "runjournal").is_dir()
