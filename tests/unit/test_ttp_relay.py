"""Unit tests for the TTP relay handler and arbitrator internals."""

import pytest

from repro import ComponentDescriptor, DeploymentStyle, TokenType, TrustDomain
from repro.core.messages import B2BProtocolMessage
from repro.core.ttp import FAIR_EXCHANGE_PROTOCOL, RelayProtocolHandler, TTPArbitrator, install_relays
from repro.errors import FairExchangeError, ProtocolError
from tests.conftest import QuoteService


@pytest.fixture(scope="module")
def inline_domain():
    domain = TrustDomain.create(
        ["urn:org:party0", "urn:org:party1"], style=DeploymentStyle.INLINE_TTP
    )
    provider = domain.organisation("urn:org:party1")
    provider.deploy(
        QuoteService(), ComponentDescriptor(name="QuoteService", non_repudiation=True)
    )
    return domain


class TestRelayHandler:
    def test_relay_counts_forwarded_messages(self, inline_domain):
        client = inline_domain.organisation("urn:org:party0")
        provider = inline_domain.organisation("urn:org:party1")
        relays = inline_domain.relays["urn:ttp:inline"]
        invocation_relay = relays["nr-invocation"]
        before = invocation_relay.relayed_messages
        client.invoke_non_repudiably(provider.uri, "QuoteService", "quote", ["x"])
        assert invocation_relay.relayed_messages == before + 2

    def test_relay_appends_ttp_evidence_to_messages(self, inline_domain):
        client = inline_domain.organisation("urn:org:party0")
        provider = inline_domain.organisation("urn:org:party1")
        outcome = client.invoke_non_repudiably(provider.uri, "QuoteService", "quote", ["y"])
        ttp = inline_domain.ttps["urn:ttp:inline"]
        relay_tokens = ttp.evidence_store.tokens_of_type(
            outcome.run_id, TokenType.TTP_RELAY.value
        )
        # The TTP notarised (at least) the forward and return legs of step 1/2
        # and the forward leg of step 3.
        assert len(relay_tokens) >= 3
        for record in relay_tokens:
            assert record.token["issuer"] == "urn:ttp:inline"

    def test_relay_evidence_verifiable_by_the_parties(self, inline_domain):
        client = inline_domain.organisation("urn:org:party0")
        provider = inline_domain.organisation("urn:org:party1")
        outcome = client.invoke_non_repudiably(provider.uri, "QuoteService", "quote", ["z"])
        from repro.core.evidence import EvidenceToken

        ttp = inline_domain.ttps["urn:ttp:inline"]
        for record in ttp.evidence_store.tokens_of_type(outcome.run_id, TokenType.TTP_RELAY.value):
            token = EvidenceToken.from_dict(record.token)
            assert client.evidence_verifier.verify(token)
            assert provider.evidence_verifier.verify(token)

    def test_non_notarising_relay_adds_no_tokens(self):
        domain = TrustDomain.create(["urn:org:a", "urn:org:b"])
        from repro.core.organisation import Organisation

        ttp = Organisation("urn:ttp:silent", network=domain.network,
                           ca=domain.certificate_authority)
        relays = install_relays(ttp.coordinator, ["nr-invocation"], notarise=False)
        for uri in ("urn:org:a", "urn:org:b"):
            org = domain.organisation(uri)
            ttp.trust(org)
            org.evidence_verifier.pin_key(ttp.uri, ttp.public_key)
        domain.organisation("urn:org:a").route_via("urn:org:b", ttp.coordinator.address)
        provider = domain.organisation("urn:org:b")
        provider.deploy(
            QuoteService(), ComponentDescriptor(name="QuoteService", non_repudiation=True)
        )
        client = domain.organisation("urn:org:a")
        outcome = client.invoke_non_repudiably(provider.uri, "QuoteService", "quote", ["q"])
        assert outcome.succeeded
        assert relays["nr-invocation"].relayed_messages == 2
        assert ttp.evidence_store.total_records() == 0

    def test_install_relays_registers_one_handler_per_protocol(self, inline_domain):
        relays = inline_domain.relays["urn:ttp:inline"]
        assert all(isinstance(handler, RelayProtocolHandler) for handler in relays.values())
        ttp = inline_domain.ttps["urn:ttp:inline"]
        for protocol in relays:
            assert ttp.coordinator.has_handler(protocol)


class TestArbitratorInternals:
    @pytest.fixture
    def arbitrated(self):
        domain = TrustDomain.create(["urn:org:c", "urn:org:s"], with_arbitrator=True)
        server = domain.organisation("urn:org:s")
        server.deploy(
            QuoteService(), ComponentDescriptor(name="QuoteService", non_repudiation=True)
        )
        return domain

    def test_unknown_action_rejected(self, arbitrated):
        arbitrator = arbitrated.arbitrator
        message = B2BProtocolMessage(
            run_id="r", protocol=FAIR_EXCHANGE_PROTOCOL, step=1,
            sender="urn:org:c", recipient=arbitrated.arbitrator_uri,
            payload={"run_id": "r"}, attributes={"action": "bribe"},
        )
        with pytest.raises(ProtocolError):
            arbitrator.process_request(message)

    def test_resolution_without_tokens_rejected(self, arbitrated):
        arbitrator = arbitrated.arbitrator
        message = B2BProtocolMessage(
            run_id="r", protocol=FAIR_EXCHANGE_PROTOCOL, step=1,
            sender="urn:org:s", recipient=arbitrated.arbitrator_uri,
            payload={"run_id": "r"}, attributes={"action": "resolve"},
        )
        with pytest.raises(FairExchangeError):
            arbitrator.process_request(message)

    def test_decision_record_per_run(self, arbitrated):
        client = arbitrated.organisation("urn:org:c")
        server = arbitrated.organisation("urn:org:s")
        outcome = client.invoke_non_repudiably(server.uri, "QuoteService", "quote", ["x"])
        assert arbitrated.arbitrator.decision_for(outcome.run_id) is None
        from repro.core.fair_exchange import FairExchangeClient

        FairExchangeClient(
            server.uri, server.coordinator, arbitrated.arbitrator_uri
        ).request_resolution(outcome.run_id)
        assert arbitrated.arbitrator.decision_for(outcome.run_id) == "resolved"

    def test_abort_is_idempotent(self, arbitrated):
        client = arbitrated.organisation("urn:org:c")
        from repro.core.fair_exchange import FairExchangeClient

        exchange = FairExchangeClient(
            client.uri, client.coordinator, arbitrated.arbitrator_uri
        )
        first = exchange.request_abort("run-abandoned")
        second = exchange.request_abort("run-abandoned")
        assert first.token_type == second.token_type == TokenType.TTP_ABORT.value
        assert arbitrated.arbitrator.decision_for("run-abandoned") == "aborted"
