"""Unit tests for the seeded fault-plan DSL and its injector.

Covers rule/plan validation, the JSON schedule round trip, seeded
determinism, the bounded-consecutive-loss guarantee, partition windows,
``max_shots`` budgets, legacy :class:`FaultModel` bridging and the
hit-count semantics of crash failpoints.
"""

from __future__ import annotations

import json

import pytest

from repro.faults import (
    FailpointRegistry,
    FaultInjector,
    FaultPlan,
    FaultRule,
    VERB_CLOSE,
)
from repro.transport.network import FaultModel


class TestFaultRuleValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRule(fault="gremlin")

    def test_probability_bounds(self):
        with pytest.raises(ValueError, match="probability"):
            FaultRule(fault="drop", probability=1.5)

    def test_deterministic_kinds_refuse_probability(self):
        with pytest.raises(ValueError, match="deterministic"):
            FaultRule(fault="partition", probability=0.5)
        with pytest.raises(ValueError, match="deterministic"):
            FaultRule(
                fault="crash", probability=0.5, failpoint="server-before-reply"
            )

    def test_crash_needs_a_failpoint(self):
        with pytest.raises(ValueError, match="failpoint"):
            FaultRule(fault="crash")

    def test_window_must_be_ordered(self):
        with pytest.raises(ValueError, match="until_message"):
            FaultRule(fault="drop", after_message=5, until_message=5)

    def test_max_shots_positive(self):
        with pytest.raises(ValueError, match="max_shots"):
            FaultRule(fault="drop", max_shots=0)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown fault-rule fields"):
            FaultRule.from_dict({"fault": "drop", "probabilty": 0.1})

    def test_filters_and_window(self):
        rule = FaultRule(
            fault="drop",
            sender="a",
            destination="b",
            operation="op",
            after_message=2,
            until_message=4,
        )
        assert rule.matches("a", "b", "op", 2)
        assert rule.matches("a", "b", "op", 3)
        assert not rule.matches("a", "b", "op", 4)
        assert not rule.matches("a", "b", "op", 1)
        assert not rule.matches("x", "b", "op", 2)
        assert not rule.matches("a", "x", "op", 2)
        assert not rule.matches("a", "b", "other", 2)


class TestScheduleDSL:
    def test_round_trip_preserves_the_plan(self):
        plan = FaultPlan(
            rules=(
                FaultRule(fault="drop", probability=0.25, max_shots=3),
                FaultRule(
                    fault="delay", latency_seconds=0.5, jitter_seconds=0.1
                ),
                FaultRule(fault="partition", after_message=5, until_message=9),
                FaultRule(
                    fault="crash", failpoint="server-before-dispatch"
                ),
            ),
            seed=b"round-trip",
            max_consecutive_failures=3,
            name="round-trip-plan",
        )
        schedule = plan.to_schedule()
        # The artifact format must be plain JSON-serialisable data.
        rebuilt = FaultPlan.from_schedule(json.loads(json.dumps(schedule)))
        assert rebuilt == plan

    def test_seed_coercion(self):
        assert FaultPlan(seed=7).seed == (7).to_bytes(8, "big", signed=True)
        assert FaultPlan(seed="text").seed == b"text"
        with pytest.raises(ValueError, match="seed"):
            FaultPlan(seed=1.5)

    def test_plain_text_seed_in_a_handwritten_schedule(self):
        # Not valid hex -> kept verbatim as utf-8 bytes.
        plan = FaultPlan.from_schedule({"seed": "not-hex!", "rules": []})
        assert plan.seed == b"not-hex!"


class TestInjectorDeterminism:
    def _sequence(self, injector, count=50):
        return [
            injector.decide("urn:a", "urn:b", "op") for _ in range(count)
        ]

    def test_same_seed_same_decisions(self):
        plan = FaultPlan(
            rules=(
                FaultRule(fault="drop", probability=0.3),
                FaultRule(fault="duplicate", probability=0.3),
                FaultRule(fault="reorder", probability=0.3),
                FaultRule(
                    fault="delay", latency_seconds=0.01, jitter_seconds=0.02
                ),
            ),
            seed=b"determinism",
        )
        assert self._sequence(plan.injector()) == self._sequence(plan.injector())

    def test_different_seeds_diverge(self):
        rules = (FaultRule(fault="drop", probability=0.5),)
        one = FaultPlan(rules=rules, seed=b"seed-one").injector()
        two = FaultPlan(rules=rules, seed=b"seed-two").injector()
        assert self._sequence(one) != self._sequence(two)

    def test_consecutive_losses_are_bounded(self):
        plan = FaultPlan(
            rules=(FaultRule(fault="drop", probability=1.0),),
            max_consecutive_failures=4,
        )
        injector = plan.injector()
        decisions = self._sequence(injector, count=10)
        # 4 drops, then the bound forces one admission, repeating.
        assert [d.drop for d in decisions] == [
            True, True, True, True, False,
            True, True, True, True, False,
        ]

    def test_partition_window_is_exact_and_drawless(self):
        plan = FaultPlan(
            rules=(
                FaultRule(fault="partition", after_message=2, until_message=5),
            )
        )
        injector = plan.injector()
        partitioned = [
            injector.decide("urn:a", "urn:b", "op").partitioned
            for _ in range(8)
        ]
        assert partitioned == [
            False, False, True, True, True, False, False, False,
        ]

    def test_max_shots_caps_rule_triggers(self):
        plan = FaultPlan(
            rules=(FaultRule(fault="drop", probability=1.0, max_shots=2),),
            max_consecutive_failures=100,
        )
        injector = plan.injector()
        drops = [
            injector.decide("urn:a", "urn:b", "op").drop for _ in range(5)
        ]
        assert drops == [True, True, False, False, False]

    def test_injector_requires_exactly_one_source(self):
        plan = FaultPlan()
        model = FaultModel(drop_probability=0.1)
        with pytest.raises(ValueError, match="exactly one"):
            FaultInjector()
        with pytest.raises(ValueError, match="exactly one"):
            FaultInjector(plan=plan, model=model)

    def test_model_mode_respects_the_consecutive_bound(self):
        injector = FaultInjector(
            model=FaultModel(
                drop_probability=1.0, max_consecutive_drops=3, seed=b"m"
            )
        )
        drops = [
            injector.decide("urn:a", "urn:b", "op").drop for _ in range(8)
        ]
        assert drops == [True, True, True, False, True, True, True, False]


class TestFaultModelBridge:
    def test_from_fault_model_lifts_every_configured_behaviour(self):
        model = FaultModel(
            drop_probability=0.2,
            duplicate_probability=0.1,
            latency_seconds=0.5,
            jitter_seconds=0.25,
            max_consecutive_drops=7,
            seed=b"legacy",
        )
        plan = FaultPlan.from_fault_model(model)
        assert plan.seed == b"legacy"
        assert plan.max_consecutive_failures == 7
        kinds = [rule.fault for rule in plan.rules]
        assert kinds == ["drop", "delay", "duplicate"]

    def test_from_fault_model_omits_disabled_behaviours(self):
        plan = FaultPlan.from_fault_model(FaultModel(drop_probability=0.5))
        assert [rule.fault for rule in plan.rules] == ["drop"]


class TestCrashFailpoints:
    def test_crash_rules_fire_by_hit_count(self):
        plan = FaultPlan(
            rules=(
                FaultRule(
                    fault="crash",
                    failpoint="server-before-reply",
                    after_message=1,
                    until_message=2,
                ),
            )
        )
        injector = plan.injector()
        # Hits 0, 1, 2: only hit 1 falls inside the window.
        assert [
            injector.should_trigger("server-before-reply") for _ in range(3)
        ] == [False, True, False]
        # Unrelated failpoints never fire.
        assert not injector.should_trigger("server-before-dispatch")

    def test_registry_arms_fire_and_disarm(self):
        registry = FailpointRegistry()
        registry.arm("spot", max_shots=2, after_hits=1)
        # Hit 1 is within after_hits; hits 2 and 3 spend the two shots.
        assert registry.fire("spot") is None
        assert registry.fire("spot") == VERB_CLOSE
        assert registry.fire("spot") == VERB_CLOSE
        assert registry.fire("spot") is None
        registry.arm("gone")
        registry.disarm("gone")
        assert registry.fire("gone") is None

    def test_registry_callable_action(self):
        seen = []
        registry = FailpointRegistry()
        registry.arm(
            "hook", action=lambda context: seen.append(context) or "close"
        )
        assert registry.fire("hook", context={"k": 1}) == VERB_CLOSE
        assert seen == [{"k": 1}]

    def test_registry_consults_a_bound_injector(self):
        plan = FaultPlan(
            rules=(
                FaultRule(
                    fault="crash", failpoint="spot", max_shots=1
                ),
            )
        )
        registry = FailpointRegistry()
        registry.bind_injector(plan.injector())
        assert registry.fire("spot") == VERB_CLOSE
        assert registry.fire("spot") is None
