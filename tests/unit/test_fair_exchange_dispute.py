"""Unit tests for optimistic fair exchange and dispute resolution."""

import pytest

from repro import (
    ClaimType,
    ComponentDescriptor,
    DisputeClaim,
    DisputeResolver,
    EvidenceToken,
    TokenType,
    TrustDomain,
)
from repro.core.fair_exchange import FairExchangeClient
from repro.errors import DisputeError, FairExchangeError
from tests.conftest import QuoteService


@pytest.fixture(scope="module")
def arbitrated_domain():
    domain = TrustDomain.create(
        ["urn:org:client", "urn:org:server"], with_arbitrator=True
    )
    server = domain.organisation("urn:org:server")
    server.deploy(
        QuoteService(), ComponentDescriptor(name="QuoteService", non_repudiation=True)
    )
    return domain


@pytest.fixture
def client(arbitrated_domain):
    return arbitrated_domain.organisation("urn:org:client")


@pytest.fixture
def server(arbitrated_domain):
    return arbitrated_domain.organisation("urn:org:server")


@pytest.fixture
def completed_run(client, server):
    """A finished NR invocation run, returning (run_id, outcome)."""
    outcome = client.invoke_non_repudiably(server.uri, "QuoteService", "quote", ["beam"])
    return outcome.run_id, outcome


class TestFairExchangeResolution:
    def test_server_obtains_affidavit_when_receipt_missing(
        self, arbitrated_domain, client, server, completed_run
    ):
        run_id, _ = completed_run
        exchange = FairExchangeClient(
            server.uri, server.coordinator, arbitrated_domain.arbitrator_uri
        )
        affidavit = exchange.request_resolution(run_id)
        assert affidavit.token_type == TokenType.TTP_AFFIDAVIT.value
        assert affidavit.issuer == arbitrated_domain.arbitrator_uri
        assert server.evidence_verifier.verify(affidavit)
        stored = server.evidence_store.tokens_of_type(run_id, TokenType.TTP_AFFIDAVIT.value)
        assert stored

    def test_resolution_requires_origin_evidence(self, arbitrated_domain, server):
        exchange = FairExchangeClient(
            server.uri, server.coordinator, arbitrated_domain.arbitrator_uri
        )
        with pytest.raises(FairExchangeError):
            exchange.request_resolution("run-that-never-happened")

    def test_abort_then_resolve_is_refused(
        self, arbitrated_domain, client, server, completed_run
    ):
        run_id, _ = completed_run
        client_exchange = FairExchangeClient(
            client.uri, client.coordinator, arbitrated_domain.arbitrator_uri
        )
        abort_token = client_exchange.request_abort(run_id)
        assert abort_token.token_type == TokenType.TTP_ABORT.value

        server_exchange = FairExchangeClient(
            server.uri, server.coordinator, arbitrated_domain.arbitrator_uri
        )
        with pytest.raises(FairExchangeError):
            server_exchange.request_resolution(run_id)

    def test_resolve_then_abort_is_refused(
        self, arbitrated_domain, client, server, completed_run
    ):
        run_id, _ = completed_run
        server_exchange = FairExchangeClient(
            server.uri, server.coordinator, arbitrated_domain.arbitrator_uri
        )
        server_exchange.request_resolution(run_id)
        client_exchange = FairExchangeClient(
            client.uri, client.coordinator, arbitrated_domain.arbitrator_uri
        )
        with pytest.raises(FairExchangeError):
            client_exchange.request_abort(run_id)

    def test_arbitrator_decision_is_sticky(self, arbitrated_domain, client, server, completed_run):
        run_id, _ = completed_run
        exchange = FairExchangeClient(
            server.uri, server.coordinator, arbitrated_domain.arbitrator_uri
        )
        first = exchange.request_resolution(run_id)
        second = exchange.request_resolution(run_id)
        assert first.token_type == second.token_type == TokenType.TTP_AFFIDAVIT.value
        assert arbitrated_domain.arbitrator.decision_for(run_id) == "resolved"


def tokens_from_store(org, run_id):
    return [EvidenceToken.from_dict(record.token) for record in org.evidence_for_run(run_id)]


class TestDisputeResolution:
    def test_client_cannot_deny_request_origin(self, client, server, completed_run):
        run_id, _ = completed_run
        resolver = DisputeResolver(server.evidence_verifier)
        claim = DisputeClaim(
            claim_type=ClaimType.DENIES_REQUEST_ORIGIN,
            run_id=run_id,
            denying_party=client.uri,
        )
        verdict = resolver.adjudicate(claim, tokens_from_store(server, run_id))
        assert verdict.refuted and not verdict.upheld
        assert verdict.supporting_evidence[0].token_type == TokenType.NRO_REQUEST.value

    def test_server_cannot_deny_request_receipt(self, client, server, completed_run):
        run_id, _ = completed_run
        resolver = DisputeResolver(client.evidence_verifier)
        claim = DisputeClaim(
            claim_type=ClaimType.DENIES_REQUEST_RECEIPT,
            run_id=run_id,
            denying_party=server.uri,
        )
        verdict = resolver.adjudicate_from_store(claim, client.evidence_store)
        assert verdict.refuted

    def test_server_cannot_deny_response_origin(self, client, server, completed_run):
        run_id, _ = completed_run
        resolver = DisputeResolver(client.evidence_verifier)
        claim = DisputeClaim(
            claim_type=ClaimType.DENIES_RESPONSE_ORIGIN,
            run_id=run_id,
            denying_party=server.uri,
        )
        assert resolver.adjudicate_from_store(claim, client.evidence_store).refuted

    def test_client_cannot_deny_response_receipt(self, client, server, completed_run):
        run_id, _ = completed_run
        resolver = DisputeResolver(server.evidence_verifier)
        claim = DisputeClaim(
            claim_type=ClaimType.DENIES_RESPONSE_RECEIPT,
            run_id=run_id,
            denying_party=client.uri,
        )
        assert resolver.adjudicate_from_store(claim, server.evidence_store).refuted

    def test_denial_stands_without_evidence(self, client, server):
        resolver = DisputeResolver(server.evidence_verifier)
        claim = DisputeClaim(
            claim_type=ClaimType.DENIES_REQUEST_ORIGIN,
            run_id="run-that-never-happened",
            denying_party=client.uri,
        )
        verdict = resolver.adjudicate(claim, [])
        assert verdict.upheld and not verdict.refuted

    def test_forged_evidence_does_not_refute(self, client, server, completed_run):
        run_id, _ = completed_run
        # The server fabricates a token claiming the client signed it.
        forged = server.evidence_builder.build(
            token_type=TokenType.NRO_REQUEST,
            run_id=run_id,
            step=1,
            recipient=server.uri,
            payload={"forged": True},
        )
        relabelled = EvidenceToken(
            token_id=forged.token_id,
            token_type=forged.token_type,
            run_id=forged.run_id,
            step=forged.step,
            issuer=client.uri,          # claims the client issued it
            recipient=forged.recipient,
            payload_digest=forged.payload_digest,
            issued_at=forged.issued_at,
            details=forged.details,
            signature=forged.signature,  # but it carries the server's signature
        )
        resolver = DisputeResolver(server.evidence_verifier)
        claim = DisputeClaim(
            claim_type=ClaimType.DENIES_REQUEST_ORIGIN,
            run_id=run_id,
            denying_party=client.uri,
        )
        verdict = resolver.adjudicate(claim, [relabelled])
        assert verdict.upheld

    def test_sharing_update_denials_are_refutable(self, domain_factory):
        domain = domain_factory(2)
        a = domain.organisation("urn:org:party0")
        b = domain.organisation("urn:org:party1")
        domain.share_object("doc", {"v": 0})
        outcome = a.propose_update("doc", {"v": 1})
        resolver = DisputeResolver(a.evidence_verifier)

        origin_claim = DisputeClaim(
            claim_type=ClaimType.DENIES_UPDATE_ORIGIN,
            run_id=outcome.run_id,
            denying_party=a.uri,
        )
        assert resolver.adjudicate_from_store(origin_claim, b.evidence_store).refuted

        decision_claim = DisputeClaim(
            claim_type=ClaimType.DENIES_UPDATE_DECISION,
            run_id=outcome.run_id,
            denying_party=b.uri,
        )
        assert resolver.adjudicate_from_store(decision_claim, a.evidence_store).refuted

        agreed_claim = DisputeClaim(
            claim_type=ClaimType.DENIES_AGREED_STATE,
            run_id=outcome.run_id,
            denying_party=b.uri,
        )
        assert resolver.adjudicate_from_store(agreed_claim, a.evidence_store).refuted

    def test_unsupported_claim_type_raises(self, client, server):
        resolver = DisputeResolver(server.evidence_verifier)

        class FakeClaimType:
            value = "fake"

        claim = DisputeClaim(
            claim_type=FakeClaimType(),  # type: ignore[arg-type]
            run_id="run",
            denying_party=client.uri,
        )
        with pytest.raises(DisputeError):
            resolver.adjudicate(claim, [])
