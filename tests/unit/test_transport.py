"""Unit tests for the simulated network, reliable delivery and RMI layer."""

import pytest

from repro.clock import SimulatedClock
from repro.errors import DeliveryError, RemoteInvocationError, UnknownEndpointError
from repro.transport.delivery import ReliableChannel, RetryPolicy
from repro.transport.network import FaultModel, NetworkPartition, SimulatedNetwork
from repro.transport.registry import ObjectRegistry
from repro.transport.rmi import RemoteInvoker, RemoteStub


class TestFaultModel:
    def test_probabilities_validated(self):
        with pytest.raises(ValueError):
            FaultModel(drop_probability=1.5)
        with pytest.raises(ValueError):
            FaultModel(duplicate_probability=-0.1)

    def test_latency_validated(self):
        with pytest.raises(ValueError):
            FaultModel(latency_seconds=-1)

    def test_defaults_are_lossless(self):
        model = FaultModel()
        assert model.drop_probability == 0.0
        assert model.latency_seconds == 0.0


class TestSimulatedNetwork:
    def test_send_reaches_registered_handler(self):
        network = SimulatedNetwork()
        received = []
        network.register("urn:dst", lambda message: received.append(message) or "ack")
        reply = network.send("urn:src", "urn:dst", "ping", {"value": 1})
        assert reply == "ack"
        assert received[0].payload == {"value": 1}
        assert received[0].sender == "urn:src"

    def test_send_to_unknown_endpoint_raises(self):
        network = SimulatedNetwork()
        with pytest.raises(UnknownEndpointError):
            network.send("urn:src", "urn:nowhere", "ping", {})

    def test_offline_endpoint_drops_message(self):
        network = SimulatedNetwork()
        network.register("urn:dst", lambda message: "ack")
        network.set_online("urn:dst", False)
        with pytest.raises(DeliveryError):
            network.send("urn:src", "urn:dst", "ping", {})
        network.set_online("urn:dst", True)
        assert network.send("urn:src", "urn:dst", "ping", {}) == "ack"

    def test_partition_blocks_and_heals(self):
        network = SimulatedNetwork()
        network.register("urn:b", lambda message: "ok")
        network.partition.sever("urn:a", "urn:b")
        with pytest.raises(DeliveryError):
            network.send("urn:a", "urn:b", "op", {})
        network.partition.heal("urn:a", "urn:b")
        assert network.send("urn:a", "urn:b", "op", {}) == "ok"

    def test_statistics_count_messages_and_bytes(self):
        network = SimulatedNetwork()
        network.register("urn:dst", lambda message: "ok")
        network.send("urn:src", "urn:dst", "op", {"k": "v"})
        network.send("urn:src", "urn:dst", "op", {"k": "v"})
        stats = network.statistics
        assert stats.messages_sent == 2
        assert stats.messages_delivered == 2
        assert stats.bytes_delivered > 0
        assert stats.per_operation["op"] == 2

    def test_statistics_snapshot_and_delta(self):
        network = SimulatedNetwork()
        network.register("urn:dst", lambda message: "ok")
        network.send("urn:src", "urn:dst", "op", {})
        before = network.statistics.snapshot()
        network.send("urn:src", "urn:dst", "op", {})
        delta = network.statistics.delta(before)
        assert delta.messages_sent == 1
        assert delta.per_operation == {"op": 1}

    def test_drops_are_injected_but_bounded(self):
        network = SimulatedNetwork(
            FaultModel(drop_probability=0.99, max_consecutive_drops=3, seed=b"drop")
        )
        network.register("urn:dst", lambda message: "ok")
        outcomes = []
        for _ in range(8):
            try:
                outcomes.append(network.send("urn:src", "urn:dst", "op", {}))
            except DeliveryError:
                outcomes.append(None)
        # With max_consecutive_drops=3 at least every 4th attempt succeeds.
        assert "ok" in outcomes
        assert network.statistics.messages_dropped > 0

    def test_latency_advances_simulated_clock(self):
        clock = SimulatedClock()
        network = SimulatedNetwork(FaultModel(latency_seconds=0.25), clock=clock)
        network.register("urn:dst", lambda message: "ok")
        network.send("urn:src", "urn:dst", "op", {})
        network.send("urn:src", "urn:dst", "op", {})
        assert clock.now() == pytest.approx(0.5)
        assert network.statistics.total_latency == pytest.approx(0.5)

    def test_duplicate_delivery_invokes_handler_twice(self):
        network = SimulatedNetwork(FaultModel(duplicate_probability=1.0, seed=b"dup"))
        calls = []
        network.register("urn:dst", lambda message: calls.append(message.message_id))
        network.send("urn:src", "urn:dst", "op", {})
        assert len(calls) == 2
        assert calls[0] == calls[1]
        assert network.statistics.messages_duplicated == 1

    def test_trace_records_messages_when_enabled(self):
        network = SimulatedNetwork()
        network.register("urn:dst", lambda message: "ok")
        network.trace_enabled = True
        network.send("urn:src", "urn:dst", "op", {"a": 1})
        assert len(network.trace) == 1
        network.clear_trace()
        assert network.trace == []

    def test_reset_statistics(self):
        network = SimulatedNetwork()
        network.register("urn:dst", lambda message: "ok")
        network.send("urn:src", "urn:dst", "op", {})
        network.reset_statistics()
        assert network.statistics.messages_sent == 0


class TestNetworkPartition:
    def test_sever_is_bidirectional(self):
        partition = NetworkPartition()
        partition.sever("a", "b")
        assert partition.is_severed("a", "b")
        assert partition.is_severed("b", "a")

    def test_heal_all(self):
        partition = NetworkPartition()
        partition.sever("a", "b")
        partition.sever("a", "c")
        partition.heal_all()
        assert not partition.is_severed("a", "b")
        assert not partition.is_severed("a", "c")


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_multiplier=0.5)

    def test_backoff_grows_and_is_capped(self):
        policy = RetryPolicy(backoff_seconds=0.1, backoff_multiplier=2.0, max_backoff_seconds=0.35)
        assert policy.backoff_for_attempt(0) == pytest.approx(0.1)
        assert policy.backoff_for_attempt(1) == pytest.approx(0.2)
        assert policy.backoff_for_attempt(5) == pytest.approx(0.35)


class TestReliableChannel:
    def test_retries_until_success_on_lossy_network(self):
        network = SimulatedNetwork(
            FaultModel(drop_probability=0.8, max_consecutive_drops=4, seed=b"lossy")
        )
        network.register("urn:dst", lambda message: "delivered")
        channel = ReliableChannel(network, "urn:src", RetryPolicy(max_attempts=20))
        assert channel.send("urn:dst", "op", {}) == "delivered"
        assert channel.attempts_made >= 1

    def test_gives_up_after_budget(self):
        network = SimulatedNetwork()
        network.register("urn:dst", lambda message: "ok")
        network.set_online("urn:dst", False)
        channel = ReliableChannel(network, "urn:src", RetryPolicy(max_attempts=3))
        with pytest.raises(DeliveryError):
            channel.send("urn:dst", "op", {})
        assert channel.attempts_made == 3

    def test_unknown_endpoint_fails_fast_without_retries(self):
        network = SimulatedNetwork()
        channel = ReliableChannel(network, "urn:src", RetryPolicy(max_attempts=5))
        with pytest.raises(UnknownEndpointError):
            channel.send("urn:nowhere", "op", {})
        assert channel.attempts_made == 1


class TestObjectRegistry:
    def test_bind_and_lookup(self):
        registry = ObjectRegistry()
        registry.bind("urn:svc", "service-object")
        assert registry.lookup("urn:svc") == "service-object"
        assert "urn:svc" in registry

    def test_duplicate_bind_rejected_unless_rebind(self):
        registry = ObjectRegistry()
        registry.bind("urn:svc", 1)
        with pytest.raises(ValueError):
            registry.bind("urn:svc", 2)
        registry.rebind("urn:svc", 2)
        assert registry.lookup("urn:svc") == 2

    def test_lookup_missing_raises(self):
        with pytest.raises(UnknownEndpointError):
            ObjectRegistry().lookup("urn:missing")

    def test_unbind_and_names(self):
        registry = ObjectRegistry()
        registry.bind("urn:a", 1)
        registry.bind("urn:b", 2)
        registry.unbind("urn:a")
        assert registry.names() == ["urn:b"]
        assert registry.lookup_optional("urn:a") is None

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            ObjectRegistry().bind("", 1)


class Calculator:
    def add(self, a, b):
        return a + b

    def divide(self, a, b):
        return a / b

    def _private(self):
        return "hidden"


class TestRMI:
    @pytest.fixture
    def wired(self):
        network = SimulatedNetwork()
        server = RemoteInvoker(network, "urn:server")
        client = RemoteInvoker(network, "urn:client")
        server.export("calculator", Calculator())
        return network, server, client

    def test_remote_invocation_returns_result(self, wired):
        _, _, client = wired
        proxy = client.proxy_for("urn:server", "calculator")
        assert proxy.add(2, 3) == 5

    def test_remote_exception_is_propagated(self, wired):
        _, _, client = wired
        proxy = client.proxy_for("urn:server", "calculator")
        with pytest.raises(RemoteInvocationError, match="ZeroDivisionError"):
            proxy.divide(1, 0)

    def test_private_methods_not_exported(self, wired):
        _, _, client = wired
        proxy = client.proxy_for("urn:server", "calculator")
        # The proxy refuses to build underscore-prefixed remote methods...
        with pytest.raises(AttributeError):
            proxy._private  # noqa: B018, SLF001
        # ...and the server-side stub refuses to invoke them even if asked directly.
        with pytest.raises(RemoteInvocationError):
            proxy.invoke("_private", [], {})

    def test_unknown_object_raises(self, wired):
        _, _, client = wired
        proxy = client.proxy_for("urn:server", "missing-object")
        with pytest.raises(RemoteInvocationError):
            proxy.add(1, 2)

    def test_explicit_method_export_list(self):
        network = SimulatedNetwork()
        server = RemoteInvoker(network, "urn:server")
        client = RemoteInvoker(network, "urn:client")
        server.export("calc", Calculator(), methods=["add"])
        proxy = client.proxy_for("urn:server", "calc")
        assert proxy.add(1, 1) == 2
        with pytest.raises(RemoteInvocationError):
            proxy.divide(4, 2)

    def test_stub_lists_exported_names(self):
        stub = RemoteStub(Calculator())
        assert stub.invoke("add", [1, 2], {}) == 3
        network = SimulatedNetwork()
        invoker = RemoteInvoker(network, "urn:x")
        invoker.export("a", Calculator())
        invoker.export("b", Calculator())
        assert invoker.exported_names() == ["a", "b"]
        invoker.unexport("a")
        assert invoker.exported_names() == ["b"]
