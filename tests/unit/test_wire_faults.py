"""Wire-side fault injection: real sockets, real recovery.

Injected resets and corrupt frames must flow through the organic
``DeliveryError`` taxonomy and be recovered by the ordinary retry
machinery; receiver-side frame corruption must be audited and counted
(never a silent reader-thread death); overload must shed with a
retryable reply instead of hanging the sender; and server failpoints
must simulate crash-before-dispatch / crash-before-reply.
"""

from __future__ import annotations

import pytest

from repro.clock import SimulatedClock
from repro.errors import DeliveryError
from repro.faults import FaultPlan, FaultRule
from repro.persistence.audit_log import AuditLog
from repro.transport.delivery import ReliableChannel, RetryPolicy
from repro.transport.network import AUDIT_CATEGORY_TRANSPORT
from repro.transport.wire import WireNetwork
from repro.transport.wire.server import (
    FAILPOINT_BEFORE_DISPATCH,
    FAILPOINT_BEFORE_REPLY,
)


@pytest.fixture
def wire_pair():
    b = WireNetwork(clock=SimulatedClock())
    a = WireNetwork(clock=SimulatedClock())
    yield a, b
    a.close()
    b.close()


def _link(a: WireNetwork, b: WireNetwork, address: str) -> None:
    a.address_book.add(address, b.host, b.port)


def _plan(*rules, **kwargs):
    return FaultPlan(rules=tuple(rules), seed=b"wire-faults", **kwargs)


class TestInjectedSocketFaults:
    def test_injected_reset_recovers_through_retries(self, wire_pair):
        a, b = wire_pair
        calls = []
        b.register("urn:echo", lambda message: calls.append(1) or "pong")
        _link(a, b, "urn:echo")
        a.set_fault_plan(
            _plan(FaultRule(fault="reset", max_shots=1))
        )
        channel = ReliableChannel(
            a, "urn:src", policy=RetryPolicy(max_attempts=4, backoff_seconds=0.001)
        )
        assert channel.send("urn:echo", "op", {"n": 1}) == "pong"
        # The reset destroyed the first attempt before the request left.
        assert calls == [1]
        assert a.statistics.messages_dropped == 1
        assert a.statistics.messages_delivered == 1

    def test_injected_corrupt_frame_is_audited_and_counted_by_the_peer(
        self, wire_pair
    ):
        a, b = wire_pair
        b.register("urn:echo", lambda message: "pong")
        _link(a, b, "urn:echo")
        audit = AuditLog(owner="b", clock=b.clock)
        b.attach_audit_log(audit)
        a.set_fault_plan(
            _plan(FaultRule(fault="corrupt", max_shots=1))
        )
        channel = ReliableChannel(
            a, "urn:src", policy=RetryPolicy(max_attempts=4, backoff_seconds=0.001)
        )
        assert channel.send("urn:echo", "op", {"n": 1}) == "pong"
        assert a.statistics.messages_dropped == 1
        # The victim saw a framing violation, counted it, audited it, and
        # killed the poisoned connection -- no silent reader-thread death.
        assert b.statistics.frame_decode_failures == 1
        failures = [
            record.details
            for record in audit.records(category=AUDIT_CATEGORY_TRANSPORT)
            if record.details.get("event") == "frame-decode-failure"
        ]
        assert len(failures) == 1
        assert failures[0]["action"] == "connection closed"

    def test_unfiltered_raw_send_surfaces_the_injected_loss(self, wire_pair):
        a, b = wire_pair
        b.register("urn:echo", lambda message: "pong")
        _link(a, b, "urn:echo")
        a.set_fault_plan(_plan(FaultRule(fault="drop", max_shots=1)))
        with pytest.raises(DeliveryError, match="was lost"):
            a.send("urn:src", "urn:echo", "op", {})
        assert a.send("urn:src", "urn:echo", "op", {}) == "pong"

    def test_partition_window_severs_then_heals(self, wire_pair):
        a, b = wire_pair
        b.register("urn:echo", lambda message: "pong")
        _link(a, b, "urn:echo")
        a.set_fault_plan(
            _plan(
                FaultRule(fault="partition", after_message=0, until_message=2)
            )
        )
        for _ in range(2):
            with pytest.raises(DeliveryError, match="severed by fault plan"):
                a.send("urn:src", "urn:echo", "op", {})
        assert a.send("urn:src", "urn:echo", "op", {}) == "pong"
        assert a.statistics.messages_dropped == 2

    def test_injected_duplicate_reaches_the_handler_twice(self, wire_pair):
        a, b = wire_pair
        calls = []
        b.register("urn:echo", lambda message: calls.append(1) or "pong")
        _link(a, b, "urn:echo")
        a.set_fault_plan(
            _plan(FaultRule(fault="duplicate", max_shots=1))
        )
        assert a.send("urn:src", "urn:echo", "op", {}) == "pong"
        assert calls == [1, 1]
        assert a.statistics.messages_duplicated == 1


class TestLoadShedding:
    def test_shed_frames_surface_as_retryable_overload(self):
        # max_inflight_frames=0 sheds every inbound frame: the degenerate
        # configuration that makes overload deterministic in a test.
        b = WireNetwork(clock=SimulatedClock(), max_inflight_frames=0)
        a = WireNetwork(clock=SimulatedClock())
        try:
            b.register("urn:echo", lambda message: "pong")
            _link(a, b, "urn:echo")
            audit = AuditLog(owner="b", clock=b.clock)
            b.attach_audit_log(audit)
            with pytest.raises(DeliveryError, match="overloaded"):
                a.send("urn:src", "urn:echo", "op", {})
            assert b.statistics.messages_shed == 1
            assert b.server.frames_shed == 1
            shed = [
                record.details
                for record in audit.records(category=AUDIT_CATEGORY_TRANSPORT)
                if record.details.get("event") == "inbound-frame-shed"
            ]
            assert len(shed) == 1
        finally:
            a.close()
            b.close()

    def test_shedding_is_retryable_never_a_hang(self):
        b = WireNetwork(clock=SimulatedClock(), max_inflight_frames=0)
        a = WireNetwork(clock=SimulatedClock())
        try:
            b.register("urn:echo", lambda message: "pong")
            _link(a, b, "urn:echo")
            channel = ReliableChannel(
                a,
                "urn:src",
                policy=RetryPolicy(max_attempts=3, backoff_seconds=0.001),
            )
            # Every attempt is shed; the channel exhausts its budget with a
            # clean retryable error instead of blocking forever.
            with pytest.raises(DeliveryError, match="failed after 3 attempts"):
                channel.send("urn:echo", "op", {})
            assert b.statistics.messages_shed == 3
        finally:
            a.close()
            b.close()


class TestServerFailpoints:
    def test_crash_before_reply_loses_the_reply_not_the_dispatch(
        self, wire_pair
    ):
        a, b = wire_pair
        calls = []
        b.register("urn:echo", lambda message: calls.append(1) or "pong")
        _link(a, b, "urn:echo")
        b.failpoints.arm(FAILPOINT_BEFORE_REPLY, max_shots=1)
        channel = ReliableChannel(
            a, "urn:src", policy=RetryPolicy(max_attempts=4, backoff_seconds=0.001)
        )
        assert channel.send("urn:echo", "op", {"n": 1}) == "pong"
        # Processed-but-reply-lost: the handler ran on both attempts (the
        # wire has no dedup; at-most-once belongs to the protocol layer).
        assert calls == [1, 1]

    def test_crash_before_dispatch_loses_the_request_entirely(self, wire_pair):
        a, b = wire_pair
        calls = []
        b.register("urn:echo", lambda message: calls.append(1) or "pong")
        _link(a, b, "urn:echo")
        b.failpoints.arm(FAILPOINT_BEFORE_DISPATCH, max_shots=1)
        channel = ReliableChannel(
            a, "urn:src", policy=RetryPolicy(max_attempts=4, backoff_seconds=0.001)
        )
        assert channel.send("urn:echo", "op", {"n": 1}) == "pong"
        assert calls == [1]

    def test_crash_rules_in_a_plan_drive_the_server_failpoints(self, wire_pair):
        a, b = wire_pair
        calls = []
        b.register("urn:echo", lambda message: calls.append(1) or "pong")
        _link(a, b, "urn:echo")
        # The plan installs on the RECEIVER: its injector feeds the server's
        # failpoint registry through bind_injector.
        b.set_fault_plan(
            _plan(
                FaultRule(
                    fault="crash",
                    failpoint=FAILPOINT_BEFORE_REPLY,
                    max_shots=1,
                )
            )
        )
        channel = ReliableChannel(
            a, "urn:src", policy=RetryPolicy(max_attempts=4, backoff_seconds=0.001)
        )
        assert channel.send("urn:echo", "op", {"n": 1}) == "pong"
        assert calls == [1, 1]
