"""Unit tests for protocol messages, runs and the B2BCoordinator."""

import pytest

from repro.clock import SimulatedClock
from repro.core.coordinator import B2BCoordinator, COORDINATOR_OBJECT_NAME, LocalServices
from repro.core.evidence import EvidenceBuilder, EvidenceVerifier, TokenType
from repro.core.messages import B2BProtocolMessage
from repro.core.protocol import B2BProtocolHandler, ProtocolRun, RunRegistry, RunStatus
from repro.crypto.signature import Signer, get_scheme
from repro.errors import ProtocolError, ProtocolStateError
from repro.persistence.audit_log import AuditLog
from repro.persistence.evidence_store import EvidenceStore
from repro.persistence.state_store import StateStore
from repro.transport.network import SimulatedNetwork
from repro.transport.rmi import RemoteInvoker


def make_services(party):
    keypair = get_scheme("hmac").generate_keypair()
    verifier = EvidenceVerifier(pinned_keys={party: keypair.public})
    return LocalServices(
        evidence_builder=EvidenceBuilder(party, Signer(keypair.private)),
        evidence_verifier=verifier,
        evidence_store=EvidenceStore(party),
        state_store=StateStore(party),
        audit_log=AuditLog(party),
        clock=SimulatedClock(),
    )


def make_coordinator(network, party):
    invoker = RemoteInvoker(network, party)
    return B2BCoordinator(party=party, invoker=invoker, services=make_services(party))


class EchoHandler(B2BProtocolHandler):
    protocol = "echo"

    def __init__(self):
        super().__init__()
        self.one_way_messages = []

    def process(self, message):
        self.one_way_messages.append(message)

    def process_request(self, message):
        return B2BProtocolMessage(
            run_id=message.run_id,
            protocol=self.protocol,
            step=message.step + 1,
            sender=message.recipient,
            recipient=message.sender,
            payload={"echo": message.payload},
        )


class TestB2BProtocolMessage:
    def test_token_accessors(self):
        message = B2BProtocolMessage(
            run_id="run", protocol="p", step=1, sender="a", recipient="b"
        )
        assert message.token_of_type(TokenType.NRO_REQUEST.value) is None
        with pytest.raises(ProtocolError):
            message.require_token(TokenType.NRO_REQUEST.value)

    def test_dict_roundtrip(self):
        message = B2BProtocolMessage(
            run_id="run",
            protocol="p",
            step=2,
            sender="urn:a",
            recipient="urn:b",
            payload={"value": 7, "blob": b"\x01"},
            attributes={"action": "propose"},
            reply_to="urn:a",
        )
        restored = B2BProtocolMessage.from_dict(message.to_dict())
        assert restored.run_id == "run"
        assert restored.payload == {"value": 7, "blob": b"\x01"}
        assert restored.attributes == {"action": "propose"}
        assert restored.message_id == message.message_id

    def test_encoded_size_positive_and_grows(self):
        small = B2BProtocolMessage(
            run_id="run", protocol="p", step=1, sender="a", recipient="b", payload={"x": "1"}
        )
        large = B2BProtocolMessage(
            run_id="run", protocol="p", step=1, sender="a", recipient="b",
            payload={"x": "1" * 5000},
        )
        assert 0 < small.encoded_size() < large.encoded_size()

    def test_message_ids_are_unique(self):
        a = B2BProtocolMessage(run_id="r", protocol="p", step=1, sender="a", recipient="b")
        b = B2BProtocolMessage(run_id="r", protocol="p", step=1, sender="a", recipient="b")
        assert a.message_id != b.message_id


class TestProtocolRun:
    def test_duplicate_messages_detected(self):
        run = ProtocolRun(run_id="r", protocol="p", initiator="a", responder="b")
        message = B2BProtocolMessage(run_id="r", protocol="p", step=1, sender="a", recipient="b")
        assert run.record_message(message)
        assert not run.record_message(message)
        assert run.last_step == 1

    def test_lifecycle_transitions(self):
        run = ProtocolRun(run_id="r", protocol="p", initiator="a", responder="b")
        assert run.status is RunStatus.ACTIVE and not run.finished
        run.complete()
        assert run.finished

    def test_registry_create_and_require(self):
        registry = RunRegistry()
        run = ProtocolRun(run_id="r", protocol="p", initiator="a", responder="b")
        registry.create(run)
        assert registry.require("r") is run
        with pytest.raises(ProtocolStateError):
            registry.create(run)
        with pytest.raises(ProtocolStateError):
            registry.require("missing")
        assert registry.get("missing") is None

    def test_registry_active_runs(self):
        registry = RunRegistry()
        active = registry.get_or_create(ProtocolRun("a", "p", "x", "y"))
        finished = registry.get_or_create(ProtocolRun("b", "p", "x", "y"))
        finished.abort()
        assert registry.active_runs() == [active]
        assert len(registry.all_runs()) == 2

    def test_base_handler_rejects_unimplemented_paths(self):
        handler = B2BProtocolHandler()
        handler.protocol = "p"
        message = B2BProtocolMessage(run_id="r", protocol="p", step=1, sender="a", recipient="b")
        with pytest.raises(ProtocolError):
            handler.process(message)
        with pytest.raises(ProtocolError):
            handler.process_request(message)


class TestB2BCoordinator:
    @pytest.fixture
    def wired(self):
        network = SimulatedNetwork()
        alpha = make_coordinator(network, "urn:org:alpha")
        beta = make_coordinator(network, "urn:org:beta")
        alpha.add_route("urn:org:beta", "urn:org:beta")
        beta.add_route("urn:org:alpha", "urn:org:alpha")
        return network, alpha, beta

    def test_handler_registration_and_lookup(self, wired):
        _, alpha, _ = wired
        handler = EchoHandler()
        alpha.register_handler(handler)
        assert alpha.has_handler("echo")
        assert alpha.handler_for("echo") is handler
        assert "echo" in alpha.registered_protocols()
        with pytest.raises(ProtocolError):
            alpha.register_handler(EchoHandler())
        alpha.register_handler(EchoHandler(), replace=True)

    def test_unnamed_handler_rejected(self, wired):
        _, alpha, _ = wired

        class Nameless(B2BProtocolHandler):
            protocol = ""

        with pytest.raises(ProtocolError):
            alpha.register_handler(Nameless())

    def test_missing_handler_raises(self, wired):
        _, alpha, _ = wired
        message = B2BProtocolMessage(
            run_id="r", protocol="unknown", step=1, sender="x", recipient="urn:org:alpha"
        )
        with pytest.raises(ProtocolError):
            alpha.deliver(message)

    def test_request_roundtrip_between_coordinators(self, wired):
        _, alpha, beta = wired
        beta.register_handler(EchoHandler())
        request = B2BProtocolMessage(
            run_id="run-1",
            protocol="echo",
            step=1,
            sender="urn:org:alpha",
            recipient="urn:org:beta",
            payload={"ping": 1},
        )
        response = alpha.request(request)
        assert response.payload == {"echo": {"ping": 1}}
        assert response.step == 2
        assert request.reply_to == "urn:org:alpha"

    def test_one_way_send(self, wired):
        _, alpha, beta = wired
        handler = EchoHandler()
        beta.register_handler(handler)
        message = B2BProtocolMessage(
            run_id="run-1",
            protocol="echo",
            step=3,
            sender="urn:org:alpha",
            recipient="urn:org:beta",
            payload={"bye": True},
        )
        alpha.send(message)
        assert len(handler.one_way_messages) == 1

    def test_missing_route_raises(self, wired):
        _, alpha, _ = wired
        message = B2BProtocolMessage(
            run_id="r", protocol="echo", step=1, sender="urn:org:alpha", recipient="urn:org:gamma"
        )
        with pytest.raises(ProtocolError):
            alpha.request(message)
        assert alpha.known_parties() == ["urn:org:beta"]

    def test_send_to_explicit_address(self, wired):
        _, alpha, beta = wired
        handler = EchoHandler()
        beta.register_handler(handler)
        message = B2BProtocolMessage(
            run_id="r", protocol="echo", step=1, sender="urn:org:alpha", recipient="urn:org:beta"
        )
        alpha.send_to_address("urn:org:beta", message)
        assert len(handler.one_way_messages) == 1
        response = alpha.request_to_address(
            "urn:org:beta",
            B2BProtocolMessage(
                run_id="r2", protocol="echo", step=1, sender="urn:org:alpha",
                recipient="urn:org:beta", payload={"n": 2},
            ),
        )
        assert response.payload == {"echo": {"n": 2}}

    def test_route_override_redirects_traffic(self, wired):
        network, alpha, beta = wired
        relay_handler = EchoHandler()
        relay = make_coordinator(network, "urn:ttp:relay")
        relay.register_handler(relay_handler)
        # Alpha now routes traffic for beta through the relay endpoint.
        alpha.add_route("urn:org:beta", "urn:ttp:relay")
        message = B2BProtocolMessage(
            run_id="r", protocol="echo", step=3, sender="urn:org:alpha", recipient="urn:org:beta"
        )
        alpha.send(message)
        assert len(relay_handler.one_way_messages) == 1

    def test_coordinator_exported_under_well_known_name(self, wired):
        _, alpha, _ = wired
        assert COORDINATOR_OBJECT_NAME in alpha._invoker.exported_names()  # noqa: SLF001
