"""Unit tests for canonical serialisation and the clock abstraction."""

import pytest

from repro import codec
from repro.clock import MonotonicCounter, SimulatedClock, SystemClock


class TestCodec:
    def test_scalars_roundtrip(self):
        for value in (None, True, False, 0, 42, -1, 3.5, "text"):
            assert codec.decode(codec.encode(value)) == value

    def test_bytes_roundtrip(self):
        assert codec.decode(codec.encode(b"\x00\x01binary")) == b"\x00\x01binary"

    def test_nested_containers_roundtrip(self):
        value = {"list": [1, 2, {"inner": b"bytes"}], "tuple": (1, 2)}
        decoded = codec.decode(codec.encode(value))
        assert decoded["list"][2]["inner"] == b"bytes"
        assert decoded["tuple"] == [1, 2]  # tuples normalise to lists

    def test_sets_roundtrip(self):
        assert codec.decode(codec.encode({"members": {"a", "b"}}))["members"] == {"a", "b"}

    def test_tag_shaped_plain_dicts_roundtrip(self):
        # Plain dicts whose keys collide with the codec's own tags must be
        # escaped, not misread as the tagged type on decode.
        for value in (
            {"__set__": None},
            {"__set__": ["a", "b"]},
            {"__bytes__": "not hex"},
            {"__object__": "X", "data": 1},
            {"__literal__": {"nested": True}},
            {"__literal__": {"__set__": [1]}},
        ):
            assert codec.decode(codec.encode(value)) == value

    def test_tag_shaped_dict_escape_is_canonical(self):
        # Both encoder paths (streaming writer and to_jsonable) agree.
        value = {"__set__": [1, 2]}
        import json

        assert codec.encode(value) == json.dumps(
            codec.to_jsonable(value), separators=(",", ":"), sort_keys=True
        ).encode("utf-8")

    def test_encoding_is_canonical_and_order_independent(self):
        a = codec.encode({"x": 1, "y": 2})
        b = codec.encode({"y": 2, "x": 1})
        assert a == b

    def test_different_values_encode_differently(self):
        assert codec.encode({"x": 1}) != codec.encode({"x": 2})

    def test_object_with_to_dict_is_encoded(self):
        class Thing:
            def to_dict(self):
                return {"field": 7}

        encoded = codec.encode(Thing())
        assert b"Thing" in encoded
        assert codec.decode(encoded) == {"field": 7}

    def test_unencodable_value_raises(self):
        with pytest.raises(codec.CodecError):
            codec.encode(object())

    def test_non_string_keys_rejected(self):
        with pytest.raises(codec.CodecError):
            codec.encode({1: "value"})

    def test_encoded_size_matches_length(self):
        value = {"payload": "x" * 100}
        assert codec.encoded_size(value) == len(codec.encode(value))


class TestSimulatedClock:
    def test_starts_at_requested_time(self):
        assert SimulatedClock(start=10.0).now() == 10.0

    def test_advance_moves_time_forward(self):
        clock = SimulatedClock()
        clock.advance(5.0)
        clock.sleep(2.5)
        assert clock.now() == 7.5

    def test_cannot_go_backwards(self):
        clock = SimulatedClock()
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_time_does_not_pass_by_itself(self):
        clock = SimulatedClock(start=3.0)
        assert clock.now() == clock.now() == 3.0


class TestSystemClock:
    def test_now_is_monotone_enough(self):
        clock = SystemClock()
        first = clock.now()
        second = clock.now()
        assert second >= first

    def test_sleep_zero_returns_immediately(self):
        SystemClock().sleep(0)


class TestMonotonicCounter:
    def test_counts_up_from_start(self):
        counter = MonotonicCounter(start=5)
        assert [counter.next() for _ in range(3)] == [5, 6, 7]

    def test_values_are_unique_across_many_calls(self):
        counter = MonotonicCounter()
        values = [counter.next() for _ in range(1000)]
        assert len(set(values)) == 1000
