#!/usr/bin/env python
"""Comparing the three trust-domain deployment styles of Figure 3.

Runs the same interaction (one non-repudiable invocation and one agreed
update to shared information) over:

* a direct trust domain (Figure 3(c));
* a single inline TTP (Figure 3(a));
* distributed inline TTPs, one per organisation (Figure 3(b));

and reports the observable cost of each style: protocol messages on the wire,
bytes transferred, messages relayed and notarised by TTPs, and the evidence
accumulated by the TTPs themselves.  It also demonstrates the offline
arbitrator (optimistic fair exchange) that lets the direct style relax its
assumptions, as discussed in Section 4.

Run with::

    python examples/trust_domains.py
"""

from __future__ import annotations

from repro import ComponentDescriptor, DeploymentStyle, DomainConfig, TrustDomain
from repro.core.fair_exchange import FairExchangeClient


class QuoteService:
    def quote(self, part: str, quantity: int = 1) -> dict:
        return {"part": part, "quantity": quantity, "price": 120 * quantity}


def run_scenario(style: DeploymentStyle) -> dict:
    """Build a domain of the given style and run one invocation + one update."""
    domain = TrustDomain.create(
        ["urn:org:client", "urn:org:provider"], config=DomainConfig(style=style)
    )
    provider = domain.organisation("urn:org:provider")
    client = domain.organisation("urn:org:client")
    provider.deploy(
        QuoteService(), ComponentDescriptor(name="QuoteService", non_repudiation=True)
    )
    domain.share_object("bill-of-materials", {"parts": []})

    before = domain.network.statistics.snapshot()
    invocation = client.invoke_non_repudiably(
        provider.uri, "QuoteService", "quote", ["axle"], {"quantity": 2}
    )
    sharing = client.propose_update("bill-of-materials", {"parts": ["axle", "axle"]})
    delta = domain.network.statistics.delta(before)

    ttp_evidence = sum(ttp.evidence_store.total_records() for ttp in domain.ttps.values())
    return {
        "style": style.value,
        "invocation_ok": invocation.succeeded,
        "sharing_ok": sharing.agreed,
        "messages": delta.messages_sent,
        "bytes": delta.bytes_delivered,
        "relayed": domain.total_relayed_messages(),
        "ttp_evidence_records": ttp_evidence,
    }


def demonstrate_offline_arbitrator() -> None:
    """Direct deployment + offline TTP arbitrator for fair-exchange recovery."""
    domain = TrustDomain.create(
        ["urn:org:client", "urn:org:provider"],
        config=DomainConfig(with_arbitrator=True),
    )
    provider = domain.organisation("urn:org:provider")
    client = domain.organisation("urn:org:client")
    provider.deploy(
        QuoteService(), ComponentDescriptor(name="QuoteService", non_repudiation=True)
    )
    outcome = client.invoke_non_repudiably(provider.uri, "QuoteService", "quote", ["hub"])

    # Suppose the provider never received the client's final receipt.  It asks
    # the (offline) arbitrator to resolve the run: the TTP verifies the origin
    # evidence and issues an affidavit that stands in for the missing receipt.
    exchange = FairExchangeClient(provider.uri, provider.coordinator, domain.arbitrator_uri)
    affidavit = exchange.request_resolution(outcome.run_id)
    print("\noffline arbitrator demonstration (optimistic fair exchange):")
    print("  affidavit type:", affidavit.token_type)
    print("  issued by:", affidavit.issuer)
    print("  verifiable by the provider:", provider.evidence_verifier.verify(affidavit))

    # A later abort attempt by the client is refused: the first decision is final.
    client_exchange = FairExchangeClient(client.uri, client.coordinator, domain.arbitrator_uri)
    try:
        client_exchange.request_abort(outcome.run_id)
    except Exception as error:  # noqa: BLE001 - demonstration
        print("  subsequent abort refused:", error)


def main() -> None:
    print(f"{'style':<18} {'ok':<5} {'messages':>9} {'bytes':>9} {'relayed':>8} {'ttp evidence':>13}")
    for style in (
        DeploymentStyle.DIRECT,
        DeploymentStyle.INLINE_TTP,
        DeploymentStyle.DISTRIBUTED_TTP,
    ):
        row = run_scenario(style)
        ok = "yes" if row["invocation_ok"] and row["sharing_ok"] else "NO"
        print(
            f"{row['style']:<18} {ok:<5} {row['messages']:>9} {row['bytes']:>9} "
            f"{row['relayed']:>8} {row['ttp_evidence_records']:>13}"
        )
    demonstrate_offline_arbitrator()


if __name__ == "__main__":
    main()
