#!/usr/bin/env python
"""Non-repudiable information sharing between two OS processes.

Every other example simulates the network inside one interpreter.  This one
does what the paper's middleware was built for: two organisations whose
trusted interceptors live in *different processes*, exchanging protocol
messages over real TCP sockets through the wire transport
(:mod:`repro.transport.wire`).

The script plays both roles.  Run without arguments it is organisation A's
process: it starts a wire node, spawns organisation B's process (this same
file with ``--peer``), exchanges credentials over the socket, proposes an
update to a shared document, and verifies the non-repudiation evidence it
holds.  The peer process independently validates the proposal, applies the
agreed state and verifies the evidence *it* holds -- so after the run, both
sides can prove origin and agreement of the update to a third party without
trusting each other.

Both processes configure their domain through the ``storage="sqlite:..."``
profile pointing at the *same* embedded-KV file: each organisation's
evidence, audit and journal records live under its own key prefix, so one
store serves every process and a later reopen sees the evidence without
rebuilding any in-memory index.

Both processes also run with the observability plane on.  The trace context
crosses the socket inside the call envelope, so when B ships its spans back
to A the two halves assemble into one connected span tree for the run --
proposer fan-out, B's remote handlers, commit and outcome delivery -- which
A renders alongside Prometheus-text and JSON metric exports.

Run with::

    python examples/two_process_sharing.py
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro import (
    DomainConfig,
    DurabilityConfig,
    TokenType,
    TransportConfig,
    TrustDomain,
)
from repro.core.config import ObservabilityConfig
from repro.observability import runtime as observability
from repro.observability.exporters import (
    metrics_snapshot,
    render_json,
    render_prometheus,
)
from repro.observability.tracing import render_tree
from repro.transport.wire import WireTransport

ORG_A = "urn:org:design-house"
ORG_B = "urn:org:fabrication"
PARTIES = [ORG_A, ORG_B]
OBJECT_ID = "component-spec"
INITIAL_STATE = {"material": "unspecified", "tolerance_mm": None, "revision": 0}
AGREED_STATE = {"material": "Ti-6Al-4V", "tolerance_mm": 0.05, "revision": 1}


def domain_config(transport: WireTransport, directory: str) -> DomainConfig:
    """Both processes share one SQLite evidence file under the run directory."""
    return DomainConfig(
        scheme="hmac",
        transport=TransportConfig(wire=transport),
        durability=DurabilityConfig(
            storage=f"sqlite:{Path(directory) / 'evidence.db'}"
        ),
        observability=ObservabilityConfig(),
    )


def verify_held_evidence(organisation, run_id):
    """Re-verify every token this organisation stored for the run."""
    from repro.core.evidence import EvidenceToken

    verified = []
    for record in organisation.evidence_store.evidence_for_run(run_id):
        token = EvidenceToken.from_dict(record.token)
        organisation.evidence_verifier.require_valid(token, expected_run_id=run_id)
        verified.append((record.token_type, record.role))
    return sorted(verified)


# -- organisation B's process --------------------------------------------------


def peer_main(directory: str) -> None:
    a_endpoint = json.loads((Path(directory) / "org-a.json").read_text())
    transport = WireTransport(
        local_parties=[ORG_B],
        peers={ORG_A: (a_endpoint["host"], a_endpoint["port"])},
    )
    # create() exchanges credentials with A's process over the socket before
    # returning: B can then verify A's signatures, and vice versa.
    domain = TrustDomain.create(
        PARTIES, config=domain_config(transport, directory)
    )
    domain.share_object(OBJECT_ID, dict(INITIAL_STATE))
    org_b = domain.organisation(ORG_B)
    (Path(directory) / "org-b-ready").touch()

    # B's interceptor now serves A's proposal from the wire; wait until the
    # outcome evidence lands, then verify what *this* side holds.
    deadline = time.monotonic() + 60
    run_ids = []
    while time.monotonic() < deadline:
        run_ids = org_b.evidence_store.run_ids()
        if run_ids and org_b.evidence_store.tokens_of_type(
            run_ids[0], TokenType.NR_OUTCOME.value
        ):
            break
        time.sleep(0.05)
    assert run_ids, "no protocol run ever reached organisation B"
    run_id = run_ids[0]
    assert org_b.shared_state(OBJECT_ID) == AGREED_STATE

    result = {
        "run_id": run_id,
        "state": org_b.shared_state(OBJECT_ID),
        "verified_evidence": verify_held_evidence(org_b, run_id),
        # B's half of the distributed trace: the handler spans this process
        # recorded for the run, for A to merge into the full tree.
        "spans": observability.STATE.tracing.spans(run_id),
    }
    (Path(directory) / "org-b-result.json").write_text(json.dumps(result))
    transport.close()


# -- organisation A's process (the entry point) --------------------------------


def main() -> None:
    directory = tempfile.mkdtemp(prefix="two-process-sharing-")
    transport = WireTransport(
        local_parties=[ORG_A],
        await_remote_credentials=False,  # B introduces itself when it starts
    )
    domain = TrustDomain.create(PARTIES, config=domain_config(transport, directory))
    (Path(directory) / "org-a.json").write_text(
        json.dumps({"host": transport.host, "port": transport.port})
    )
    print(f"organisation A listening on {transport.host}:{transport.port}")

    peer = subprocess.Popen(
        [sys.executable, str(Path(__file__).resolve()), "--peer", "--dir", directory]
    )
    try:
        transport.wait_for_party(ORG_B, timeout=30)
        print("organisation B introduced itself from its own process")
        domain.share_object(OBJECT_ID, dict(INITIAL_STATE))
        deadline = time.monotonic() + 60
        while not (Path(directory) / "org-b-ready").exists():
            assert peer.poll() is None, "organisation B's process died during setup"
            assert time.monotonic() < deadline, "organisation B never became ready"
            time.sleep(0.05)

        org_a = domain.organisation(ORG_A)
        outcome = org_a.propose_update(OBJECT_ID, dict(AGREED_STATE))
        assert outcome.agreed, outcome.reason
        print(f"update agreed across processes (run {outcome.run_id})")
        print(f"  replica at A: {org_a.shared_state(OBJECT_ID)}")

        for token_type, role in verify_held_evidence(org_a, outcome.run_id):
            print(f"  A holds verified evidence: {token_type} ({role})")

        assert peer.wait(timeout=60) == 0, "organisation B's process failed"
        peer_result = json.loads(
            (Path(directory) / "org-b-result.json").read_text()
        )
        assert peer_result["run_id"] == outcome.run_id
        assert peer_result["state"] == AGREED_STATE
        print(f"  replica at B: {peer_result['state']}")
        for token_type, role in peer_result["verified_evidence"]:
            print(f"  B holds verified evidence: {token_type} ({role})")
        print("non-repudiation evidence verified on both sides of the socket")

        # Both processes wrote into the same embedded-KV file, each under its
        # own key prefix: the store outlives both interpreters, and a reopen
        # scans only what it queries instead of rebuilding an index.
        from repro.persistence import SQLiteBackend

        with SQLiteBackend(str(Path(directory) / "evidence.db")) as store:
            for uri in PARTIES:
                records, size = store.scan_stats(f"evidence:{uri}:")
                print(f"  shared store: {records} evidence records"
                      f" ({size} bytes) under evidence:{uri}:")
                assert records > 0

        # The run's trace crossed the socket with it: merging A's spans with
        # the ones B shipped back yields one connected tree for the run --
        # B's handlers parent to the contexts A's messages carried over TCP.
        merged = observability.STATE.tracing.spans(outcome.run_id) + [
            span for span in peer_result["spans"]
            if span["trace_id"] == outcome.run_id
        ]
        print("\ndistributed span tree of the cross-process update:")
        print(render_tree(merged, outcome.run_id))
        prometheus = render_prometheus(metrics_snapshot())
        print("metrics (Prometheus text, excerpt):")
        for line in prometheus.splitlines():
            if line.startswith("repro_wire_round_trip_seconds_count") or (
                line.startswith("repro_run_duration_seconds_")
                and "bucket" not in line
            ):
                print(f"  {line}")
        metrics_json = json.loads(render_json())
        print("metrics (JSON): histograms exported ="
              f" {len(metrics_json['histograms'])}")
    finally:
        if peer.poll() is None:
            peer.kill()
        transport.close()
        import shutil

        shutil.rmtree(directory, ignore_errors=True)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--peer", action="store_true")
    parser.add_argument("--dir")
    arguments = parser.parse_args()
    if arguments.peer:
        peer_main(arguments.dir)
    else:
        main()
