#!/usr/bin/env python
"""The paper's motivating example (Section 2, Figure 1): a virtual enterprise.

A specialist car dealer orders a car from a specialist car manufacturer, which
negotiates component specifications with three part suppliers.  The composite
service combines both building blocks:

* **NR-Invocation** -- the dealer's order, and the manufacturer's availability
  queries to the suppliers, are non-repudiable service invocations;
* **NR-Sharing** -- the drive-train specification negotiated by the
  manufacturer and suppliers A and B is shared information, updated only by
  unanimous, attributable agreement; supplier C joins the group later through
  the non-repudiable connect protocol.

Run with::

    python examples/virtual_enterprise.py
"""

from __future__ import annotations

from repro import (
    CallableValidator,
    ClaimType,
    ComponentDescriptor,
    DisputeClaim,
    DisputeResolver,
    TrustDomain,
)

DEALER = "urn:ve:car-dealer"
MANUFACTURER = "urn:ve:car-manufacturer"
SUPPLIER_A = "urn:ve:part-supplier-a"
SUPPLIER_B = "urn:ve:part-supplier-b"
SUPPLIER_C = "urn:ve:part-supplier-c"


class OrderService:
    """Manufacturer-side service taking orders from the dealer."""

    def __init__(self) -> None:
        self.orders = {}

    def place_order(self, model: str, options: dict) -> dict:
        order_id = f"order-{len(self.orders) + 1}"
        self.orders[order_id] = {"model": model, "options": options}
        return {"order_id": order_id, "status": "accepted"}


class PartCatalogue:
    """Supplier-side service answering availability queries."""

    def __init__(self, parts: list) -> None:
        self._parts = set(parts)

    def availability(self, part: str) -> dict:
        return {"part": part, "available": part in self._parts, "lead_time_weeks": 6}


def cost_ceiling(limit: int) -> CallableValidator:
    """Supplier policy: veto any specification whose agreed cost exceeds the limit."""
    return CallableValidator(
        lambda context: context.proposed_state.get("agreed_cost", 0) <= limit,
        name=f"cost-ceiling-{limit}",
    )


def main() -> None:
    parties = [DEALER, MANUFACTURER, SUPPLIER_A, SUPPLIER_B, SUPPLIER_C]
    domain = TrustDomain.create(parties)
    dealer = domain.organisation(DEALER)
    manufacturer = domain.organisation(MANUFACTURER)

    # -- service deployment ----------------------------------------------------
    manufacturer.deploy(
        OrderService(), ComponentDescriptor(name="OrderService", non_repudiation=True)
    )
    supplier_parts = {
        SUPPLIER_A: ["gearbox", "differential"],
        SUPPLIER_B: ["carbon body", "spoiler"],
        SUPPLIER_C: ["bespoke interior"],
    }
    for supplier, parts in supplier_parts.items():
        domain.organisation(supplier).deploy(
            PartCatalogue(parts),
            ComponentDescriptor(name="PartCatalogue", non_repudiation=True),
        )

    # -- shared specification between manufacturer and suppliers A and B -----------
    spec_members = [MANUFACTURER, SUPPLIER_A, SUPPLIER_B]
    initial_spec = {"component": "drive train", "requirements": {}, "agreed_cost": 0}
    for uri in spec_members:
        organisation = domain.organisation(uri)
        validators = [] if uri == MANUFACTURER else [cost_ceiling(25_000)]
        organisation.share_object("drive-train-spec", initial_spec, spec_members, validators)

    # 1. The dealer places a non-repudiable order.
    order_proxy = dealer.nr_proxy(manufacturer, "OrderService")
    confirmation = order_proxy.place_order("roadster", {"colour": "british racing green"})
    print("dealer order:", confirmation)

    # 2. The manufacturer queries suppliers for the parts it needs.
    for supplier, part in [(SUPPLIER_A, "gearbox"), (SUPPLIER_B, "carbon body"), (SUPPLIER_C, "bespoke interior")]:
        outcome = manufacturer.invoke_non_repudiably(
            supplier, "PartCatalogue", "availability", [part]
        )
        print(f"availability from {supplier}: {outcome.value}")

    # 3. The manufacturer proposes a drive-train specification within budget.
    proposal = {
        "component": "drive train",
        "requirements": {"torque": "450Nm", "interface": "standard flange"},
        "agreed_cost": 22_000,
    }
    outcome = manufacturer.propose_update("drive-train-spec", proposal)
    print("\nspecification agreed:", outcome.agreed, "version:", outcome.new_version)
    print("decisions:", {p: d.accepted for p, d in outcome.decisions.items()})

    # 4. An over-budget revision is vetoed by the suppliers' validators.
    overpriced = dict(proposal, agreed_cost=90_000)
    vetoed = manufacturer.propose_update("drive-train-spec", overpriced)
    print("over-budget revision agreed:", vetoed.agreed, "-", vetoed.reason)

    # 5. Supplier C joins the sharing group through the connect protocol and
    #    immediately participates in the negotiation.
    joined = manufacturer.controller.connect_member("drive-train-spec", SUPPLIER_C)
    supplier_c = domain.organisation(SUPPLIER_C)
    print("\nsupplier C admitted:", joined.agreed,
          "- members:", manufacturer.controller.members("drive-train-spec"))
    revision = supplier_c.shared_state("drive-train-spec")
    revision["requirements"]["interior mounts"] = "leather trim compatible"
    update = supplier_c.propose_update("drive-train-spec", revision)
    print("supplier C's revision agreed:", update.agreed)

    # 6. Later, the dealer denies having ordered the roadster.  The
    #    manufacturer presents its stored evidence to an adjudicator.
    run_id = dealer.evidence_store.run_ids()[0]
    resolver = DisputeResolver(manufacturer.evidence_verifier)
    verdict = resolver.adjudicate_from_store(
        DisputeClaim(
            claim_type=ClaimType.DENIES_REQUEST_ORIGIN,
            run_id=run_id,
            denying_party=DEALER,
        ),
        manufacturer.evidence_store,
    )
    print("\ndealer's denial of the order refuted:", verdict.refuted)
    print("reasoning:", verdict.reasoning)

    # 7. Every member's audit log is intact and every replica agrees.
    digests = {
        uri: domain.organisation(uri).controller.state_digest("drive-train-spec").hex()[:16]
        for uri in manufacturer.controller.members("drive-train-spec")
    }
    print("\nreplica digests:", digests)
    print("all audit logs intact:",
          all(domain.organisation(uri).audit_log.verify_integrity() for uri in parties))


if __name__ == "__main__":
    main()
