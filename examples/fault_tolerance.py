#!/usr/bin/env python
"""Liveness and safety under injected faults.

The trusted-interceptor assumptions (Section 3.1) only require eventual
message delivery with a bounded number of temporary failures.  This example
injects message loss, duplication and latency into the simulated network, and
also crashes a participant, to show:

* non-repudiable invocations and shared-state updates still complete
  (liveness) once retries get messages through;
* duplicated messages never cause double execution (at-most-once);
* a crashed or vetoing participant can block agreement but can never cause
  replicas to diverge or unauthorised state to be applied (safety);
* an update that *agrees* but whose signed outcome wave never reaches one
  peer heals itself through proposer-driven outcome re-delivery, with every
  step audited;
* the evidence and audit trail remain complete and verifiable throughout;
* with the observability plane on, the degraded run and its self-repair
  show up as one span tree, and the metrics registry prices the work.

Run with::

    python examples/fault_tolerance.py
"""

from __future__ import annotations

from repro import (
    ComponentDescriptor,
    DomainConfig,
    FaultConfig,
    FaultModel,
    TrustDomain,
)
from repro.core.config import ObservabilityConfig
from repro.core.sharing import set_run_fault_injector
from repro.observability import runtime as observability
from repro.observability.exporters import metrics_snapshot
from repro.observability.tracing import render_tree


class InventoryService:
    """Provider-side service; counts executions to demonstrate at-most-once."""

    def __init__(self) -> None:
        self.executions = 0

    def reserve(self, part: str, quantity: int) -> dict:
        self.executions += 1
        return {"part": part, "quantity": quantity, "reservation": f"res-{self.executions}"}


def main() -> None:
    fault_model = FaultModel(
        drop_probability=0.5,        # half of all sends are lost...
        duplicate_probability=0.2,   # ...some delivered messages are duplicated...
        latency_seconds=0.005,       # ...and every delivery takes time.
        jitter_seconds=0.01,
        max_consecutive_drops=4,     # bounded failures: retries eventually succeed
        seed=b"fault-tolerance-example",
    )
    parties = ["urn:org:buyer", "urn:org:warehouse", "urn:org:auditor"]
    domain = TrustDomain.create(
        parties, config=DomainConfig(faults=FaultConfig(model=fault_model))
    )
    buyer = domain.organisation("urn:org:buyer")
    warehouse = domain.organisation("urn:org:warehouse")
    auditor = domain.organisation("urn:org:auditor")

    inventory = InventoryService()
    warehouse.deploy(
        inventory, ComponentDescriptor(name="InventoryService", non_repudiation=True)
    )
    domain.share_object("stock-ledger", {"reservations": []})

    # 1. Ten invocations over the lossy network: all complete, each executes once.
    for i in range(10):
        outcome = buyer.invoke_non_repudiably(
            warehouse.uri, "InventoryService", "reserve", [f"part-{i}", 1]
        )
        assert outcome.succeeded
    stats = domain.network.statistics
    print("invocations completed: 10")
    print(f"  network attempts: {stats.messages_sent}, dropped: {stats.messages_dropped}, "
          f"duplicated: {stats.messages_duplicated}")
    print(f"  business executions (at-most-once holds): {inventory.executions}")
    print(f"  simulated time elapsed: {domain.network.clock.now():.3f}s")

    # 2. Shared-state updates under the same faults.
    for i in range(3):
        state = buyer.shared_state("stock-ledger")
        state["reservations"].append(f"res-{i}")
        outcome = buyer.propose_update("stock-ledger", state)
        assert outcome.agreed
    digests = {org.controller.state_digest("stock-ledger").hex()[:12]
               for org in (buyer, warehouse, auditor)}
    print("\nshared-state updates agreed: 3, replicas consistent:", len(digests) == 1)

    # 3. Crash the auditor: agreement becomes impossible (no unanimity), but
    #    state never diverges; after recovery, coordination resumes.
    domain.network.set_online(auditor.uri, False)
    state = buyer.shared_state("stock-ledger")
    state["reservations"].append("while-auditor-down")
    blocked = buyer.propose_update("stock-ledger", state)
    print("\nupdate while auditor crashed agreed:", blocked.agreed)
    print("ledger unchanged everywhere:",
          buyer.shared_state("stock-ledger") == warehouse.shared_state("stock-ledger"))

    domain.network.set_online(auditor.uri, True)
    recovered = buyer.propose_update("stock-ledger", state)
    print("after recovery, same update agreed:", recovered.agreed)
    print("auditor caught up:",
          auditor.shared_state("stock-ledger") == buyer.shared_state("stock-ledger"))

    # 4. Evidence and audit trails survived all of it.
    total_evidence = sum(
        org.evidence_store.total_records() for org in (buyer, warehouse, auditor)
    )
    print(f"\ntotal evidence records across parties: {total_evidence}")
    print("audit logs intact:",
          all(org.audit_log.verify_integrity() for org in (buyer, warehouse, auditor)))

    # 5. A degraded run heals itself.  Agreement is decided in phase 1, so a
    #    partition that hits *between* the commit barrier and the outcome
    #    wave leaves the run agreed everywhere but one peer never learns the
    #    result.  With outcome re-delivery enabled the proposer queues the
    #    signed outcome and a scheduler task re-pushes it until the peer
    #    acks -- no operator action, and the whole repair is in the audit log.
    #    Observability is on for this domain, so the degraded run -- fan-out,
    #    commit, severed outcome wave and the re-delivery that repairs it --
    #    is captured as one span tree (section 6 renders it).
    healing_config = DomainConfig.from_legacy_kwargs(
        outcome_redelivery=True, scheduled_retries=True
    )
    healing_config.observability = ObservabilityConfig()
    healing = TrustDomain.create(parties, config=healing_config)
    h_buyer = healing.organisation("urn:org:buyer")
    h_auditor = healing.organisation("urn:org:auditor")
    healing.share_object("orders", {"accepted": 0})

    def sever_outcome_wave(stage, run):
        # Fires on the proposer between "everyone decided" and "send the
        # signed outcome": the auditor approved the update but never hears
        # that it won.
        if stage == "after-journal-committed":
            healing.network.partition.sever(h_buyer.uri, h_auditor.uri)

    set_run_fault_injector(sever_outcome_wave)
    try:
        degraded = h_buyer.propose_update("orders", {"accepted": 1})
    finally:
        set_run_fault_injector(None)
    print("\nupdate agreed with its outcome wave severed:", degraded.agreed)
    print("auditor left one version behind:",
          h_auditor.shared_version("orders"), "<", h_buyer.shared_version("orders"))
    print("outcome queued for re-delivery:",
          h_buyer.controller.pending_redeliveries() == [degraded.run_id])

    healing.network.partition.heal_all()
    healing.retry_scheduler.drive_until(
        lambda: not h_buyer.controller.pending_redeliveries()
    )
    print("after the link heals, auditor caught up:",
          h_auditor.shared_state("orders") == h_buyer.shared_state("orders"))
    print("re-delivery audit trail (buyer):")
    for record in h_buyer.audit_records(subject=degraded.run_id):
        event = record.details.get("event", "")
        if event.startswith("outcome-redeliver"):
            extras = {k: v for k, v in record.details.items()
                      if k not in ("event", "object_id")}
            print(f"  {event} {extras}" if extras else f"  {event}")

    # 6. The whole story on the observability plane: the run id is the trace
    #    id, so the degraded update, the commit barrier its severed outcome
    #    wave hung off, and the re-delivery that finally reached the auditor
    #    render as one connected tree; the metrics registry priced the work.
    print("\nspan tree of the self-healing run:")
    print(render_tree(observability.STATE.tracing.spans(), degraded.run_id))
    snapshot = metrics_snapshot()
    print("metrics snapshot (selected):")
    for name in ("crypto.sign_seconds", "run.duration_seconds"):
        histogram = snapshot["histograms"][name]
        print(f"  {name}: count={histogram['count']} sum={histogram['sum']:.4f}s")
    observability.disable()


if __name__ == "__main__":
    main()
