#!/usr/bin/env python
"""Liveness and safety under injected faults.

The trusted-interceptor assumptions (Section 3.1) only require eventual
message delivery with a bounded number of temporary failures.  This example
injects message loss, duplication and latency into the simulated network, and
also crashes a participant, to show:

* non-repudiable invocations and shared-state updates still complete
  (liveness) once retries get messages through;
* duplicated messages never cause double execution (at-most-once);
* a crashed or vetoing participant can block agreement but can never cause
  replicas to diverge or unauthorised state to be applied (safety);
* the evidence and audit trail remain complete and verifiable throughout.

Run with::

    python examples/fault_tolerance.py
"""

from __future__ import annotations

from repro import (
    ComponentDescriptor,
    DomainConfig,
    FaultConfig,
    FaultModel,
    TrustDomain,
)


class InventoryService:
    """Provider-side service; counts executions to demonstrate at-most-once."""

    def __init__(self) -> None:
        self.executions = 0

    def reserve(self, part: str, quantity: int) -> dict:
        self.executions += 1
        return {"part": part, "quantity": quantity, "reservation": f"res-{self.executions}"}


def main() -> None:
    fault_model = FaultModel(
        drop_probability=0.5,        # half of all sends are lost...
        duplicate_probability=0.2,   # ...some delivered messages are duplicated...
        latency_seconds=0.005,       # ...and every delivery takes time.
        jitter_seconds=0.01,
        max_consecutive_drops=4,     # bounded failures: retries eventually succeed
        seed=b"fault-tolerance-example",
    )
    parties = ["urn:org:buyer", "urn:org:warehouse", "urn:org:auditor"]
    domain = TrustDomain.create(
        parties, config=DomainConfig(faults=FaultConfig(model=fault_model))
    )
    buyer = domain.organisation("urn:org:buyer")
    warehouse = domain.organisation("urn:org:warehouse")
    auditor = domain.organisation("urn:org:auditor")

    inventory = InventoryService()
    warehouse.deploy(
        inventory, ComponentDescriptor(name="InventoryService", non_repudiation=True)
    )
    domain.share_object("stock-ledger", {"reservations": []})

    # 1. Ten invocations over the lossy network: all complete, each executes once.
    for i in range(10):
        outcome = buyer.invoke_non_repudiably(
            warehouse.uri, "InventoryService", "reserve", [f"part-{i}", 1]
        )
        assert outcome.succeeded
    stats = domain.network.statistics
    print("invocations completed: 10")
    print(f"  network attempts: {stats.messages_sent}, dropped: {stats.messages_dropped}, "
          f"duplicated: {stats.messages_duplicated}")
    print(f"  business executions (at-most-once holds): {inventory.executions}")
    print(f"  simulated time elapsed: {domain.network.clock.now():.3f}s")

    # 2. Shared-state updates under the same faults.
    for i in range(3):
        state = buyer.shared_state("stock-ledger")
        state["reservations"].append(f"res-{i}")
        outcome = buyer.propose_update("stock-ledger", state)
        assert outcome.agreed
    digests = {org.controller.state_digest("stock-ledger").hex()[:12]
               for org in (buyer, warehouse, auditor)}
    print("\nshared-state updates agreed: 3, replicas consistent:", len(digests) == 1)

    # 3. Crash the auditor: agreement becomes impossible (no unanimity), but
    #    state never diverges; after recovery, coordination resumes.
    domain.network.set_online(auditor.uri, False)
    state = buyer.shared_state("stock-ledger")
    state["reservations"].append("while-auditor-down")
    blocked = buyer.propose_update("stock-ledger", state)
    print("\nupdate while auditor crashed agreed:", blocked.agreed)
    print("ledger unchanged everywhere:",
          buyer.shared_state("stock-ledger") == warehouse.shared_state("stock-ledger"))

    domain.network.set_online(auditor.uri, True)
    recovered = buyer.propose_update("stock-ledger", state)
    print("after recovery, same update agreed:", recovered.agreed)
    print("auditor caught up:",
          auditor.shared_state("stock-ledger") == buyer.shared_state("stock-ledger"))

    # 4. Evidence and audit trails survived all of it.
    total_evidence = sum(
        org.evidence_store.total_records() for org in (buyer, warehouse, auditor)
    )
    print(f"\ntotal evidence records across parties: {total_evidence}")
    print("audit logs intact:",
          all(org.audit_log.verify_integrity() for org in (buyer, warehouse, auditor)))


if __name__ == "__main__":
    main()
