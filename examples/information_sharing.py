#!/usr/bin/env python
"""Non-repudiable information sharing (Figures 5 and 8).

Three organisations share a component specification document.  The document
is an entity component marked as a B2BObject in its deployment descriptor, so
"the enhancement of an entity bean to become a B2BObject is effectively
transparent to the local EJB client and its application interface"
(Section 4.3): each organisation's application simply calls methods on its
local replica; the middleware coordinates every state change with the other
members, consulting application-specific validators before agreeing.

The example also shows contract-compliance validation (paper Section 6 future
work): updates that do not correspond to a legal transition of the negotiated
contract FSM are vetoed, and transactional grouping of several updates.

Run with::

    python examples/information_sharing.py
"""

from __future__ import annotations

from repro import (
    CallableValidator,
    ComponentDescriptor,
    ComponentType,
    ContractFSM,
    ContractMonitor,
    ContractValidator,
    TransactionManager,
    TrustDomain,
)
from repro.container.interceptor import Invocation
from repro.errors import TransactionAbortedError

MANUFACTURER = "urn:org:manufacturer"
SUPPLIER_A = "urn:org:supplier-a"
SUPPLIER_B = "urn:org:supplier-b"


class SpecificationDocument:
    """Entity component holding the shared specification (get/set state)."""

    def __init__(self) -> None:
        self._state = {"sections": {}, "phase": "drafting", "revision": 0}

    def get_state(self) -> dict:
        return dict(self._state)

    def set_state(self, state: dict) -> None:
        self._state = dict(state)

    def set_section(self, name: str, text: str) -> int:
        self._state["sections"] = dict(self._state["sections"])
        self._state["sections"][name] = text
        self._state["revision"] += 1
        return self._state["revision"]

    def set_phase(self, phase: str) -> str:
        self._state["phase"] = phase
        self._state["revision"] += 1
        return phase

    def read_section(self, name: str) -> str:
        return self._state["sections"].get(name)


def negotiation_contract() -> ContractFSM:
    """The contract governing the negotiation: drafting -> review -> agreed."""
    fsm = ContractFSM("spec-negotiation", initial_state="drafting", final_states={"agreed"})
    fsm.add_transition("drafting", "edit", "drafting")
    fsm.add_transition("drafting", "submit-for-review", "review")
    fsm.add_transition("review", "request-changes", "drafting")
    fsm.add_transition("review", "approve", "agreed")
    fsm.verify()
    return fsm


def contract_event(context) -> str:
    """Derive the contract event from a proposed update."""
    current_phase = context.current_state.get("phase")
    proposed_phase = context.proposed_state.get("phase")
    if current_phase == proposed_phase:
        return "edit" if current_phase == "drafting" else None
    return {
        ("drafting", "review"): "submit-for-review",
        ("review", "drafting"): "request-changes",
        ("review", "agreed"): "approve",
    }.get((current_phase, proposed_phase), "illegal-phase-change")


def main() -> None:
    parties = [MANUFACTURER, SUPPLIER_A, SUPPLIER_B]
    domain = TrustDomain.create(parties)

    # Register the shared document everywhere, with per-party validators:
    # suppliers enforce contract compliance; supplier B additionally vetoes
    # specifications that name a competitor's material.
    initial_state = SpecificationDocument().get_state()
    documents = {}
    for uri in parties:
        organisation = domain.organisation(uri)
        validators = []
        if uri != MANUFACTURER:
            validators.append(
                ContractValidator(ContractMonitor(negotiation_contract()), contract_event)
            )
        if uri == SUPPLIER_B:
            validators.append(
                CallableValidator(
                    lambda ctx: "unobtanium" not in str(ctx.proposed_state),
                    name="no-unobtanium",
                )
            )
        organisation.share_object("component-spec", initial_state, parties, validators)

        document = SpecificationDocument()
        organisation.deploy(
            document,
            ComponentDescriptor(
                name="component-spec",
                component_type=ComponentType.ENTITY,
                b2b_object=True,
            ),
        )
        documents[uri] = document

    manufacturer = domain.organisation(MANUFACTURER)

    # 1. Transparent update through the entity component: the manufacturer's
    #    application just calls set_section on its local bean.
    result = manufacturer.container.dispatch(
        Invocation(component="component-spec", method="set_section",
                   args=["interface", "CAN bus, 500 kbit/s"])
    )
    print("edit applied:", result.succeeded)
    print("supplier A sees:", documents[SUPPLIER_A].read_section("interface"))

    # 2. A vetoed update: supplier B's validator rejects the material choice,
    #    so every replica (including the proposer's bean) stays unchanged.
    vetoed = manufacturer.container.dispatch(
        Invocation(component="component-spec", method="set_section",
                   args=["materials", "unobtanium alloy"])
    )
    print("\nunobtanium specification accepted:", vetoed.succeeded)
    print("manufacturer's replica unchanged:",
          documents[MANUFACTURER].read_section("materials") is None)

    # 3. Contract-compliant phase changes: drafting -> review -> agreed works,
    #    but jumping straight from drafting to agreed is vetoed.
    state = manufacturer.shared_state("component-spec")
    state["phase"] = "agreed"
    illegal = manufacturer.propose_update("component-spec", state)
    print("\nskipping review phase agreed:", illegal.agreed, "-", illegal.reason)

    state = manufacturer.shared_state("component-spec")
    state["phase"] = "review"
    print("submit for review agreed:",
          manufacturer.propose_update("component-spec", state).agreed)
    state = manufacturer.shared_state("component-spec")
    state["phase"] = "agreed"
    print("approval agreed:",
          manufacturer.propose_update("component-spec", state).agreed)

    # 4. Transactional sharing: group updates to two shared objects so that a
    #    veto on either rolls both back (paper Section 6 / JTA integration).
    for uri in parties:
        organisation = domain.organisation(uri)
        organisation.share_object("delivery-schedule", {"milestones": []}, parties)
        organisation.share_object(
            "budget",
            {"total": 100_000},
            parties,
            validators=[]
            if uri == MANUFACTURER
            else [CallableValidator(lambda ctx: ctx.proposed_state["total"] <= 120_000, name="cap")],
        )
    manager = TransactionManager(manufacturer.controller)

    transaction = manager.begin()
    transaction.stage_update("delivery-schedule", {"milestones": ["prototype in week 20"]})
    transaction.stage_update("budget", {"total": 110_000})
    report = transaction.commit()
    print("\ntransaction committed:", report.status.value)

    transaction = manager.begin()
    transaction.stage_update("delivery-schedule", {"milestones": ["prototype in week 18"]})
    transaction.stage_update("budget", {"total": 500_000})   # exceeds the cap
    try:
        transaction.commit()
    except TransactionAbortedError as error:
        print("transaction rolled back:", error)
    supplier_a = domain.organisation(SUPPLIER_A)
    print("schedule after rollback:", supplier_a.shared_state("delivery-schedule"))
    print("budget after rollback:", supplier_a.shared_state("budget"))

    # 5. Every replica of every object converges on the same digest.
    for object_id in ("component-spec", "delivery-schedule", "budget"):
        digests = {
            domain.organisation(uri).controller.state_digest(object_id).hex()[:12]
            for uri in parties
        }
        print(f"{object_id}: replicas consistent = {len(digests) == 1}")


if __name__ == "__main__":
    main()
