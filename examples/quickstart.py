#!/usr/bin/env python
"""Quickstart: non-repudiable service invocation between two organisations.

Reproduces the basic exchange of the paper's Figure 4(b): a client
organisation invokes a service on a provider organisation through trusted
interceptors that exchange NRO/NRR evidence tokens around the call.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ComponentDescriptor,
    DeploymentStyle,
    DomainConfig,
    TokenType,
    TrustDomain,
)


class OrderService:
    """The provider's business component (the EJB of Figure 6)."""

    def __init__(self) -> None:
        self._orders = {}

    def place_order(self, model: str, quantity: int = 1) -> dict:
        order_id = f"order-{len(self._orders) + 1:04d}"
        self._orders[order_id] = {"model": model, "quantity": quantity}
        return {"order_id": order_id, "model": model, "quantity": quantity, "status": "accepted"}


def main() -> None:
    # 1. Form a direct trust domain (Figure 3(c)): each organisation hosts its
    #    own trusted interceptor; keys/certificates are exchanged up front.
    #    DomainConfig is the primary configuration surface: deployment knobs
    #    are grouped and cross-validated before anything is built.
    domain = TrustDomain.create(
        ["urn:org:dealer", "urn:org:manufacturer"],
        config=DomainConfig(style=DeploymentStyle.DIRECT),
    )
    dealer = domain.organisation("urn:org:dealer")
    manufacturer = domain.organisation("urn:org:manufacturer")

    # 2. The manufacturer deploys its order service and, in the deployment
    #    descriptor, requires non-repudiation for it (Section 4.2).
    manufacturer.deploy(
        OrderService(),
        ComponentDescriptor(name="OrderService", non_repudiation=True),
    )

    # 3. The dealer obtains a proxy whose client-side chain starts with the NR
    #    interceptor, then invokes the service as if it were local.
    proxy = dealer.nr_proxy(manufacturer, "OrderService")
    confirmation = proxy.place_order("roadster", quantity=2)
    print("order confirmation:", confirmation)

    # 4. Both parties now hold a complete, verifiable evidence trail.
    run_id = dealer.evidence_store.run_ids()[0]
    print(f"\nevidence held for protocol run {run_id}:")
    for organisation in (dealer, manufacturer):
        token_types = [record.token_type for record in organisation.evidence_for_run(run_id)]
        print(f"  {organisation.uri:28s} {token_types}")

    # 5. The evidence is mutually verifiable: the manufacturer can prove the
    #    dealer originated the request, the dealer can prove the manufacturer
    #    produced the response.
    origin_record = manufacturer.evidence_store.tokens_of_type(
        run_id, TokenType.NRO_REQUEST.value
    )[0]
    print("\nrequest origin attributable to:", origin_record.token["issuer"])

    # 6. A plain (non-NR) invocation of the same component is rejected by the
    #    server-side NR interceptor: the server controls activation of
    #    non-repudiation.
    plain = dealer.plain_proxy(manufacturer, "OrderService")
    try:
        plain.place_order("roadster")
    except Exception as error:  # noqa: BLE001 - demonstration
        print("\nplain invocation rejected as expected:", error)

    # 7. The network statistics show the cost of non-repudiation: two protocol
    #    messages instead of one plain invocation message.
    stats = domain.network.statistics
    print(
        f"\nnetwork: {stats.messages_sent} messages, "
        f"{stats.bytes_delivered} bytes delivered"
    )
    print("audit log intact:", dealer.audit_log.verify_integrity())


if __name__ == "__main__":
    main()
