"""F3 -- cost of the three trust-domain deployment styles (Figure 3).

The same interaction (one NR invocation plus one agreed shared-state update)
is executed over the direct, inline-TTP and distributed-inline-TTP
deployments.  The expected shape: the application outcome is identical, but
TTP-mediated styles pay extra network messages (every protocol message is
relayed), extra latency hops and extra evidence (TTP notarisation tokens).
"""

import pytest

from repro import DeploymentStyle, FaultModel

from benchmarks.conftest import CallCounter, build_domain

STYLES = [
    DeploymentStyle.DIRECT,
    DeploymentStyle.INLINE_TTP,
    DeploymentStyle.DISTRIBUTED_TTP,
]


def build(style, latency=0.0):
    fault_model = FaultModel(latency_seconds=latency) if latency else None
    domain = build_domain(2, style=style, fault_model=fault_model)
    domain.share_object("bench-doc", {"v": 0})
    return domain


@pytest.mark.parametrize("style", STYLES, ids=lambda s: s.value)
def test_invocation_per_style(benchmark, style):
    """End-to-end NR invocation cost per deployment style."""
    domain = build(style)
    client = domain.organisation("urn:bench:party0")
    provider = domain.organisation("urn:bench:party1")
    proxy = client.nr_proxy(provider, "QuoteService")

    counted = CallCounter(proxy.quote)
    before = domain.network.statistics.snapshot()
    result = benchmark(counted, "axle")
    assert result["price"] == 100
    delta = domain.network.statistics.delta(before)
    benchmark.extra_info["style"] = style.value
    benchmark.extra_info["messages_per_call"] = round(delta.messages_sent / counted.calls, 2)
    benchmark.extra_info["relayed_total"] = domain.total_relayed_messages()


@pytest.mark.parametrize("style", STYLES, ids=lambda s: s.value)
def test_sharing_per_style(benchmark, style):
    """Shared-state update cost per deployment style."""
    domain = build(style)
    proposer = domain.organisation("urn:bench:party0")
    counter = {"n": 0}

    def propose():
        counter["n"] += 1
        outcome = proposer.propose_update("bench-doc", {"v": counter["n"]})
        assert outcome.agreed

    counted = CallCounter(propose)
    before = domain.network.statistics.snapshot()
    benchmark(counted)
    delta = domain.network.statistics.delta(before)
    benchmark.extra_info["style"] = style.value
    benchmark.extra_info["messages_per_update"] = round(delta.messages_sent / counted.calls, 2)


@pytest.mark.parametrize("style", STYLES, ids=lambda s: s.value)
def test_simulated_latency_per_style(benchmark, style):
    """Simulated-time cost per style with a 5 ms one-way link latency.

    Wall-clock timing reflects computation only; the simulated clock captures
    the extra network hops the TTP deployments introduce.
    """
    latency = 0.005
    domain = build(style, latency=latency)
    client = domain.organisation("urn:bench:party0")
    provider = domain.organisation("urn:bench:party1")
    proxy = client.nr_proxy(provider, "QuoteService")

    counted = CallCounter(proxy.quote)
    start_time = domain.network.clock.now()
    result = benchmark(counted, "axle")
    assert result["price"] == 100
    elapsed = domain.network.clock.now() - start_time
    benchmark.extra_info["style"] = style.value
    benchmark.extra_info["simulated_seconds_per_call"] = round(elapsed / counted.calls, 4)
    benchmark.extra_info["latency_hops_per_call"] = round(elapsed / counted.calls / latency, 1)


@pytest.mark.parametrize("style", STYLES, ids=lambda s: s.value)
def test_ttp_evidence_accumulation(benchmark, style):
    """How much evidence the TTPs themselves accumulate per interaction."""
    domain = build(style)
    client = domain.organisation("urn:bench:party0")
    provider = domain.organisation("urn:bench:party1")
    proxy = client.nr_proxy(provider, "QuoteService")

    def interact():
        proxy.quote("axle")

    counted = CallCounter(interact)
    benchmark(counted)
    ttp_records = sum(ttp.evidence_store.total_records() for ttp in domain.ttps.values())
    benchmark.extra_info["style"] = style.value
    benchmark.extra_info["ttp_evidence_records_per_call"] = round(
        ttp_records / counted.calls, 2
    )
