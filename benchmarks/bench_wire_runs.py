"""P9 -- one protocol instance spanning OS processes over real sockets.

``bench_multiprocess_runs.py`` launches several proposer processes, but each
simulates its *own* network: no protocol message ever crosses a process
boundary.  This benchmark is the cross-process counterpart the wire
transport exists for: a **peer process** hosts the two responder
organisations of every sharing group, **N proposer processes** each host one
proposer organisation, and every proposal/decision/outcome message travels
through ``WireNetwork`` frames over 127.0.0.1 TCP -- one protocol instance
genuinely spanning processes.

Each proposer drives its updates as *concurrent* ``propose_update_async``
runs (the async engine on a wall clock, each run deadline-guarded), so the
peer process validates interleaved runs from several organisations at once.

Measured and gated:

* ``messages_per_update`` / ``bytes_per_update`` from the proposers'
  sender-side statistics -- asserted in-bench to match a same-topology
  simulated reference (messages exactly, bytes within a whisker for
  wall-clock timestamp width), and gated by ``run_benchmarks.py --check``
  like every other protocol-cost counter;
* aggregate cross-process updates/second (timing, not gated).

The file doubles as the worker program::

    python bench_wire_runs.py --role peer     --dir D --proposers N --updates U
    python bench_wire_runs.py --role proposer --dir D --index I    --updates U
"""

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

PEER_PARTIES = ["urn:wire:responder0", "urn:wire:responder1"]
PROPOSERS = 2
UPDATES_PER_PROPOSER = 4
RUN_DEADLINE_SECONDS = 120.0
REPO_ROOT = Path(__file__).resolve().parent.parent


def proposer_uri(index: int) -> str:
    return f"urn:wire:proposer{index}"


def object_id(index: int, update: int) -> str:
    # One object per run: the concurrency under test is run interleaving
    # across processes, not base-version contention on one replica.
    return f"wire-doc-{index}-{update}"


# -- peer (responder-hosting) process -----------------------------------------


def peer_main(directory: str, proposers: int, updates: int) -> None:
    from repro import TrustDomain
    from repro.transport.wire import WireTransport

    all_parties = PEER_PARTIES + [proposer_uri(i) for i in range(proposers)]
    transport = WireTransport(
        local_parties=PEER_PARTIES,
        await_remote_credentials=False,  # spokes introduce themselves
    )
    domain = TrustDomain.create(all_parties, transport=transport, scheme="hmac")
    for index in range(proposers):
        members = [proposer_uri(index)] + PEER_PARTIES
        for update in range(updates):
            domain.share_object(object_id(index, update), {"v": 0}, members)
    # Proposers poll for this file: write-then-rename so they can never
    # observe a partially written document.
    endpoint_path = os.path.join(directory, "peer.json")
    with open(endpoint_path + ".tmp", "w") as handle:
        json.dump({"host": transport.host, "port": transport.port}, handle)
    os.rename(endpoint_path + ".tmp", endpoint_path)

    stop_path = os.path.join(directory, "stop")
    while not os.path.exists(stop_path):
        time.sleep(0.05)

    responder = domain.organisation(PEER_PARTIES[0])
    result = {
        "evidence_records": responder.evidence_store.total_records(),
        "served_frames": transport.network.server.frames_served,
        "connections_accepted": transport.network.server.connections_accepted,
    }
    with open(os.path.join(directory, "peer-result.json"), "w") as handle:
        json.dump(result, handle)
    transport.close()


# -- proposer processes --------------------------------------------------------


def proposer_main(directory: str, index: int, updates: int) -> None:
    from repro import TrustDomain
    from repro.transport.wire import WireTransport

    peer_path = os.path.join(directory, "peer.json")
    deadline = time.monotonic() + 60
    while not os.path.exists(peer_path):
        assert time.monotonic() < deadline, "peer process never came up"
        time.sleep(0.05)
    with open(peer_path) as handle:
        peer = json.load(handle)

    me = proposer_uri(index)
    transport = WireTransport(
        local_parties=[me],
        peers={uri: (peer["host"], peer["port"]) for uri in PEER_PARTIES},
    )
    domain = TrustDomain.create(
        [me] + PEER_PARTIES, transport=transport, scheme="hmac", async_runs=True
    )
    members = [me] + PEER_PARTIES
    for update in range(updates):
        domain.share_object(object_id(index, update), {"v": 0}, members)
    proposer = domain.organisation(me)

    started = time.perf_counter()
    futures = [
        proposer.propose_update_async(
            object_id(index, update), {"v": update + 1}, deadline=RUN_DEADLINE_SECONDS
        )
        for update in range(updates)
    ]
    outcomes = [future.result(timeout=180) for future in futures]
    elapsed = time.perf_counter() - started
    for outcome in outcomes:
        assert outcome.agreed, outcome.reason
    scheduler = domain.retry_scheduler
    assert scheduler.wait_quiescent(timeout=30), scheduler.quiescence()

    stats = domain.network.statistics
    result = {
        "index": index,
        "updates": updates,
        "elapsed_seconds": elapsed,
        "messages_sent": stats.messages_sent,
        "messages_delivered": stats.messages_delivered,
        "messages_dropped": stats.messages_dropped,
        "bytes_delivered": stats.bytes_delivered,
        "retries": sum(stats.failed_attempts_per_destination().values()),
        "evidence_records": proposer.evidence_store.total_records(),
    }
    with open(os.path.join(directory, f"result-{index}.json"), "w") as handle:
        json.dump(result, handle)
    transport.close()


# -- in-process simulated reference -------------------------------------------


def simulated_reference(updates: int):
    """Same topology on the simulator (wall clock, so byte sizes compare)."""
    from repro import TrustDomain
    from repro.clock import SystemClock

    parties = [proposer_uri(0)] + PEER_PARTIES
    domain = TrustDomain.create(parties, scheme="hmac", clock=SystemClock())
    for update in range(updates):
        domain.share_object(object_id(0, update), {"v": 0})
    proposer = domain.organisation(parties[0])
    for update in range(updates):
        outcome = proposer.propose_update(object_id(0, update), {"v": update + 1})
        assert outcome.agreed, outcome.reason
    stats = domain.network.statistics
    return (
        stats.messages_delivered / updates,
        stats.bytes_delivered / updates,
    )


# -- benchmark entry point -----------------------------------------------------


def launch_wave(proposers: int, updates: int):
    directory = tempfile.mkdtemp(prefix="bench-wire-")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)

    def spawn(arguments):
        return subprocess.Popen(
            [sys.executable, str(Path(__file__).resolve()), *arguments],
            env=env,
            cwd=str(REPO_ROOT),
        )

    processes = []
    try:
        peer = spawn(
            [
                "--role", "peer", "--dir", directory,
                "--proposers", str(proposers), "--updates", str(updates),
            ]
        )
        processes.append(peer)
        workers = [
            spawn(
                [
                    "--role", "proposer", "--dir", directory,
                    "--index", str(index), "--updates", str(updates),
                ]
            )
            for index in range(proposers)
        ]
        processes.extend(workers)
        exit_codes = [worker.wait(timeout=300) for worker in workers]
        assert all(code == 0 for code in exit_codes), exit_codes
        Path(directory, "stop").touch()
        assert peer.wait(timeout=60) == 0
        results = []
        for index in range(proposers):
            with open(os.path.join(directory, f"result-{index}.json")) as handle:
                results.append(json.load(handle))
        with open(os.path.join(directory, "peer-result.json")) as handle:
            peer_result = json.load(handle)
        return results, peer_result
    finally:
        # A failed or timed-out wave must not leak pollers: the peer loops
        # on the stop file forever if it is never told to go.
        for process in processes:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)
        shutil.rmtree(directory, ignore_errors=True)


def test_wire_cross_process_runs(benchmark):
    """N proposer processes drive concurrent async runs against a peer process."""
    results, peer_result = benchmark.pedantic(
        lambda: launch_wave(PROPOSERS, UPDATES_PER_PROPOSER), rounds=1, iterations=1
    )
    total_updates = sum(result["updates"] for result in results)
    total_messages = sum(result["messages_delivered"] for result in results)
    total_bytes = sum(result["bytes_delivered"] for result in results)
    slowest = max(result["elapsed_seconds"] for result in results)
    messages_per_update = total_messages / total_updates
    bytes_per_update = total_bytes / total_updates

    # Crossing process boundaries must cost exactly what the simulator
    # charges: same delivered-message count, same canonical bytes (within a
    # sliver for wall-clock timestamp digit width), or the wire is not a
    # pure locality change.  Delivered counters are retry-invariant, so a
    # rare transient on loopback cannot flake the equality.
    ref_messages, ref_bytes = simulated_reference(UPDATES_PER_PROPOSER)
    assert messages_per_update == ref_messages, (messages_per_update, ref_messages)
    assert abs(bytes_per_update - ref_bytes) <= ref_bytes * 0.01, (
        bytes_per_update,
        ref_bytes,
    )

    benchmark.extra_info["proposer_processes"] = PROPOSERS
    benchmark.extra_info["updates_per_proposer"] = UPDATES_PER_PROPOSER
    benchmark.extra_info["messages_per_update"] = messages_per_update
    benchmark.extra_info["bytes_per_update"] = round(bytes_per_update, 1)
    benchmark.extra_info["aggregate_updates_per_second"] = round(
        total_updates / slowest, 2
    )
    benchmark.extra_info["peer_frames_served"] = peer_result["served_frames"]
    benchmark.extra_info["peer_evidence_records"] = peer_result["evidence_records"]
    benchmark.extra_info["total_retries"] = sum(r["retries"] for r in results)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--role", choices=["peer", "proposer"], required=True)
    parser.add_argument("--dir", required=True)
    parser.add_argument("--index", type=int, default=0)
    parser.add_argument("--proposers", type=int, default=PROPOSERS)
    parser.add_argument("--updates", type=int, default=UPDATES_PER_PROPOSER)
    arguments = parser.parse_args()
    if arguments.role == "peer":
        peer_main(arguments.dir, arguments.proposers, arguments.updates)
    else:
        proposer_main(arguments.dir, arguments.index, arguments.updates)
