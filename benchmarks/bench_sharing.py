"""F5 -- non-repudiable information sharing (Figure 5) and its scaling.

Measures the cost of one coordinated update to shared information as the
sharing group grows (the proposer must collect a signed decision from every
other member and distribute the outcome to all of them), the cost of a vetoed
update, rollup of several operations into one coordination event, and the
membership connect protocol.
"""

import pytest

from repro import CallableValidator

from benchmarks.conftest import CallCounter, build_domain


def shared_domain(parties):
    domain = build_domain(parties, deploy_service=False)
    domain.share_object("bench-doc", {"counter": 0, "payload": {}})
    return domain


@pytest.mark.parametrize("parties", [2, 3, 5, 8])
def test_update_vs_group_size(benchmark, parties):
    """Cost of one agreed update as the sharing group grows."""
    domain = shared_domain(parties)
    proposer = domain.organisation("urn:bench:party0")
    counter = {"n": 0}

    def propose():
        counter["n"] += 1
        outcome = proposer.propose_update(
            "bench-doc", {"counter": counter["n"], "payload": {"data": "x" * 100}}
        )
        assert outcome.agreed
        return outcome

    counted = CallCounter(propose)
    before = domain.network.statistics.snapshot()
    benchmark(counted)
    delta = domain.network.statistics.delta(before)
    benchmark.extra_info["parties"] = parties
    benchmark.extra_info["messages_per_update"] = round(delta.messages_sent / counted.calls, 2)
    benchmark.extra_info["bytes_per_update"] = round(delta.bytes_delivered / counted.calls)


@pytest.mark.parametrize("parties", [2, 5])
def test_vetoed_update(benchmark, parties):
    """A vetoed update still pays the full coordination round."""
    domain = shared_domain(parties)
    proposer = domain.organisation("urn:bench:party0")
    vetoer = domain.organisation(f"urn:bench:party{parties - 1}")
    vetoer.controller.add_validator(
        "bench-doc", CallableValidator(lambda ctx: False, name="always-veto")
    )

    def propose():
        outcome = proposer.propose_update("bench-doc", {"counter": 1, "payload": {}})
        assert not outcome.agreed
        return outcome

    benchmark(propose)
    benchmark.extra_info["parties"] = parties


@pytest.mark.parametrize("operations", [1, 5, 20])
def test_rollup_amortises_coordination(benchmark, operations):
    """Rolling N operations into one coordination event (Section 4.3)."""
    domain = shared_domain(3)
    proposer = domain.organisation("urn:bench:party0")
    counter = {"n": 0}

    def rolled_up():
        counter["n"] += 1
        with proposer.controller.rollup("bench-doc"):
            for i in range(operations):
                state = proposer.shared_state("bench-doc")
                state["payload"][f"op-{i}"] = counter["n"]
                proposer.propose_update("bench-doc", state)

    counted = CallCounter(rolled_up)
    runs_before = len(proposer.evidence_store.run_ids())
    benchmark(counted)
    runs_after = len(proposer.evidence_store.run_ids())
    benchmark.extra_info["operations_per_rollup"] = operations
    benchmark.extra_info["coordination_runs_per_rollup"] = round(
        (runs_after - runs_before) / counted.calls, 2
    )


@pytest.mark.parametrize("payload_bytes", [100, 10_000, 100_000])
def test_update_payload_scaling(benchmark, payload_bytes):
    """Cost of an agreed update as the shared state grows."""
    domain = shared_domain(3)
    proposer = domain.organisation("urn:bench:party0")
    counter = {"n": 0}

    def propose():
        counter["n"] += 1
        outcome = proposer.propose_update(
            "bench-doc", {"counter": counter["n"], "payload": {"blob": "x" * payload_bytes}}
        )
        assert outcome.agreed

    benchmark(propose)
    benchmark.extra_info["payload_bytes"] = payload_bytes


def test_membership_connect(benchmark):
    """Cost of admitting a new member through the connect protocol."""

    def connect_new_member():
        domain = build_domain(4, deploy_service=False)
        members = domain.party_uris()[:3]
        newcomer = domain.party_uris()[3]
        for uri in members:
            domain.organisation(uri).share_object("bench-doc", {"v": 0}, members)
        outcome = domain.organisation(members[0]).controller.connect_member(
            "bench-doc", newcomer
        )
        assert outcome.agreed

    benchmark.pedantic(connect_new_member, rounds=3, iterations=1)
