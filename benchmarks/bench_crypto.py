"""P1 -- computational overhead of the cryptographic primitives.

Paper Section 6: "There are a number of aspects to non-repudiation that
impact on performance, including the computational overhead of cryptographic
algorithms".  These benchmarks measure the primitives the evidence layer is
built on -- signing, verification, hashing and token construction -- for each
available signature scheme, so the cost of one evidence token can be related
to the protocol-level costs measured in bench_invocation / bench_sharing.
"""

import pytest

from repro.clock import SimulatedClock
from repro.core.evidence import EvidenceBuilder, EvidenceVerifier, TokenType
from repro.crypto.hashing import secure_hash
from repro.crypto.signature import Signer, Verifier, get_scheme

MESSAGE = b"non-repudiation evidence payload " * 8

_KEYPAIRS = {}


def keypair_for(scheme_name):
    if scheme_name not in _KEYPAIRS:
        kwargs = {"p_bits": 512} if scheme_name in ("dsa",) else {}
        _KEYPAIRS[scheme_name] = get_scheme(scheme_name).generate_keypair(**kwargs)
    return _KEYPAIRS[scheme_name]


SCHEMES = ["rsa", "dsa", "hmac", "forward-secure"]


@pytest.mark.parametrize("scheme_name", SCHEMES)
def test_sign(benchmark, scheme_name):
    """Cost of producing one signature (hash-then-sign)."""
    keypair = keypair_for(scheme_name)
    signer = Signer(keypair.private)
    result = benchmark(signer.sign, MESSAGE)
    benchmark.extra_info["scheme"] = scheme_name
    benchmark.extra_info["signature_bytes"] = len(result.value)


@pytest.mark.parametrize("scheme_name", SCHEMES)
def test_verify(benchmark, scheme_name):
    """Cost of verifying one signature."""
    keypair = keypair_for(scheme_name)
    signature = Signer(keypair.private).sign(MESSAGE)
    verifier = Verifier(keypair.public)
    assert benchmark(verifier.verify, MESSAGE, signature)
    benchmark.extra_info["scheme"] = scheme_name


@pytest.mark.parametrize("size", [64, 1024, 16 * 1024, 256 * 1024])
def test_secure_hash(benchmark, size):
    """Cost of hashing payloads of increasing size (evidence digests)."""
    payload = b"x" * size
    benchmark(secure_hash, payload)
    benchmark.extra_info["payload_bytes"] = size


@pytest.mark.parametrize("scheme_name", ["rsa", "hmac"])
def test_keypair_generation(benchmark, scheme_name):
    """Cost of generating a key pair (one-off per organisation)."""
    scheme = get_scheme(scheme_name)
    benchmark(scheme.generate_keypair)
    benchmark.extra_info["scheme"] = scheme_name


@pytest.mark.parametrize("scheme_name", ["rsa", "hmac"])
def test_evidence_token_build(benchmark, scheme_name):
    """Cost of building one signed evidence token (digest + sign + assemble)."""
    keypair = keypair_for(scheme_name)
    builder = EvidenceBuilder(
        party="urn:bench:issuer", signer=Signer(keypair.private), clock=SimulatedClock()
    )
    payload = {"component": "QuoteService", "method": "quote", "args": ["part"] * 4}
    token = benchmark(
        builder.build,
        TokenType.NRO_REQUEST,
        "run-bench",
        1,
        "urn:bench:recipient",
        payload,
    )
    benchmark.extra_info["scheme"] = scheme_name
    benchmark.extra_info["token_bytes"] = len(str(token.to_dict()))


@pytest.mark.parametrize("scheme_name", ["rsa", "hmac"])
def test_evidence_token_verify(benchmark, scheme_name):
    """Cost of fully verifying one received evidence token."""
    keypair = keypair_for(scheme_name)
    builder = EvidenceBuilder(
        party="urn:bench:issuer", signer=Signer(keypair.private), clock=SimulatedClock()
    )
    verifier = EvidenceVerifier(pinned_keys={"urn:bench:issuer": keypair.public})
    payload = {"component": "QuoteService", "method": "quote", "args": ["part"] * 4}
    token = builder.build(TokenType.NRO_REQUEST, "run-bench", 1, "urn:bench:recipient", payload)
    assert benchmark(
        verifier.verify, token, TokenType.NRO_REQUEST, "run-bench", payload, "urn:bench:issuer"
    )
    benchmark.extra_info["scheme"] = scheme_name
