"""Benchmark driver producing comparable ``BENCH_<n>.json`` files.

Runs the pytest-benchmark suite with a fixed number of rounds (so numbers
are comparable across PRs), then condenses the raw pytest-benchmark report
into a small JSON document keyed by test id with ops/sec, mean/stddev and
each benchmark's ``extra_info`` counters (messages per update, bytes per
update, evidence bytes per call, ...).

Usage::

    python benchmarks/run_benchmarks.py --out BENCH_1.json
    python benchmarks/run_benchmarks.py --out BENCH_2.json \
        --compare BENCH_1.json benchmarks/bench_sharing.py
    python benchmarks/run_benchmarks.py --quick

``--compare`` embeds an earlier run (either a previous ``BENCH_<n>.json`` or
a raw ``--benchmark-json`` report) as the baseline and records per-test
speedups, so the perf trajectory of the repo is tracked file by file.

``--quick`` is the CI smoke mode: one round per benchmark, ``--out``
optional.  The numbers are not comparable across machines -- the point is
that every benchmark still *runs*, so perf-path regressions (crashes, broken
counters) surface in pull requests before a full run is ever attempted.

``--check BENCH_<n>.json`` is the CI regression gate: after the run it
compares the deterministic protocol-cost counters (``messages_per_update``,
``bytes_per_update``) of every benchmark present in both the run and the
committed baseline, and exits non-zero on drift beyond ``--check-tolerance``
(relative, default 2%).  Timings are machine-dependent and never gated on;
the message/byte counters are products of the protocol itself, so a drift
means a PR changed the protocol's cost, not the runner's hardware.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_ROUNDS = 7

#: extra_info counters gated by ``--check``: deterministic products of the
#: protocol (message and byte cost per coordinated update), not of timing.
CHECK_KEYS = ("messages_per_update", "bytes_per_update")


def check_against_baseline(
    baseline: Dict[str, Dict[str, Any]],
    results: Dict[str, Dict[str, Any]],
    tolerance: float,
) -> List[str]:
    """Compare protocol-cost counters against a committed baseline.

    Returns human-readable failure lines (empty when the gate passes).
    Adding new benchmarks never trips the gate, but every baseline
    benchmark that carries a gated counter must still exist in the run:
    deleting or renaming one would otherwise silently shrink the gate.
    """
    failures: List[str] = []
    checked = 0
    for name, base in sorted(baseline.items()):
        base_info = base.get("extra_info", {})
        current = results.get(name)
        if current is None:
            if any(key in base_info for key in CHECK_KEYS):
                failures.append(
                    f"{name}: gated benchmark missing from the run (renamed or "
                    "deleted? update the baseline deliberately)"
                )
            continue
        current_info = current.get("extra_info", {})
        for key in CHECK_KEYS:
            if key not in base_info:
                continue
            if key not in current_info:
                failures.append(f"{name}: counter {key!r} disappeared from the run")
                continue
            expected = float(base_info[key])
            actual = float(current_info[key])
            checked += 1
            if abs(actual - expected) > abs(expected) * tolerance:
                failures.append(
                    f"{name}: {key} drifted from baseline {expected} to {actual} "
                    f"(tolerance {tolerance:.1%})"
                )
    if checked == 0:
        failures.append(
            "no gated counters were compared -- baseline and run share no "
            f"benchmark with {' / '.join(CHECK_KEYS)}"
        )
    return failures


def condense(raw: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    """Reduce a raw pytest-benchmark report to the comparable core."""
    results: Dict[str, Dict[str, Any]] = {}
    for bench in raw.get("benchmarks", []):
        stats = bench["stats"]
        results[bench["fullname"]] = {
            "ops_per_sec": round(stats["ops"], 3),
            "mean_seconds": stats["mean"],
            "stddev_seconds": stats["stddev"],
            "rounds": stats["rounds"],
            "extra_info": bench.get("extra_info", {}),
        }
    return results


def load_comparable(path: Path) -> Dict[str, Dict[str, Any]]:
    """Load results from a BENCH_<n>.json or a raw pytest-benchmark report."""
    document = json.loads(path.read_text())
    if "benchmarks" in document:
        return condense(document)
    if "results" in document:
        return document["results"]
    raise SystemExit(f"{path} is neither a BENCH_<n>.json nor a raw report")


def run_suite(files: List[str], rounds: int) -> Dict[str, Any]:
    """Run the benchmark suite and return the raw pytest-benchmark report."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        report_path = handle.name
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    command = [
        sys.executable,
        "-m",
        "pytest",
        *files,
        "-q",
        f"--benchmark-min-rounds={rounds}",
        # A negligible max-time pins the round count to --benchmark-min-rounds,
        # which is what makes runs comparable across machines and PRs.
        "--benchmark-max-time=0.000001",
        f"--benchmark-json={report_path}",
    ]
    try:
        completed = subprocess.run(command, cwd=REPO_ROOT, env=env)
        if completed.returncode != 0:
            raise SystemExit(f"benchmark run failed with exit code {completed.returncode}")
        return json.loads(Path(report_path).read_text())
    finally:
        Path(report_path).unlink(missing_ok=True)


def main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*", help="benchmark files (default: all)")
    parser.add_argument("--out", help="output BENCH_<n>.json path")
    parser.add_argument(
        "--compare", help="earlier BENCH_<n>.json (or raw report) to baseline against"
    )
    parser.add_argument(
        "--rounds", type=int, default=DEFAULT_ROUNDS, help="fixed rounds per benchmark"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: one round per benchmark, --out optional",
    )
    parser.add_argument(
        "--check",
        help="baseline BENCH_<n>.json to gate protocol-cost counters against "
        "(exit non-zero on drift)",
    )
    parser.add_argument(
        "--check-tolerance",
        type=float,
        default=0.02,
        help="relative drift tolerated by --check (default 2%%)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.rounds = 1
    elif not args.out:
        parser.error("--out is required unless --quick is given")

    files = args.files or sorted(
        str(path.relative_to(REPO_ROOT))
        for path in (REPO_ROOT / "benchmarks").glob("bench_*.py")
    )
    raw = run_suite(files, args.rounds)

    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.crypto.modexp import backend_name

    document: Dict[str, Any] = {
        "meta": {
            "selection": files,
            "rounds": args.rounds,
            "python": sys.version.split()[0],
            "modexp_backend": backend_name(),
            "machine": raw.get("machine_info", {}).get("machine", ""),
        },
        "results": condense(raw),
    }
    if args.compare:
        baseline = load_comparable(Path(args.compare))
        document["baseline"] = baseline
        document["speedup"] = {
            name: round(result["ops_per_sec"] / baseline[name]["ops_per_sec"], 2)
            for name, result in document["results"].items()
            if name in baseline and baseline[name]["ops_per_sec"]
        }
    if args.out:
        Path(args.out).write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.out} ({len(document['results'])} benchmarks)")
    else:
        print(f"quick run ok ({len(document['results'])} benchmarks)")

    if args.check:
        baseline = load_comparable(Path(args.check))
        failures = check_against_baseline(
            baseline, document["results"], args.check_tolerance
        )
        if failures:
            print(f"benchmark-regression gate FAILED against {args.check}:")
            for line in failures:
                print(f"  {line}")
            raise SystemExit(1)
        print(f"benchmark-regression gate ok against {args.check}")


if __name__ == "__main__":
    main()
