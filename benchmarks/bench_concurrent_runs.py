"""P6 -- multi-run concurrent workload (new scenario axis).

A production deployment does not coordinate one update at a time: many
protocol runs for different shared objects are in flight at once.  This
benchmark drives N simultaneous sharing runs (one per shared object, each
proposed by a different organisation) over an M-party domain with real
wall-clock link latency and parallel dispatch, and reports how aggregate
throughput scales with the number of concurrent runs.

The serial engine could never exercise this axis: with sequential dispatch
and blocking sends, concurrent runs simply queue behind each other's link
latency.  With the parallel engine the per-run latencies overlap, so
throughput should scale near-linearly until the (single-core) crypto cost
becomes the floor; ``throughput_scaling`` records the measured ratio against
the single-run baseline of the same domain.
"""

import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import FaultModel, TrustDomain
from repro.clock import SystemClock
from repro.transport.network import ParallelDispatch

from benchmarks.conftest import CallCounter

PARTIES = 4

#: Wall-clock one-way link latency.  20 ms one-way (~40 ms RTT) is a typical
#: inter-enterprise WAN figure -- the paper's B2B setting -- and large enough
#: that overlapping latency, not shaving single-core CPU, is what the
#: scaling axis measures.
LINK_LATENCY_SECONDS = 0.02


def concurrent_domain(runs):
    uris = [f"urn:bench:party{i}" for i in range(PARTIES)]
    domain = TrustDomain.create(
        uris,
        fault_model=FaultModel(latency_seconds=LINK_LATENCY_SECONDS),
        clock=SystemClock(),
        dispatch=ParallelDispatch(),
    )
    for run in range(runs):
        domain.share_object(f"bench-doc-{run}", {"counter": 0})
    return domain


@pytest.mark.parametrize("concurrent_runs", [1, 2, 4])
def test_concurrent_sharing_runs(benchmark, concurrent_runs):
    """N simultaneous sharing runs x M parties: aggregate throughput."""
    domain = concurrent_domain(concurrent_runs)
    organisations = [
        domain.organisation(f"urn:bench:party{i}") for i in range(PARTIES)
    ]
    proposers = ThreadPoolExecutor(
        max_workers=concurrent_runs, thread_name_prefix="bench-proposer"
    )
    counter = {"n": 0}

    def one_run(run, value):
        proposer = organisations[run % PARTIES]
        outcome = proposer.propose_update(f"bench-doc-{run}", {"counter": value})
        assert outcome.agreed

    def wave():
        counter["n"] += 1
        futures = [
            proposers.submit(one_run, run, counter["n"])
            for run in range(concurrent_runs)
        ]
        for future in futures:
            future.result()

    # Single-run baseline on the same warmed domain, for the scaling ratio.
    one_run(0, -1)  # warm caches (key material, encodings) before timing
    baseline_rounds = 10
    start = time.perf_counter()
    for index in range(baseline_rounds):
        one_run(0, -2 - index)
    single_run_mean = (time.perf_counter() - start) / baseline_rounds

    counted = CallCounter(wave)
    before = domain.network.statistics.snapshot()
    benchmark(counted)
    delta = domain.network.statistics.delta(before)

    wave_mean = benchmark.stats.stats.mean
    total_updates = counted.calls * concurrent_runs
    benchmark.extra_info["concurrent_runs"] = concurrent_runs
    benchmark.extra_info["parties"] = PARTIES
    benchmark.extra_info["link_latency_seconds"] = LINK_LATENCY_SECONDS
    benchmark.extra_info["messages_per_update"] = round(
        delta.messages_sent / total_updates, 2
    )
    benchmark.extra_info["updates_per_second"] = round(
        concurrent_runs / wave_mean, 2
    )
    benchmark.extra_info["single_run_mean_seconds"] = single_run_mean
    benchmark.extra_info["throughput_scaling"] = round(
        concurrent_runs * single_run_mean / wave_mean, 2
    )
    proposers.shutdown(wait=True)
