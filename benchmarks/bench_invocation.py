"""F4 -- plain vs non-repudiable service invocation (Figure 4(a) vs 4(b)).

The figure contrasts an ordinary request/response invocation with the
NR-Invocation exchange.  These benchmarks measure the end-to-end cost of
both, the factor between them (the "price of non-repudiation" per call), how
that cost scales with payload size, and the effect of lightweight (HMAC)
versus public-key evidence.
"""

import pytest

from repro import ComponentDescriptor, TrustDomain

from benchmarks.conftest import CallCounter, QuoteService, build_domain


def test_plain_invocation(benchmark, direct_pair):
    """Baseline: ordinary remote invocation without non-repudiation."""
    domain, client, provider = direct_pair
    proxy = client.plain_proxy(provider, "PlainQuoteService")
    counted = CallCounter(proxy.quote)
    before = domain.network.statistics.snapshot()
    result = benchmark(counted, "axle", 2)
    assert result["price"] == 200
    delta = domain.network.statistics.delta(before)
    benchmark.extra_info["messages_per_call"] = round(delta.messages_sent / counted.calls, 2)
    benchmark.extra_info["bytes_per_call"] = round(delta.bytes_delivered / counted.calls)


def test_nr_invocation(benchmark, direct_pair):
    """Non-repudiable invocation through the trusted interceptors."""
    domain, client, provider = direct_pair
    proxy = client.nr_proxy(provider, "QuoteService")
    counted = CallCounter(proxy.quote)
    before = domain.network.statistics.snapshot()
    result = benchmark(counted, "axle", 2)
    assert result["price"] == 200
    delta = domain.network.statistics.delta(before)
    benchmark.extra_info["messages_per_call"] = round(delta.messages_sent / counted.calls, 2)
    benchmark.extra_info["bytes_per_call"] = round(delta.bytes_delivered / counted.calls)


def test_nr_invocation_with_evidence_outcome(benchmark, direct_pair):
    """NR invocation returning the full evidence set to the caller."""
    _, client, provider = direct_pair
    outcome = benchmark(
        client.invoke_non_repudiably,
        provider.uri,
        "QuoteService",
        "quote",
        ["axle"],
        {"quantity": 2},
    )
    assert outcome.succeeded
    benchmark.extra_info["evidence_tokens"] = len(outcome.evidence)


@pytest.mark.parametrize("payload_bytes", [100, 1_000, 10_000, 100_000])
def test_nr_invocation_payload_scaling(benchmark, direct_pair, payload_bytes):
    """How the NR exchange scales with the size of the request payload."""
    _, client, provider = direct_pair
    payload = "x" * payload_bytes
    outcome = benchmark(
        client.invoke_non_repudiably, provider.uri, "QuoteService", "echo", [payload]
    )
    assert outcome.succeeded
    benchmark.extra_info["payload_bytes"] = payload_bytes


@pytest.mark.parametrize("scheme", ["rsa", "hmac"])
def test_nr_invocation_signature_scheme(benchmark, scheme):
    """Full public-key evidence vs the lightweight shared-key scheme (§3.1)."""
    domain = TrustDomain.create(
        ["urn:bench:client", "urn:bench:provider"], scheme=scheme
    )
    provider = domain.organisation("urn:bench:provider")
    provider.deploy(
        QuoteService(), ComponentDescriptor(name="QuoteService", non_repudiation=True)
    )
    client = domain.organisation("urn:bench:client")
    proxy = client.nr_proxy(provider, "QuoteService")
    result = benchmark(proxy.quote, "axle")
    assert result["price"] == 100
    benchmark.extra_info["scheme"] = scheme


def test_nr_overhead_factor(benchmark):
    """One measured row: messages and bytes for plain vs NR invocation.

    The benchmark times a pair of calls (one plain, one NR) and records the
    per-call message counts so the report shows the overhead shape: NR costs
    two extra messages (3 vs 1) and carries the evidence tokens.
    """
    domain = build_domain(2)
    client = domain.organisation("urn:bench:party0")
    provider = domain.organisation("urn:bench:party1")
    plain_proxy = client.plain_proxy(provider, "PlainQuoteService")
    nr_proxy = client.nr_proxy(provider, "QuoteService")

    def one_of_each():
        plain_proxy.quote("axle")
        nr_proxy.quote("axle")

    counted = CallCounter(one_of_each)
    before = domain.network.statistics.snapshot()
    benchmark(counted)
    delta = domain.network.statistics.delta(before)
    benchmark.extra_info["plain_messages_per_call"] = 1
    benchmark.extra_info["nr_messages_per_call"] = round(
        delta.messages_sent / counted.calls - 1, 2
    )
    benchmark.extra_info["bytes_per_pair"] = round(delta.bytes_delivered / counted.calls)
