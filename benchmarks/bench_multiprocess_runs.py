"""P8 -- multi-process concurrent runs over the file-backed evidence store.

The concurrent-runs benchmark (P6) drives N proposers from one process, so
interceptor concurrency is bounded by one interpreter's GIL and the evidence
stores stay in memory.  This driver launches N *proposer processes*; each
builds its own 4-party trust domain (async run-multiplexing engine enabled,
its own seeded lossy fault model) whose organisations persist evidence
through :class:`repro.persistence.storage.FileBackend` directories shared
across the processes -- the same owner's store in every process appends into
the same directory, which exercises true cross-interceptor concurrency and
the file backend's index under contention, and retires the multi-process
follow-up from the ROADMAP.

Each worker drives its updates as *concurrent* ``propose_update_async``
runs, every run carrying a protocol deadline, plus one run it deliberately
aborts -- so cancellation, deadline timers and continuation interleaving are
exercised while the file backend is contended by the sibling processes (the
PR 4 follow-up combining the async engine with this driver).  After the
wave, the new scheduler quiescence criterion must report a fully settled
engine: no pending timers, holds or queued continuations.

The file doubles as the worker program: ``python bench_multiprocess_runs.py
--worker --dir D --index I --updates N`` runs one proposer process and
writes ``result-I.json`` into ``D``.  The pytest-benchmark entry point
spawns the workers, waits for the wave, and reports aggregate throughput.

The durable variant (``test_multiprocess_durable_runs_survive_worker_kill``)
re-runs the wave with the run journal enabled and one worker SIGKILLed at
its first ``after-journal-proposed`` barrier, then restarted with
``--recover``: the restarted process replays its journal (recovery-abort,
the crash landed before the commit barrier) and still completes its full
wave, so the kill costs availability, never divergence.  The plain wave's
protocol-cost counters stay gated against the committed baseline -- with
``durable_runs`` off the journal seam must be free.
"""

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

PARTIES = 4
UPDATES_PER_PROCESS = 6
DROP_PROBABILITY = 0.05
KILL_STAGE = "after-journal-proposed"
REPO_ROOT = Path(__file__).resolve().parent.parent


# -- worker process -----------------------------------------------------------


def worker_main(
    directory: str,
    index: int,
    updates: int,
    durable: bool = False,
    kill: bool = False,
    recover: bool = False,
) -> None:
    from repro import FaultModel, TrustDomain
    from repro.persistence.evidence_store import EvidenceStore
    from repro.persistence.storage import FileBackend

    uris = [f"urn:mp:party{i}" for i in range(PARTIES)]

    def backend_for(uri: str) -> FileBackend:
        # One directory per *owner*, shared by every process: concurrent
        # interceptors for the same organisation append into one index.
        return FileBackend(os.path.join(directory, "evidence", uri.split(":")[-1]))

    def journal_backend_for(uri: str) -> FileBackend:
        return FileBackend(
            os.path.join(directory, f"journal-{index}", uri.split(":")[-1])
        )

    domain = TrustDomain.create(
        uris,
        scheme="hmac",
        fault_model=FaultModel(
            drop_probability=DROP_PROBABILITY,
            max_consecutive_drops=3,
            seed=b"mp-%d" % index,
        ),
        async_runs=True,
        evidence_backend_factory=backend_for,
        durable_runs=durable,
        run_journal_backend_factory=journal_backend_for if durable else None,
    )
    # One object per update so the concurrent async runs never contend on
    # base versions -- the contention under test is the shared file backend.
    for value in range(1, updates + 1):
        domain.share_object(f"mp-doc-{index}-{value}", {"counter": 0})
    domain.share_object(f"mp-doc-{index}-aborted", {"counter": 0})
    proposer = domain.organisation(uris[index % PARTIES])

    recovered_actions = {}
    if recover:
        # Second life: the journal from the killed first life must replay.
        # The SIGKILL landed before any commit barrier, so every open run
        # recovers by aborting -- nothing was applied anywhere, and the full
        # wave below still completes from a clean slate.
        recovered_actions = proposer.recover_runs()
        assert recovered_actions, "killed worker left no journaled runs"
        assert set(recovered_actions.values()) == {"aborted"}, recovered_actions
    if kill:
        from repro.core.sharing import set_run_fault_injector

        set_run_fault_injector(
            lambda stage, run: os.kill(os.getpid(), signal.SIGKILL)
            if stage == KILL_STAGE
            else None
        )

    started = time.perf_counter()
    # All runs in flight at once on the continuation engine, each with a
    # protocol deadline riding the retry scheduler (generous: the deadline
    # path is exercised, expiry is not expected).
    futures = [
        proposer.propose_update_async(
            f"mp-doc-{index}-{value}", {"counter": value}, deadline=300.0
        )
        for value in range(1, updates + 1)
    ]
    # One more run is aborted mid-flight: its timers must be withdrawn and
    # its future must resolve not-agreed without disturbing the others.
    aborted_future = proposer.propose_update_async(
        f"mp-doc-{index}-aborted", {"counter": 1}, deadline=300.0
    )
    aborted_future.abort("cancelled by the benchmark")
    outcomes = [future.result(timeout=240) for future in futures]
    aborted_outcome = aborted_future.result(timeout=240)
    elapsed = time.perf_counter() - started

    for outcome in outcomes:
        assert outcome.agreed, outcome.reason
    scheduler = domain.retry_scheduler
    # Aborting after dispatch may lose the race with completion; either way
    # the run must leave no timers behind.
    assert scheduler.pending_timers_for_run(aborted_outcome.run_id) == 0
    # The engine must be fully quiescent: no timers, holds or queued
    # continuations survive the wave (the new quiescence criterion).
    assert scheduler.wait_quiescent(timeout=30), scheduler.quiescence()
    last_run_id = outcomes[-1].run_id

    # Reopen the proposer's store from disk: the records this process wrote
    # must be recoverable by a fresh interceptor process.
    reopened = EvidenceStore(owner=proposer.uri, backend=backend_for(proposer.uri))
    recovered = len(reopened.evidence_for_run(last_run_id))
    assert recovered >= 2, f"run {last_run_id} not recoverable from disk: {recovered}"

    stats = domain.network.statistics
    result = {
        "index": index,
        "updates": updates,
        "elapsed_seconds": elapsed,
        "evidence_records": proposer.evidence_store.total_records(),
        "evidence_bytes": proposer.evidence_store.storage_bytes(),
        "recovered_records_last_run": recovered,
        "messages_sent": stats.messages_sent,
        "retries": sum(stats.failed_attempts_per_destination().values()),
        "recovered_runs": len(recovered_actions),
    }
    with open(os.path.join(directory, f"result-{index}.json"), "w") as handle:
        json.dump(result, handle)


# -- benchmark entry point ----------------------------------------------------


def _spawn_worker(directory: str, env, index: int, updates: int, *flags: str):
    return subprocess.Popen(
        [
            sys.executable,
            str(Path(__file__).resolve()),
            "--worker",
            "--dir",
            directory,
            "--index",
            str(index),
            "--updates",
            str(updates),
            *flags,
        ],
        env=env,
        cwd=str(REPO_ROOT),
    )


def launch_wave(processes: int, updates: int, kill_worker: bool = False):
    directory = tempfile.mkdtemp(prefix="bench-mp-")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    try:
        procs = []
        for index in range(processes):
            flags = ["--durable"] if kill_worker else []
            if kill_worker and index == 0:
                flags.append("--kill")
            procs.append(_spawn_worker(directory, env, index, updates, *flags))
        exit_codes = [proc.wait(timeout=300) for proc in procs]
        if kill_worker:
            # Worker 0 SIGKILLed itself at its first journal barrier; the
            # others must be unaffected.  Restart it over the same journal
            # directory and let it recover, then run its full wave.
            assert exit_codes[0] == -signal.SIGKILL, exit_codes
            assert all(code == 0 for code in exit_codes[1:]), exit_codes
            restarted = _spawn_worker(
                directory, env, 0, updates, "--durable", "--recover"
            )
            assert restarted.wait(timeout=300) == 0
        else:
            assert all(code == 0 for code in exit_codes), exit_codes
        results = []
        for index in range(processes):
            with open(os.path.join(directory, f"result-{index}.json")) as handle:
                results.append(json.load(handle))
        return results
    finally:
        shutil.rmtree(directory, ignore_errors=True)


def test_multiprocess_concurrent_runs(benchmark):
    """A wave of 4 proposer processes against shared file-backed stores."""
    import pytest  # noqa: F401 - imported for parity with the other benches

    processes = 4
    # pedantic mode ignores the driver's --benchmark-min-rounds pinning, so
    # pin one round explicitly: one wave is 4 interpreters x 6 protocol
    # updates -- heavy enough that CI smoke must not pay it twice.
    results = benchmark.pedantic(
        lambda: launch_wave(processes, UPDATES_PER_PROCESS), rounds=1, iterations=1
    )
    total_updates = sum(result["updates"] for result in results)
    slowest = max(result["elapsed_seconds"] for result in results)
    benchmark.extra_info["processes"] = processes
    benchmark.extra_info["parties"] = PARTIES
    benchmark.extra_info["updates_per_process"] = UPDATES_PER_PROCESS
    benchmark.extra_info["drop_probability"] = DROP_PROBABILITY
    benchmark.extra_info["aggregate_updates_per_second"] = round(
        total_updates / slowest, 2
    )
    benchmark.extra_info["evidence_records_per_process"] = results[0][
        "evidence_records"
    ]
    benchmark.extra_info["total_retries"] = sum(
        result["retries"] for result in results
    )


def test_multiprocess_durable_runs_survive_worker_kill(benchmark):
    """The same wave with run journals on and one worker killed mid-run.

    Measures the cost of durability under an actual process kill: worker 0
    dies at its first ``after-journal-proposed`` barrier, restarts over its
    journal directory, recovery-aborts the orphaned run, and still drives
    its complete wave.  The aggregate throughput therefore includes one
    full restart-and-recover cycle.
    """
    processes = 4
    results = benchmark.pedantic(
        lambda: launch_wave(processes, UPDATES_PER_PROCESS, kill_worker=True),
        rounds=1,
        iterations=1,
    )
    total_updates = sum(result["updates"] for result in results)
    slowest = max(result["elapsed_seconds"] for result in results)
    benchmark.extra_info["processes"] = processes
    benchmark.extra_info["killed_workers"] = 1
    benchmark.extra_info["kill_stage"] = KILL_STAGE
    benchmark.extra_info["recovered_runs"] = results[0]["recovered_runs"]
    benchmark.extra_info["aggregate_updates_per_second"] = round(
        total_updates / slowest, 2
    )
    assert results[0]["recovered_runs"] >= 1
    assert all(result["recovered_runs"] == 0 for result in results[1:])


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--worker", action="store_true", required=True)
    parser.add_argument("--dir", required=True)
    parser.add_argument("--index", type=int, required=True)
    parser.add_argument("--updates", type=int, default=UPDATES_PER_PROCESS)
    parser.add_argument("--durable", action="store_true")
    parser.add_argument("--kill", action="store_true")
    parser.add_argument("--recover", action="store_true")
    arguments = parser.parse_args()
    worker_main(
        arguments.dir,
        arguments.index,
        arguments.updates,
        durable=arguments.durable,
        kill=arguments.kill,
        recover=arguments.recover,
    )
