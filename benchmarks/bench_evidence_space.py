"""P2 -- space overhead of non-repudiation evidence.

Paper Section 6 names "the space overhead of evidence generated" as a cost
dimension.  These benchmarks measure the stored-evidence bytes per
interaction, how they relate to the size of the application payload, the cost
of timestamped evidence, and the size of one protocol message relative to the
payload it carries.
"""

import pytest

from repro import B2BProtocolMessage, TokenType
from repro import codec

from benchmarks.conftest import CallCounter, build_domain


@pytest.mark.parametrize("payload_bytes", [100, 1_000, 10_000, 100_000])
def test_evidence_bytes_per_invocation(benchmark, payload_bytes):
    """Stored evidence per NR invocation as the payload grows.

    Evidence stores signed digests, not payload copies, so the expected shape
    is near-constant evidence size regardless of payload size.
    """
    domain = build_domain(2)
    client = domain.organisation("urn:bench:party0")
    provider = domain.organisation("urn:bench:party1")
    payload = "x" * payload_bytes

    def invoke():
        outcome = client.invoke_non_repudiably(
            provider.uri, "QuoteService", "echo", [payload]
        )
        assert outcome.succeeded

    counted = CallCounter(invoke)
    client_before = client.evidence_store.storage_bytes()
    server_before = provider.evidence_store.storage_bytes()
    benchmark(counted)
    client_delta = client.evidence_store.storage_bytes() - client_before
    server_delta = provider.evidence_store.storage_bytes() - server_before
    benchmark.extra_info["payload_bytes"] = payload_bytes
    benchmark.extra_info["client_evidence_bytes_per_call"] = round(client_delta / counted.calls)
    benchmark.extra_info["server_evidence_bytes_per_call"] = round(server_delta / counted.calls)


def test_evidence_bytes_per_sharing_round(benchmark):
    """Stored evidence per agreed update, per party, in a three-party group."""
    domain = build_domain(3, deploy_service=False)
    domain.share_object("bench-doc", {"v": 0})
    organisations = [domain.organisation(uri) for uri in domain.party_uris()]
    proposer = organisations[0]
    counter = {"n": 0}

    def propose():
        counter["n"] += 1
        assert proposer.propose_update("bench-doc", {"v": counter["n"]}).agreed

    counted = CallCounter(propose)
    before = [org.evidence_store.storage_bytes() for org in organisations]
    benchmark(counted)
    per_party = [
        round((org.evidence_store.storage_bytes() - start) / counted.calls)
        for org, start in zip(organisations, before)
    ]
    benchmark.extra_info["proposer_bytes_per_update"] = per_party[0]
    benchmark.extra_info["peer_bytes_per_update"] = per_party[1]


@pytest.mark.parametrize("use_timestamping", [False, True], ids=["plain", "timestamped"])
def test_timestamping_space_overhead(benchmark, use_timestamping):
    """Extra evidence bytes when every token carries a TSA timestamp (§3.5)."""
    domain = build_domain(2, use_timestamping=use_timestamping)
    client = domain.organisation("urn:bench:party0")
    provider = domain.organisation("urn:bench:party1")

    def invoke():
        assert client.invoke_non_repudiably(
            provider.uri, "QuoteService", "quote", ["axle"]
        ).succeeded

    counted = CallCounter(invoke)
    before = client.evidence_store.storage_bytes()
    benchmark(counted)
    benchmark.extra_info["timestamped"] = use_timestamping
    benchmark.extra_info["client_evidence_bytes_per_call"] = round(
        (client.evidence_store.storage_bytes() - before) / counted.calls
    )


@pytest.mark.parametrize("payload_bytes", [100, 10_000])
def test_protocol_message_size_vs_payload(benchmark, payload_bytes):
    """Canonical size of a step-1 protocol message relative to its payload."""
    domain = build_domain(2)
    client = domain.organisation("urn:bench:party0")
    payload = {"component": "QuoteService", "method": "echo", "args": ["x" * payload_bytes],
               "kwargs": {}, "caller": client.uri, "target_party": "urn:bench:party1"}
    token = client.evidence_builder.build(
        TokenType.NRO_REQUEST, "run-bench", 1, "urn:bench:party1", payload
    )
    message = B2BProtocolMessage(
        run_id="run-bench",
        protocol="nr-invocation",
        step=1,
        sender=client.uri,
        recipient="urn:bench:party1",
        payload=payload,
        tokens=[token],
    )
    size = benchmark(message.encoded_size)
    benchmark.extra_info["payload_bytes"] = payload_bytes
    benchmark.extra_info["message_bytes"] = size
    benchmark.extra_info["overhead_bytes"] = size - codec.encoded_size(payload)
