"""P5 -- many-peer scale-out: one node, 1k+ lazily managed peer channels.

"Millions of users" means thousands of pairwise peer relationships per
node, most of them cold at any moment.  This benchmark builds one
proposer node and 1024 peer parties spread over a set of hub processes
(in-process wire transports -- real sockets, real frames), with the
node's :class:`~repro.peering.PeerChannelManager` capped far below the
peer count.  A sweep coordinates one agreed update with *every* peer:
every channel is created lazily on first touch, least-recently-used
channels are evicted as the sweep advances (audited), and pooled
sockets are released whenever a hub endpoint's last channel goes -- so
live transport state stays bounded by the cap while the node sustains
updates across the whole 1k+ peer set.

Peers are assigned to hubs in contiguous blocks, so the LRU sweep
retires whole endpoints behind it and the socket bound is exercised,
not just the channel-table bound.
"""

import pytest

from repro import DomainConfig, PeeringConfig, TransportConfig, TrustDomain
from repro.peering import AUDIT_CATEGORY_PEERING
from repro.transport.wire import WireTransport

NODE = "urn:bench:node"
HUBS = 32
PEERS_PER_HUB = 32
PEER_COUNT = HUBS * PEERS_PER_HUB  # 1024
CHANNEL_CAP = 64


def _peer(hub, index):
    return f"urn:bench:peer{hub}x{index}"


PEERS = [_peer(h, i) for h in range(HUBS) for i in range(PEERS_PER_HUB)]


@pytest.fixture(scope="module")
def many_peer_node():
    hubs = [
        WireTransport(
            [_peer(h, i) for i in range(PEERS_PER_HUB)],
            port=0,
            await_remote_credentials=False,
        )
        for h in range(HUBS)
    ]
    node = WireTransport(
        [NODE],
        port=0,
        peers={
            _peer(h, i): (hubs[h].host, hubs[h].port)
            for h in range(HUBS)
            for i in range(PEERS_PER_HUB)
        },
    )
    for hub in hubs:
        hub.network.address_book.add(NODE, node.host, node.port)
    node_domain = TrustDomain.create(
        [NODE] + PEERS,
        config=DomainConfig(
            transport=TransportConfig(wire=node),
            peering=PeeringConfig(max_live_channels=CHANNEL_CAP),
        ),
    )
    hub_domains = [
        TrustDomain.create([NODE] + PEERS, transport=hub) for hub in hubs
    ]
    for index, peer in enumerate(PEERS):
        members = [NODE, peer]
        hub_domains[index // PEERS_PER_HUB].share_object(
            f"doc-{index}", {"v": 0}, members
        )
        node_domain.share_object(f"doc-{index}", {"v": 0}, members)
    try:
        yield node, node_domain
    finally:
        node.close()
        for hub in hubs:
            hub.close()


def test_thousand_peer_sweep(benchmark, many_peer_node):
    """One agreed update with each of 1024 peers through a 64-channel cap."""
    node, node_domain = many_peer_node
    org = node_domain.organisation(NODE)
    version = {"n": 0}

    def sweep():
        version["n"] += 1
        for index in range(PEER_COUNT):
            outcome = org.propose_update(f"doc-{index}", {"v": version["n"]})
            assert outcome.agreed

    before = node.network.statistics.snapshot()
    benchmark.pedantic(sweep, rounds=1, iterations=1)
    delta = node.network.statistics.delta(before)
    sweeps = version["n"]

    stats = node.peer_manager.stats
    # every peer held a live channel at some point ...
    assert stats.created >= PEER_COUNT
    # ... but live transport state stayed bounded by the cap throughout
    assert stats.peak_live <= CHANNEL_CAP
    assert node.peer_manager.live_channels() <= CHANNEL_CAP
    assert node.network.pool.live_connections() <= CHANNEL_CAP
    assert stats.evicted >= PEER_COUNT - CHANNEL_CAP
    # whole hub endpoints went cold behind the sweep: sockets were released
    assert node.network.pool.peer_releases >= HUBS - (CHANNEL_CAP // PEERS_PER_HUB)
    # evictions left an audit trail on the node
    audited = org.audit_log.records(category=AUDIT_CATEGORY_PEERING)
    assert len(audited) >= stats.evicted

    updates = sweeps * PEER_COUNT
    benchmark.extra_info["peer_count"] = PEER_COUNT
    benchmark.extra_info["channel_cap"] = CHANNEL_CAP
    benchmark.extra_info["channels_created"] = stats.created
    benchmark.extra_info["peak_live_channels"] = stats.peak_live
    benchmark.extra_info["live_sockets_after"] = node.network.pool.live_connections()
    benchmark.extra_info["channels_evicted"] = stats.evicted
    benchmark.extra_info["endpoint_releases"] = node.network.pool.peer_releases
    benchmark.extra_info["messages_per_update"] = round(
        delta.messages_sent / updates, 2
    )
    benchmark.extra_info["bytes_per_update"] = round(
        delta.bytes_delivered / updates, 1
    )


def test_hot_peer_update_under_churn(benchmark, many_peer_node):
    """Steady-state update cost while the channel table keeps churning.

    Alternates one hot peer with a rotating cold peer, so every other
    update rides an existing channel while the table keeps evicting and
    recreating around it -- the common regime of a node with a few active
    counterparties and a long cold tail.
    """
    node, node_domain = many_peer_node
    org = node_domain.organisation(NODE)
    state = {"cold": 0, "v": 0}

    def update():
        state["v"] += 1
        assert org.propose_update("doc-0", {"v": state["v"]}).agreed
        state["cold"] = (state["cold"] + 1) % PEER_COUNT
        assert org.propose_update(
            f"doc-{state['cold']}", {"v": state["v"]}
        ).agreed

    counter_before = node.peer_manager.stats.recreated
    benchmark(update)
    assert node.peer_manager.stats.recreated > counter_before
    assert node.peer_manager.live_channels() <= CHANNEL_CAP
    benchmark.extra_info["updates_per_call"] = 2
    benchmark.extra_info["recreations"] = (
        node.peer_manager.stats.recreated - counter_before
    )
