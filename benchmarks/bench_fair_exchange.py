"""P4 -- direct (TTP-free) operation vs TTP-supported recovery.

Section 4 of the paper notes that the direct implementations trade liveness
guarantees against TTP involvement, and that the framework can introduce a
TTP to execute fault-tolerant fair-exchange protocols.  These benchmarks
measure: the steady-state cost of running with an (unused) offline
arbitrator, the cost of a resolve/abort recovery when it is needed, and the
liveness cost (retries, simulated time) of direct operation under increasing
message loss -- the trade-off the paper describes qualitatively.
"""

import pytest

from repro import ComponentDescriptor, FaultModel, TrustDomain
from repro.core.fair_exchange import FairExchangeClient

from benchmarks.conftest import CallCounter, QuoteService


def arbitrated_domain(**kwargs):
    domain = TrustDomain.create(
        ["urn:bench:client", "urn:bench:provider"], with_arbitrator=True, **kwargs
    )
    provider = domain.organisation("urn:bench:provider")
    provider.deploy(
        QuoteService(), ComponentDescriptor(name="QuoteService", non_repudiation=True)
    )
    return domain


def test_optimistic_path_with_idle_arbitrator(benchmark):
    """Normal-case cost when an offline arbitrator exists but is never used."""
    domain = arbitrated_domain()
    client = domain.organisation("urn:bench:client")
    provider = domain.organisation("urn:bench:provider")
    proxy = client.nr_proxy(provider, "QuoteService")
    result = benchmark(proxy.quote, "axle")
    assert result["price"] == 100
    # The arbitrator never saw any traffic.
    arbitrator_host = domain.ttps["urn:ttp:arbitrator"]
    benchmark.extra_info["arbitrator_evidence_records"] = (
        arbitrator_host.evidence_store.total_records()
    )


def test_resolution_cost(benchmark):
    """Cost of a server-side resolve (missing receipt) at the arbitrator."""
    domain = arbitrated_domain()
    client = domain.organisation("urn:bench:client")
    provider = domain.organisation("urn:bench:provider")
    exchange = FairExchangeClient(
        provider.uri, provider.coordinator, domain.arbitrator_uri
    )

    def invoke_and_resolve():
        outcome = client.invoke_non_repudiably(
            provider.uri, "QuoteService", "quote", ["axle"]
        )
        affidavit = exchange.request_resolution(outcome.run_id)
        assert affidavit.issuer == domain.arbitrator_uri

    benchmark(invoke_and_resolve)


def test_abort_cost(benchmark):
    """Cost of a client-side abort at the arbitrator."""
    domain = arbitrated_domain()
    client = domain.organisation("urn:bench:client")
    provider = domain.organisation("urn:bench:provider")
    exchange = FairExchangeClient(client.uri, client.coordinator, domain.arbitrator_uri)
    counter = {"n": 0}

    def abort_a_fresh_run():
        counter["n"] += 1
        run_id = f"bench-abandoned-run-{counter['n']}"
        token = exchange.request_abort(run_id)
        assert token.issuer == domain.arbitrator_uri

    benchmark(abort_a_fresh_run)


@pytest.mark.parametrize("drop_probability", [0.0, 0.3, 0.6])
def test_direct_liveness_cost_under_loss(benchmark, drop_probability):
    """Liveness cost of TTP-free operation as message loss grows.

    The direct deployment keeps working (bounded failures + retries) but pays
    for it in send attempts and simulated retry/backoff time -- the trade-off
    against involving a TTP that Section 3.1 discusses.
    """
    domain = TrustDomain.create(
        ["urn:bench:client", "urn:bench:provider"],
        fault_model=FaultModel(
            drop_probability=drop_probability, max_consecutive_drops=4, seed=b"bench-p4"
        ),
    )
    provider = domain.organisation("urn:bench:provider")
    provider.deploy(
        QuoteService(), ComponentDescriptor(name="QuoteService", non_repudiation=True)
    )
    client = domain.organisation("urn:bench:client")
    proxy = client.nr_proxy(provider, "QuoteService")

    counted = CallCounter(proxy.quote)
    before = domain.network.statistics.snapshot()
    simulated_start = domain.network.clock.now()
    result = benchmark(counted, "axle")
    assert result["price"] == 100
    delta = domain.network.statistics.delta(before)
    benchmark.extra_info["drop_probability"] = drop_probability
    benchmark.extra_info["attempts_per_call"] = round(delta.messages_sent / counted.calls, 2)
    benchmark.extra_info["simulated_seconds_per_call"] = round(
        (domain.network.clock.now() - simulated_start) / counted.calls, 4
    )
