"""P8 -- run-multiplexing async protocol engine: many runs, few workers.

PR 3 made delivery *retries* event-driven; a protocol run itself still
occupied one thread from first proposal to final outcome, so run concurrency
was capped at thread count.  The continuation engine
(``propose_update_async`` -> ``RunFuture``) frees the thread between phases:
a run waiting on deliveries exists only as scheduler timers and completion
callbacks, so hundreds of concurrent runs multiplex over a small bounded
pool.

Two axes are measured on the simulated clock (deterministically seeded, so
CI can gate on counters without wall-clock noise):

* **Throughput under loss** -- 256 concurrent runs at a 10% drop rate,
  driven through the async engine on a shared executor bounded to 8
  workers, against the thread-per-run baseline of 8 blocking proposer
  threads working through the same 256 runs.  Blocking threads *sum* their
  retry backoffs into the virtual timeline; multiplexed runs overlap them,
  so simulated time-to-completion collapses.  Acceptance: >= 3x throughput.
* **Protocol cost parity** -- at zero drop the async engine must cost
  exactly what the blocking engine costs: ``messages_per_update`` /
  ``bytes_per_update`` are recorded for the regression gate and asserted
  equal between engines in-bench.
"""

import threading

import pytest

from repro import FaultModel, TrustDomain, parallel

from benchmarks.conftest import CallCounter

PARTIES = 4
CONCURRENT_RUNS = 256
POOL_WORKERS = 8
BLOCKING_THREADS = 8
DROP_PROBABILITY = 0.10
SEED = b"bench-4"


def build_domain(async_runs, drop, objects):
    domain = TrustDomain.create(
        [f"urn:bench:p{i}" for i in range(PARTIES)],
        scheme="hmac",
        fault_model=FaultModel(drop_probability=drop, seed=SEED) if drop else None,
        scheduled_retries=async_runs,
        async_runs=async_runs,
    )
    for index in range(objects):
        domain.share_object(f"obj-{index}", {"v": 0})
    return domain


def blocking_thread_per_run():
    """8 blocking proposer threads work through 256 runs; backoffs sum."""
    domain = build_domain(async_runs=False, drop=DROP_PROBABILITY, objects=CONCURRENT_RUNS)
    proposer = domain.organisation("urn:bench:p0")
    started = domain.network.clock.now()
    pending = list(range(CONCURRENT_RUNS))
    lock = threading.Lock()

    def worker():
        while True:
            with lock:
                if not pending:
                    return
                index = pending.pop()
            outcome = proposer.propose_update(f"obj-{index}", {"v": 1})
            assert outcome.agreed, outcome.reason

    threads = [threading.Thread(target=worker) for _ in range(BLOCKING_THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return domain.network.clock.now() - started, domain.network.statistics


def async_multiplexed():
    """256 async runs multiplex over a <= 8-worker pool; backoffs overlap."""
    parallel.set_max_workers(POOL_WORKERS)
    try:
        domain = build_domain(
            async_runs=True, drop=DROP_PROBABILITY, objects=CONCURRENT_RUNS
        )
        proposer = domain.organisation("urn:bench:p0")
        started = domain.network.clock.now()
        futures = [
            proposer.propose_update_async(f"obj-{index}", {"v": 1})
            for index in range(CONCURRENT_RUNS)
        ]
        outcomes = [future.result(timeout=600) for future in futures]
        elapsed = domain.network.clock.now() - started
        assert all(outcome.agreed for outcome in outcomes)
        assert domain.retry_scheduler.pending_timers() == 0
        return elapsed, domain.network.statistics
    finally:
        parallel.set_max_workers(None)


def test_concurrent_run_throughput(benchmark):
    """Simulated time for 256 lossy runs: 8 blocking threads vs 8-worker pool."""

    def both_modes():
        blocking_elapsed, blocking_stats = blocking_thread_per_run()
        async_elapsed, async_stats = async_multiplexed()
        return blocking_elapsed, async_elapsed, blocking_stats, async_stats

    blocking_elapsed, async_elapsed, blocking_stats, async_stats = benchmark.pedantic(
        both_modes, rounds=1, iterations=1
    )
    ratio = blocking_elapsed / async_elapsed if async_elapsed else float("inf")
    benchmark.extra_info["concurrent_runs"] = CONCURRENT_RUNS
    benchmark.extra_info["pool_workers"] = POOL_WORKERS
    benchmark.extra_info["blocking_threads"] = BLOCKING_THREADS
    benchmark.extra_info["drop_probability"] = DROP_PROBABILITY
    benchmark.extra_info["parties"] = PARTIES
    benchmark.extra_info["blocking_simulated_seconds"] = round(blocking_elapsed, 3)
    benchmark.extra_info["async_simulated_seconds"] = round(async_elapsed, 3)
    benchmark.extra_info["async_throughput_ratio"] = round(ratio, 2)
    benchmark.extra_info["runs_per_simulated_second_async"] = round(
        CONCURRENT_RUNS / async_elapsed, 2
    )
    # Every run delivered its proposal and outcome in both modes; interleaved
    # retries draw the fault model in a different order, so *attempts* may
    # differ, but deliveries per destination must not.
    assert (
        blocking_stats.deliveries_per_destination
        == async_stats.deliveries_per_destination
    )
    assert ratio >= 3.0, (
        f"expected >=3x throughput from run multiplexing at {CONCURRENT_RUNS} "
        f"runs on {POOL_WORKERS} workers, got {ratio:.2f}x"
    )


@pytest.mark.parametrize("parties", [4])
def test_async_run_protocol_cost(benchmark, parties):
    """Zero-drop protocol cost of an async-engine update (gated counters).

    The continuation engine must not change what the protocol *sends*:
    messages/bytes per update are compared against the blocking engine on an
    identical domain and recorded for the CI regression gate.
    """
    async_domain = build_domain(async_runs=True, drop=0.0, objects=1)
    blocking_domain = build_domain(async_runs=False, drop=0.0, objects=1)
    proposers = {
        "async": async_domain.organisation("urn:bench:p0"),
        "blocking": blocking_domain.organisation("urn:bench:p0"),
    }
    counter = {"n": 0}

    def propose_async_engine():
        counter["n"] += 1
        payload = {"counter": counter["n"], "payload": {"data": "x" * 100}}
        outcome = proposers["async"].propose_update_async("obj-0", payload).result(
            timeout=120
        )
        assert outcome.agreed
        return outcome

    counted = CallCounter(propose_async_engine)
    before = async_domain.network.statistics.snapshot()
    benchmark(counted)
    delta = async_domain.network.statistics.delta(before)

    # Blocking reference: the same number of updates on the twin domain.
    blocking_before = blocking_domain.network.statistics.snapshot()
    for n in range(1, counted.calls + 1):
        outcome = proposers["blocking"].propose_update(
            "obj-0", {"counter": n, "payload": {"data": "x" * 100}}
        )
        assert outcome.agreed
    blocking_delta = blocking_domain.network.statistics.delta(blocking_before)

    messages_per_update = delta.messages_sent / counted.calls
    bytes_per_update = delta.bytes_delivered / counted.calls
    assert messages_per_update == blocking_delta.messages_sent / counted.calls
    assert bytes_per_update == blocking_delta.bytes_delivered / counted.calls
    benchmark.extra_info["parties"] = parties
    benchmark.extra_info["engine"] = "async"
    benchmark.extra_info["messages_per_update"] = round(messages_per_update, 2)
    benchmark.extra_info["bytes_per_update"] = round(bytes_per_update)
