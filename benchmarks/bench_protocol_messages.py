"""P3 -- communication overhead of the non-repudiation protocols.

Paper Section 6 names "the communication overhead of additional messages to
execute protocols" as a cost dimension.  These benchmarks count protocol
messages and bytes on the simulated network for each interaction type and
deployment style, producing the rows a communication-cost table would carry.
"""

import pytest

from repro import DeploymentStyle

from benchmarks.conftest import CallCounter, build_domain


def measure_messages(domain, action, repetitions=3):
    """Run ``action`` ``repetitions`` times and return per-run message/byte counts."""
    before = domain.network.statistics.snapshot()
    for _ in range(repetitions):
        action()
    delta = domain.network.statistics.delta(before)
    return delta.messages_sent / repetitions, delta.bytes_delivered / repetitions


def test_plain_vs_nr_invocation_message_counts(benchmark):
    """Row: plain invocation = 1 message, NR invocation = 3 messages."""
    domain = build_domain(2)
    client = domain.organisation("urn:bench:party0")
    provider = domain.organisation("urn:bench:party1")
    plain = client.plain_proxy(provider, "PlainQuoteService")
    non_repudiable = client.nr_proxy(provider, "QuoteService")

    plain_messages, plain_bytes = measure_messages(domain, lambda: plain.quote("axle"))
    nr_messages, nr_bytes = measure_messages(domain, lambda: non_repudiable.quote("axle"))

    def measured_pair():
        plain.quote("axle")
        non_repudiable.quote("axle")

    benchmark(measured_pair)
    benchmark.extra_info["plain_messages"] = plain_messages
    benchmark.extra_info["nr_messages"] = nr_messages
    benchmark.extra_info["plain_bytes"] = round(plain_bytes)
    benchmark.extra_info["nr_bytes"] = round(nr_bytes)
    benchmark.extra_info["message_overhead_factor"] = round(nr_messages / plain_messages, 2)


@pytest.mark.parametrize("parties", [2, 3, 5, 8])
def test_sharing_message_counts_vs_group_size(benchmark, parties):
    """Row: messages per agreed update = 2*(N-1) requests + (N-1) outcomes."""
    domain = build_domain(parties, deploy_service=False)
    domain.share_object("bench-doc", {"v": 0})
    proposer = domain.organisation("urn:bench:party0")
    counter = {"n": 0}

    def propose():
        counter["n"] += 1
        assert proposer.propose_update("bench-doc", {"v": counter["n"]}).agreed

    messages, data_bytes = measure_messages(domain, propose)
    benchmark(propose)
    benchmark.extra_info["parties"] = parties
    benchmark.extra_info["messages_per_update"] = messages
    benchmark.extra_info["bytes_per_update"] = round(data_bytes)
    benchmark.extra_info["expected_messages"] = 2 * (parties - 1)


@pytest.mark.parametrize(
    "style",
    [DeploymentStyle.DIRECT, DeploymentStyle.INLINE_TTP, DeploymentStyle.DISTRIBUTED_TTP],
    ids=lambda s: s.value,
)
def test_invocation_message_counts_per_style(benchmark, style):
    """Row: NR invocation messages per deployment style (3 / 6 / 9 hops)."""
    domain = build_domain(2, style=style)
    client = domain.organisation("urn:bench:party0")
    provider = domain.organisation("urn:bench:party1")
    proxy = client.nr_proxy(provider, "QuoteService")

    messages, data_bytes = measure_messages(domain, lambda: proxy.quote("axle"))
    benchmark(lambda: proxy.quote("axle"))
    benchmark.extra_info["style"] = style.value
    benchmark.extra_info["messages_per_call"] = messages
    benchmark.extra_info["bytes_per_call"] = round(data_bytes)


def test_retry_overhead_on_lossy_network(benchmark):
    """Extra send attempts needed per completed invocation on a lossy link."""
    from repro import FaultModel

    domain = build_domain(
        2,
        fault_model=FaultModel(
            drop_probability=0.4, max_consecutive_drops=4, seed=b"bench-lossy"
        ),
    )
    client = domain.organisation("urn:bench:party0")
    provider = domain.organisation("urn:bench:party1")
    proxy = client.nr_proxy(provider, "QuoteService")

    counted = CallCounter(lambda: proxy.quote("axle"))
    before = domain.network.statistics.snapshot()
    benchmark(counted)
    delta = domain.network.statistics.delta(before)
    benchmark.extra_info["attempts_per_call"] = round(delta.messages_sent / counted.calls, 2)
    benchmark.extra_info["drops_per_call"] = round(delta.messages_dropped / counted.calls, 2)
    benchmark.extra_info["delivered_per_call"] = round(
        delta.messages_delivered / counted.calls, 2
    )
