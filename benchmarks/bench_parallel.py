"""P5 -- the parallel protocol engine.

Three measurements, one per layer of the engine:

* ``test_update_vs_group_size_parallel`` re-runs the F5 group-size workload
  with :class:`ParallelDispatch` on the standard zero-latency virtual-clock
  network.  Its point is *equivalence*: ``messages_per_update`` and
  ``bytes_per_update`` must match the sequential numbers (and BENCH_1)
  exactly -- the dispatch strategy changes scheduling, never traffic.
* ``test_fanout_latency_overlap`` gives every link a real (wall-clock)
  latency and measures one agreed 8-party update under parallel dispatch,
  with the sequential cost of the identical workload measured inline.  The
  recorded ``speedup_vs_sequential`` is the client-observed win from running
  peer validations concurrently: one slowest-peer round trip instead of the
  sum.
* ``test_dsa_sign_nonce_pool`` measures online DSA signing latency when the
  message-independent ``(k, k^-1, r)`` work is precomputed by the nonce
  pool, against the inline deterministic-nonce path.
"""

import hashlib
import time

import pytest

from repro import FaultModel, TrustDomain
from repro.clock import SystemClock
from repro.crypto import dsa
from repro.transport.network import ParallelDispatch, SequentialDispatch

from benchmarks.conftest import CallCounter

#: Wall-clock one-way link latency for the overlap benchmark; a modest LAN/
#: metro figure so the benchmark stays fast while latency still dominates.
LINK_LATENCY_SECONDS = 0.001


def sharing_domain(parties, dispatch, latency=0.0):
    """F5-style sharing domain, optionally over real-latency links."""
    uris = [f"urn:bench:party{i}" for i in range(parties)]
    kwargs = {"dispatch": dispatch}
    if latency:
        kwargs["fault_model"] = FaultModel(latency_seconds=latency)
        kwargs["clock"] = SystemClock()
    domain = TrustDomain.create(uris, **kwargs)
    domain.share_object("bench-doc", {"counter": 0, "payload": {}})
    return domain


def propose_loop(domain, counter):
    proposer = domain.organisation("urn:bench:party0")

    def propose():
        counter["n"] += 1
        outcome = proposer.propose_update(
            "bench-doc", {"counter": counter["n"], "payload": {"data": "x" * 100}}
        )
        assert outcome.agreed
        return outcome

    return propose


@pytest.mark.parametrize("parties", [5, 8])
def test_update_vs_group_size_parallel(benchmark, parties):
    """F5 group-size workload under parallel dispatch: traffic must not change."""
    domain = sharing_domain(parties, ParallelDispatch())
    counted = CallCounter(propose_loop(domain, {"n": 0}))
    before = domain.network.statistics.snapshot()
    benchmark(counted)
    delta = domain.network.statistics.delta(before)
    benchmark.extra_info["parties"] = parties
    benchmark.extra_info["dispatch"] = "parallel"
    benchmark.extra_info["messages_per_update"] = round(
        delta.messages_sent / counted.calls, 2
    )
    benchmark.extra_info["bytes_per_update"] = round(
        delta.bytes_delivered / counted.calls
    )


@pytest.mark.parametrize("parties", [8])
def test_fanout_latency_overlap(benchmark, parties):
    """One agreed update over real-latency links, parallel vs sequential."""
    sequential_domain = sharing_domain(
        parties, SequentialDispatch(), latency=LINK_LATENCY_SECONDS
    )
    sequential_propose = propose_loop(sequential_domain, {"n": 0})
    sequential_before = sequential_domain.network.statistics.snapshot()
    sequential_propose()  # warm caches before timing
    rounds = 10
    start = time.perf_counter()
    for _ in range(rounds):
        sequential_propose()
    sequential_mean = (time.perf_counter() - start) / rounds
    sequential_delta = sequential_domain.network.statistics.delta(sequential_before)
    sequential_messages = round(
        sequential_delta.messages_sent / (rounds + 1), 2
    )

    parallel_domain = sharing_domain(
        parties, ParallelDispatch(), latency=LINK_LATENCY_SECONDS
    )
    counted = CallCounter(propose_loop(parallel_domain, {"n": 0}))
    before = parallel_domain.network.statistics.snapshot()
    benchmark(counted)
    delta = parallel_domain.network.statistics.delta(before)

    parallel_mean = benchmark.stats.stats.mean
    benchmark.extra_info["parties"] = parties
    benchmark.extra_info["link_latency_seconds"] = LINK_LATENCY_SECONDS
    benchmark.extra_info["messages_per_update"] = round(
        delta.messages_sent / counted.calls, 2
    )
    benchmark.extra_info["messages_per_update_sequential"] = sequential_messages
    benchmark.extra_info["sequential_mean_seconds"] = sequential_mean
    benchmark.extra_info["speedup_vs_sequential"] = round(
        sequential_mean / parallel_mean, 2
    )


def test_dsa_sign_nonce_pool(benchmark):
    """Online DSA signing latency with precomputed nonces vs inline signing."""
    scheme = dsa.DSAScheme()
    keypair = scheme.generate_keypair()
    digest = hashlib.sha256(b"nonce-pool-benchmark").digest()

    inline_rounds = 100
    start = time.perf_counter()
    for _ in range(inline_rounds):
        scheme.sign_digest(keypair.private, digest)
    inline_mean = (time.perf_counter() - start) / inline_rounds

    rounds = 150
    dsa.enable_nonce_pools(capacity=2 * rounds, background=False)
    try:
        pool = dsa.nonce_pool_for(
            keypair.private.params["p"],
            keypair.private.params["q"],
            keypair.private.params["g"],
        )
        # Fill once, off the measured path: every measured sign then takes
        # the two-multiplication online route (misses asserted below).
        pool.precompute(pool.capacity)

        def sign():
            return scheme.sign_digest(keypair.private, digest)

        benchmark.pedantic(sign, rounds=rounds, iterations=1, warmup_rounds=5)
        pooled_mean = benchmark.stats.stats.mean
        benchmark.extra_info["inline_mean_seconds"] = inline_mean
        benchmark.extra_info["speedup_vs_inline"] = round(inline_mean / pooled_mean, 2)
        benchmark.extra_info["pool_misses"] = pool.stats()["misses"]
        assert pool.stats()["misses"] == 0
    finally:
        dsa.disable_nonce_pools()
