"""Shared fixtures and helpers for the benchmark harness.

Every benchmark corresponds to an entry in the experiment index of DESIGN.md
(F1-F8 reproduce the paper's figures as working scenarios; P1-P4 measure the
performance dimensions the paper's Section 6 identifies: cryptographic
computation, evidence space overhead and protocol communication overhead).

The paper reports no absolute numbers, so the quantities of interest here are
*relative*: NR vs plain invocation, direct vs TTP-mediated deployment,
evidence size vs payload size, cost vs sharing-group size.  Each benchmark
records the relevant counts in ``benchmark.extra_info`` so the generated
tables carry the shape of the result alongside the timings.
"""

from __future__ import annotations

import pytest

from repro import ComponentDescriptor, DeploymentStyle, TrustDomain


class QuoteService:
    """Simple provider-side business service used by the benchmarks."""

    def quote(self, part, quantity=1):
        return {"part": part, "quantity": quantity, "price": 100 * quantity}

    def echo(self, payload):
        return payload


def build_domain(parties=2, style=DeploymentStyle.DIRECT, deploy_service=True, **kwargs):
    """Create a benchmark trust domain with a deployed QuoteService."""
    uris = [f"urn:bench:party{i}" for i in range(parties)]
    domain = TrustDomain.create(uris, style=style, **kwargs)
    if deploy_service:
        provider = domain.organisation(uris[-1])
        provider.deploy(
            QuoteService(),
            ComponentDescriptor(name="QuoteService", non_repudiation=True),
        )
        provider.deploy(QuoteService(), ComponentDescriptor(name="PlainQuoteService"))
    return domain


class CallCounter:
    """Wraps a callable and counts how many times the benchmark invoked it.

    pytest-benchmark decides rounds/iterations itself; wrapping the measured
    function lets per-call network/evidence counters be normalised reliably.
    """

    def __init__(self, func):
        self._func = func
        self.calls = 0

    def __call__(self, *args, **kwargs):
        self.calls += 1
        return self._func(*args, **kwargs)


@pytest.fixture(scope="module")
def direct_pair():
    """Module-scoped two-party direct domain (client, provider)."""
    domain = build_domain(2)
    return domain, domain.organisation("urn:bench:party0"), domain.organisation("urn:bench:party1")
