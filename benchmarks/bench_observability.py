"""Observability overhead: disabled mode is free, enabled mode is cheap.

Runs the canonical 3-party coordinated update (the same workload as
``bench_sharing.test_update_vs_group_size``) with the observability plane
disabled and enabled, and asserts the plane's two contracts:

* **Disabled is zero-effect.**  The gated protocol-cost counters
  (``messages_per_update``, ``bytes_per_update``) are *byte-identical*
  between an observability-off and an observability-on run of the same
  update sequence, and the off-mode message count matches the committed
  ``BENCH_<n>.json`` baseline for the 3-party sharing benchmark exactly.
  Tracing context rides out-of-band (never inside the canonical, signed,
  byte-charged envelope), so turning the plane on cannot change what the
  protocol sends.

* **Enabled is within tolerance.**  Wall-clock throughput with tracing +
  metrics recording on stays within ``OBS_OVERHEAD_TOLERANCE`` (default
  3%) of the disabled run.  The overhead test measures a
  production-strength (2048-bit RSA) domain with a drift-cancelling
  sandwich estimator — every enabled block of updates is bracketed by two
  disabled blocks and the statistic is the median of the per-sandwich
  differences — because the plane's cost is a fixed few dozen
  microseconds per update and shared machines drift by more than that
  between unpaired trials.

Both variants publish the gated counters through ``extra_info`` so the
``--check`` regression gate pins them in ``BENCH_<n>.json`` from now on.
"""

from __future__ import annotations

import gc
import json
import os
import re
from pathlib import Path
from statistics import median
from time import perf_counter

import pytest

from repro.core.config import ObservabilityConfig
from repro.crypto.signature import get_scheme
from repro.observability import runtime

from benchmarks.conftest import CallCounter, build_domain

REPO_ROOT = Path(__file__).resolve().parent.parent
PARTIES = 3
BASELINE_BENCH = "benchmarks/bench_sharing.py::test_update_vs_group_size[3]"


@pytest.fixture(autouse=True)
def _plane_off():
    """Every benchmark starts and ends with the plane disabled."""
    runtime.disable()
    yield
    runtime.disable()


def _shared_domain():
    domain = build_domain(PARTIES, deploy_service=False)
    domain.share_object("bench-doc", {"counter": 0, "payload": {}})
    return domain


def _propose(proposer, value):
    outcome = proposer.propose_update(
        "bench-doc", {"counter": value, "payload": {"data": "x" * 100}}
    )
    assert outcome.agreed
    return outcome


def _latest_baseline():
    """The committed gate baseline (newest ``BENCH_<n>.json`` in the repo)."""
    candidates = sorted(
        REPO_ROOT.glob("BENCH_*.json"),
        key=lambda path: int(re.search(r"\d+", path.stem).group()),
    )
    return candidates[-1] if candidates else None


@pytest.mark.parametrize("enabled", [False, True], ids=["off", "on"])
def test_update_with_observability(benchmark, enabled):
    """Protocol cost of one update with the plane off vs on (gated)."""
    if enabled:
        runtime.enable(ObservabilityConfig())
    domain = _shared_domain()
    proposer = domain.organisation("urn:bench:party0")
    counter = {"n": 0}

    def propose():
        counter["n"] += 1
        return _propose(proposer, counter["n"])

    counted = CallCounter(propose)
    before = domain.network.statistics.snapshot()
    benchmark(counted)
    delta = domain.network.statistics.delta(before)
    benchmark.extra_info["parties"] = PARTIES
    benchmark.extra_info["observability"] = "on" if enabled else "off"
    benchmark.extra_info["messages_per_update"] = round(
        delta.messages_sent / counted.calls, 2
    )
    benchmark.extra_info["bytes_per_update"] = round(
        delta.bytes_delivered / counted.calls
    )
    if enabled:
        assert runtime.STATE.tracing.trace_ids(), "enabled run recorded no spans"


def test_disabled_counters_byte_identical():
    """The same update sequence costs the same bytes with the plane on."""
    updates = 12
    deltas = {}
    for enabled in (False, True):
        runtime.disable()
        if enabled:
            runtime.enable(ObservabilityConfig())
        try:
            domain = _shared_domain()
            proposer = domain.organisation("urn:bench:party0")
            before = domain.network.statistics.snapshot()
            for value in range(1, updates + 1):
                _propose(proposer, value)
            deltas[enabled] = domain.network.statistics.delta(before)
        finally:
            runtime.disable()
    off, on = deltas[False], deltas[True]
    assert on.messages_sent == off.messages_sent
    assert on.messages_delivered == off.messages_delivered
    assert on.bytes_delivered == off.bytes_delivered, (
        "observability changed the protocol's byte cost: "
        f"{off.bytes_delivered} off vs {on.bytes_delivered} on"
    )
    assert on.per_operation == off.per_operation

    # And the off-mode cost is exactly the committed baseline's.
    baseline_path = _latest_baseline()
    if baseline_path is not None:
        document = json.loads(baseline_path.read_text())
        baseline = document.get("results", {}).get(BASELINE_BENCH)
        if baseline is not None:
            expected = baseline["extra_info"]["messages_per_update"]
            assert off.messages_sent / updates == expected, (
                f"off-mode message cost diverged from {baseline_path.name}"
            )


def test_enabled_overhead_within_tolerance():
    """Enabled-mode throughput cost stays within the tolerance.

    Design notes, each load-bearing:

    * The domains use **2048-bit RSA** (the modern minimum) rather than the
      default bench keys, so the plane's fixed per-update cost is judged
      against a production-representative crypto workload.
    * The two legs run on **persistent warm domains** and toggle the plane
      with :func:`runtime.suspend` / :func:`runtime.resume`, so neither leg
      pays component construction or cold caches inside the measured
      region.
    * The estimator is a **sandwich median**: each enabled block of
      updates is bracketed by two disabled blocks and scored as
      ``on − (off_before + off_after) / 2``, which cancels linear machine
      drift; the overhead estimate is the median of the per-sandwich
      differences over the baseline block median.  A failing first pass
      re-measures once with double the sandwiches and keeps the smaller
      estimate (noise only ever inflates an interleaved difference on a
      loaded machine).
    """
    tolerance = float(os.environ.get("OBS_OVERHEAD_TOLERANCE", "0.03"))
    block_updates = 5

    scheme = get_scheme("rsa")
    keys = {
        f"urn:bench:party{i}": scheme.generate_keypair(bits=2048)
        for i in range(PARTIES)
    }

    def make_domain():
        domain = build_domain(
            PARTIES, deploy_service=False, keypair_factory=keys.__getitem__
        )
        domain.share_object("bench-doc", {"counter": 0, "payload": {}})
        return domain, domain.organisation("urn:bench:party0")

    _, proposer_off = make_domain()
    runtime.enable(ObservabilityConfig())
    _, proposer_on = make_domain()
    plane = runtime.suspend()

    value = [0]

    def timed_update(proposer):
        value[0] += 1
        start = perf_counter()
        _propose(proposer, value[0])
        return perf_counter() - start

    def block(proposer, enabled):
        if enabled:
            runtime.resume(plane)
        times = [timed_update(proposer) for _ in range(block_updates)]
        if enabled:
            runtime.suspend()
        return median(times)

    def measure(sandwiches):
        gc.collect()
        baselines, diffs = [], []
        for _ in range(sandwiches):
            off_before = block(proposer_off, False)
            on = block(proposer_on, True)
            off_after = block(proposer_off, False)
            baselines.extend((off_before, off_after))
            diffs.append(on - (off_before + off_after) / 2.0)
        return median(diffs) / median(baselines)

    for _ in range(3):  # warm-up sandwiches, unmeasured
        block(proposer_off, False)
        block(proposer_on, True)

    overhead = measure(sandwiches=10)
    if overhead > tolerance:  # one re-measure before calling it a regression
        overhead = min(overhead, measure(sandwiches=20))
    assert overhead <= tolerance, (
        f"observability overhead {overhead:.1%} exceeds {tolerance:.0%} "
        f"(sandwich-median over {block_updates}-update blocks, 2048-bit RSA)"
    )
