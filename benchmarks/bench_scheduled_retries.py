"""P7 -- event-driven retry engine: overlapping backoffs across concurrent runs.

Under lossy links a reliable channel waits out exponential backoffs between
delivery attempts.  The blocking engine parks the calling thread for every
wait, so one worker handling N concurrent delivery runs pays the *sum* of
all their backoffs; the event-driven engine
(:class:`repro.transport.scheduler.RetryScheduler`) parks a timer instead,
so a single worker interleaves the runs and pays roughly the *longest
chain*.

Elapsed time is measured on the simulated clock, which makes the comparison
deterministic (the fault model is seeded and both modes are driven from one
thread): CI can gate on the ratio without wall-clock noise.  The acceptance
target for this axis is ``retry_wait_overlap >= 2`` at 4 concurrent runs
with a 10% drop rate.
"""

import pytest

from repro.clock import SimulatedClock
from repro.transport.delivery import ReliableChannel, RetryPolicy
from repro.transport.network import FaultModel, SimulatedNetwork
from repro.transport.scheduler import RetryScheduler, wait_all

#: Per-fan-out width: wide enough that nearly every run sees >= 1 drop at a
#: 10% drop rate, so the overlap axis measures retry waits, not luck.
ENTRIES_PER_RUN = 16
DROP_PROBABILITY = 0.10
SEED = b"bench-3"

POLICY = RetryPolicy(max_attempts=8, backoff_seconds=0.05, backoff_multiplier=2.0)


def lossy_network():
    clock = SimulatedClock()
    network = SimulatedNetwork(
        FaultModel(drop_probability=DROP_PROBABILITY, seed=SEED), clock=clock
    )
    for index in range(ENTRIES_PER_RUN):
        network.register(f"urn:dst{index}", lambda message: "ok")
    return clock, network


def run_entries(run):
    return [(f"urn:dst{i}", "op", {"run": run, "i": i}) for i in range(ENTRIES_PER_RUN)]


def blocking_elapsed(runs):
    """One worker servicing N delivery runs with blocking retries: waits sum."""
    clock, network = lossy_network()
    for run in range(runs):
        channel = ReliableChannel(network, f"urn:run{run}", POLICY)
        results = channel.send_batch(run_entries(run))
        assert all(result.delivered for result in results)
    return clock.now(), network.statistics

def scheduled_elapsed(runs):
    """One worker multiplexing N concurrent runs over the scheduler: waits overlap."""
    clock, network = lossy_network()
    network.set_retry_scheduler(RetryScheduler(clock))
    futures = []
    for run in range(runs):
        channel = ReliableChannel(network, f"urn:run{run}", POLICY)
        futures.extend(channel.send_batch_scheduled(run_entries(run)))
    wait_all(futures)
    assert all(future.outcome().delivered for future in futures)
    return clock.now(), network.statistics


@pytest.mark.parametrize("concurrent_runs", [1, 4])
def test_retry_wait_overlap(benchmark, concurrent_runs):
    """Simulated time to complete N lossy fan-outs: blocking vs scheduled."""

    def both_modes():
        blocking_time, blocking_stats = blocking_elapsed(concurrent_runs)
        scheduled_time, scheduled_stats = scheduled_elapsed(concurrent_runs)
        return blocking_time, scheduled_time, blocking_stats, scheduled_stats

    blocking_time, scheduled_time, blocking_stats, scheduled_stats = benchmark(
        both_modes
    )
    overlap = blocking_time / scheduled_time if scheduled_time else 1.0
    benchmark.extra_info["concurrent_runs"] = concurrent_runs
    benchmark.extra_info["drop_probability"] = DROP_PROBABILITY
    benchmark.extra_info["entries_per_run"] = ENTRIES_PER_RUN
    benchmark.extra_info["blocking_backoff_seconds"] = round(blocking_time, 3)
    benchmark.extra_info["scheduled_backoff_seconds"] = round(scheduled_time, 3)
    benchmark.extra_info["retry_wait_overlap"] = round(overlap, 2)
    benchmark.extra_info["retries_blocking"] = sum(
        blocking_stats.failed_attempts_per_destination().values()
    )
    benchmark.extra_info["retries_scheduled"] = sum(
        scheduled_stats.failed_attempts_per_destination().values()
    )
    # Interleaved runs draw the fault model in a different order, so per-
    # destination *attempts* may differ between modes -- but every entry is
    # delivered exactly once either way.
    assert (
        blocking_stats.deliveries_per_destination
        == scheduled_stats.deliveries_per_destination
    )
    if concurrent_runs >= 4:
        assert overlap >= 2.0, (
            f"expected >=2x retry-wait overlap at {concurrent_runs} runs, "
            f"got {overlap:.2f}"
        )


def test_scheduled_mode_zero_drop_parity(benchmark):
    """Scheduled mode on a healthy network must cost what blocking mode costs.

    Measures the scheduled path end-to-end at zero drops (every future
    completes inline on the first attempt); ``timers_scheduled == 0``
    verifies the event-driven engine stays entirely off the happy path.
    """
    clock = SimulatedClock()
    network = SimulatedNetwork(clock=clock)
    network.set_retry_scheduler(RetryScheduler(clock))
    for index in range(ENTRIES_PER_RUN):
        network.register(f"urn:dst{index}", lambda message: "ok")
    channel = ReliableChannel(network, "urn:src", POLICY)

    def healthy_fanout():
        futures = channel.send_batch_scheduled(run_entries(0))
        wait_all(futures)
        return futures

    futures = benchmark(healthy_fanout)
    assert all(future.outcome().delivered for future in futures)
    assert network.retry_scheduler.timers_scheduled == 0
    benchmark.extra_info["entries_per_run"] = ENTRIES_PER_RUN
